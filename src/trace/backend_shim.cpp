#include "trace/backend_shim.hpp"

namespace pio::trace {

void TracingBackend::emit(OpKind op, const std::string& path, std::uint64_t offset,
                          std::uint64_t size, SimTime start, bool ok) {
  TraceEvent e;
  e.layer = Layer::kPosix;
  e.op = op;
  e.rank = rank_;
  e.path = path;
  e.offset = offset;
  e.size = size;
  e.start = start;
  e.end = clock_.now();
  e.ok = ok;
  sink_.record(e);
}

Result<vfs::Fd> TracingBackend::open(const std::string& path, const vfs::OpenOptions& options) {
  const SimTime start = clock_.now();
  auto result = inner_.open(path, options);
  emit(OpKind::kOpen, path, 0, 0, start, result.ok());
  return result;
}

Result<std::size_t> TracingBackend::pread(vfs::Fd fd, std::span<std::byte> out,
                                          std::uint64_t offset) {
  const SimTime start = clock_.now();
  const std::string path = inner_.path_of(fd);
  auto result = inner_.pread(fd, out, offset);
  emit(OpKind::kRead, path, offset, result.ok() ? result.value() : 0, start, result.ok());
  return result;
}

Result<std::size_t> TracingBackend::pwrite(vfs::Fd fd, std::span<const std::byte> data,
                                           std::uint64_t offset) {
  const SimTime start = clock_.now();
  const std::string path = inner_.path_of(fd);
  auto result = inner_.pwrite(fd, data, offset);
  emit(OpKind::kWrite, path, offset, result.ok() ? result.value() : 0, start, result.ok());
  return result;
}

vfs::FsStatus TracingBackend::close(vfs::Fd fd) {
  const SimTime start = clock_.now();
  const std::string path = inner_.path_of(fd);
  const auto status = inner_.close(fd);
  emit(OpKind::kClose, path, 0, 0, start, status == vfs::FsStatus::kOk);
  return status;
}

vfs::FsStatus TracingBackend::fsync(vfs::Fd fd) {
  const SimTime start = clock_.now();
  const std::string path = inner_.path_of(fd);
  const auto status = inner_.fsync(fd);
  emit(OpKind::kFsync, path, 0, 0, start, status == vfs::FsStatus::kOk);
  return status;
}

vfs::FsStatus TracingBackend::mkdir(const std::string& path) {
  const SimTime start = clock_.now();
  const auto status = inner_.mkdir(path);
  emit(OpKind::kMkdir, path, 0, 0, start, status == vfs::FsStatus::kOk);
  return status;
}

vfs::FsStatus TracingBackend::remove(const std::string& path) {
  const SimTime start = clock_.now();
  const auto status = inner_.remove(path);
  emit(OpKind::kUnlink, path, 0, 0, start, status == vfs::FsStatus::kOk);
  return status;
}

Result<vfs::FileInfo> TracingBackend::stat(const std::string& path) {
  const SimTime start = clock_.now();
  auto result = inner_.stat(path);
  emit(OpKind::kStat, path, 0, 0, start, result.ok());
  return result;
}

Result<std::vector<std::string>> TracingBackend::readdir(const std::string& path) {
  const SimTime start = clock_.now();
  auto result = inner_.readdir(path);
  emit(OpKind::kReaddir, path, 0, 0, start, result.ok());
  return result;
}

}  // namespace pio::trace
