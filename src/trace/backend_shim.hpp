// PIOEval trace: POSIX-layer interposition shim.
//
// TracingBackend decorates any vfs::Backend and emits a POSIX-layer
// TraceEvent per call — the library-preload interposition trick Darshan and
// Recorder use, expressed as a decorator. One shim per rank keeps rank
// attribution lock-free; the wrapped backend and the sink handle their own
// synchronization.
#pragma once

#include <cstdint>
#include <string>

#include "trace/event.hpp"
#include "vfs/backend.hpp"

namespace pio::trace {

class TracingBackend final : public vfs::Backend {
 public:
  TracingBackend(vfs::Backend& inner, Sink& sink, const Clock& clock, std::int32_t rank)
      : inner_(inner), sink_(sink), clock_(clock), rank_(rank) {}

  [[nodiscard]] Result<vfs::Fd> open(const std::string& path,
                                     const vfs::OpenOptions& options) override;
  [[nodiscard]] Result<std::size_t> pread(vfs::Fd fd, std::span<std::byte> out,
                                          std::uint64_t offset) override;
  [[nodiscard]] Result<std::size_t> pwrite(vfs::Fd fd, std::span<const std::byte> data,
                                           std::uint64_t offset) override;
  vfs::FsStatus close(vfs::Fd fd) override;
  vfs::FsStatus fsync(vfs::Fd fd) override;
  vfs::FsStatus mkdir(const std::string& path) override;
  vfs::FsStatus remove(const std::string& path) override;
  [[nodiscard]] Result<vfs::FileInfo> stat(const std::string& path) override;
  [[nodiscard]] Result<std::vector<std::string>> readdir(const std::string& path) override;
  [[nodiscard]] std::string path_of(vfs::Fd fd) const override { return inner_.path_of(fd); }

 private:
  void emit(OpKind op, const std::string& path, std::uint64_t offset, std::uint64_t size,
            SimTime start, bool ok);

  vfs::Backend& inner_;
  Sink& sink_;
  const Clock& clock_;
  std::int32_t rank_;
};

}  // namespace pio::trace
