#include "trace/event.hpp"

#include <chrono>

namespace pio::trace {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kApp: return "app";
    case Layer::kHdf5: return "hdf5";
    case Layer::kMpiIo: return "mpiio";
    case Layer::kPosix: return "posix";
    case Layer::kCache: return "cache";
  }
  return "?";
}

const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kOpen: return "open";
    case OpKind::kClose: return "close";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kStat: return "stat";
    case OpKind::kMkdir: return "mkdir";
    case OpKind::kUnlink: return "unlink";
    case OpKind::kReaddir: return "readdir";
    case OpKind::kFsync: return "fsync";
    case OpKind::kSync: return "sync";
    case OpKind::kOther: return "other";
  }
  return "?";
}

bool is_data_op(OpKind op) { return op == OpKind::kRead || op == OpKind::kWrite; }

bool is_metadata_op(OpKind op) {
  switch (op) {
    case OpKind::kOpen:
    case OpKind::kClose:
    case OpKind::kStat:
    case OpKind::kMkdir:
    case OpKind::kUnlink:
    case OpKind::kReaddir:
    case OpKind::kFsync:
      return true;
    default:
      return false;
  }
}

// WallClock is the one sanctioned wall-time source in the library: it exists
// so *measured* (non-simulated) runs can timestamp trace events. Simulation
// code must never use it — the engine's virtual clock is the only time base
// there (see DESIGN.md, rule D1).
WallClock::WallClock()
    : epoch_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    // piolint: allow(D1)
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

SimTime WallClock::now() const {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      // piolint: allow(D1)
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return SimTime::from_ns(ns - epoch_ns_);
}

}  // namespace pio::trace
