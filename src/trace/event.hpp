// PIOEval trace: the common event vocabulary of the measurement phase.
//
// §IV.A.2 distinguishes *traces* (lossless timestamped records) from
// *profiles* (statistics). Both consume the same stream of TraceEvents,
// emitted at every layer of the Fig. 2 stack (application, HDF5-lite,
// MPI-IO-lite, POSIX) — the Recorder-style multi-level design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pio::trace {

/// Which layer of the I/O stack observed the operation (Fig. 2). kCache is
/// the client cache tier between the application and the POSIX layer: cache
/// events annotate a run (hit bytes per data op) without participating in
/// replay or profiling, which filter on kPosix.
enum class Layer : std::uint8_t { kApp, kHdf5, kMpiIo, kPosix, kCache };

[[nodiscard]] const char* to_string(Layer layer);

/// Operation kind, shared across layers.
enum class OpKind : std::uint8_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kStat,
  kMkdir,
  kUnlink,
  kReaddir,
  kFsync,
  kSync,      ///< collective sync / barrier-ish operations
  kOther,
};

[[nodiscard]] const char* to_string(OpKind op);
[[nodiscard]] bool is_data_op(OpKind op);
[[nodiscard]] bool is_metadata_op(OpKind op);

/// One observed operation.
struct TraceEvent {
  Layer layer = Layer::kPosix;
  OpKind op = OpKind::kOther;
  std::int32_t rank = 0;
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;      ///< bytes transferred (0 for metadata ops)
  SimTime start = SimTime::zero();
  SimTime end = SimTime::zero();
  bool ok = true;

  [[nodiscard]] SimTime duration() const { return end - start; }
};

/// Consumer of trace events. Implementations must be thread-safe: rank
/// threads on the measurement path record concurrently.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Fan-out sink: one run can feed a profiler and a tracer simultaneously.
class MultiSink final : public Sink {
 public:
  void add(Sink& sink) { sinks_.push_back(&sink); }
  void record(const TraceEvent& event) override {
    for (Sink* sink : sinks_) sink->record(event);
  }

 private:
  std::vector<Sink*> sinks_;
};

/// Time source for event stamping: wall clock on the measurement path,
/// virtual time on the simulated path.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Monotonic wall clock, zeroed at construction.
class WallClock final : public Clock {
 public:
  WallClock();
  [[nodiscard]] SimTime now() const override;

 private:
  std::int64_t epoch_ns_;
};

/// Externally driven clock (simulation drivers advance it).
class ManualClock final : public Clock {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void set(SimTime t) { now_ = t; }

 private:
  SimTime now_ = SimTime::zero();
};

}  // namespace pio::trace
