#include "trace/profiler.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/format.hpp"

namespace pio::trace {

void FileRecord::merge(const FileRecord& other) {
  opens += other.opens;
  closes += other.closes;
  reads += other.reads;
  writes += other.writes;
  metadata_ops += other.metadata_ops;
  errors += other.errors;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  read_time += other.read_time;
  write_time += other.write_time;
  meta_time += other.meta_time;
  first_op = std::min(first_op, other.first_op);
  last_op = std::max(last_op, other.last_op);
  read_sizes.merge(other.read_sizes);
  write_sizes.merge(other.write_sizes);
  sequential_reads += other.sequential_reads;
  consecutive_reads += other.consecutive_reads;
  sequential_writes += other.sequential_writes;
  consecutive_writes += other.consecutive_writes;
  max_offset = std::max(max_offset, other.max_offset);
}

Profile::Profile(std::vector<FileRecord> records) : records_(std::move(records)) {}

JobSummary Profile::summarize() const {
  JobSummary s;
  std::set<std::string> files;
  std::set<std::int32_t> ranks;
  SimTime first = SimTime::max();
  SimTime last = SimTime::zero();
  for (const auto& r : records_) {
    files.insert(r.path);
    ranks.insert(r.rank);
    s.reads += r.reads;
    s.writes += r.writes;
    s.metadata_ops += r.metadata_ops;
    s.bytes_read += r.bytes_read;
    s.bytes_written += r.bytes_written;
    s.read_time += r.read_time;
    s.write_time += r.write_time;
    s.meta_time += r.meta_time;
    s.read_sizes.merge(r.read_sizes);
    s.write_sizes.merge(r.write_sizes);
    first = std::min(first, r.first_op);
    last = std::max(last, r.last_op);
  }
  s.total_ops = s.reads + s.writes + s.metadata_ops;
  s.files = files.size();
  s.ranks = ranks.size();
  s.span = records_.empty() ? SimTime::zero() : last - first;
  return s;
}

std::vector<FileRecord> Profile::by_file() const {
  std::map<std::string, FileRecord> merged;
  for (const auto& r : records_) {
    auto [it, inserted] = merged.emplace(r.path, r);
    if (inserted) {
      it->second.rank = -1;  // aggregated across ranks
    } else {
      it->second.merge(r);
    }
  }
  std::vector<FileRecord> out;
  out.reserve(merged.size());
  for (auto& [path, record] : merged) out.push_back(std::move(record));
  return out;
}

std::string Profile::report() const {
  const JobSummary s = summarize();
  std::ostringstream out;
  out << "# I/O characterization profile\n";
  out << "ranks: " << s.ranks << "  files: " << s.files << "  span: " << format_time(s.span)
      << "\n";
  out << "ops: " << s.total_ops << " (reads " << s.reads << ", writes " << s.writes
      << ", metadata " << s.metadata_ops << ")\n";
  out << "bytes read:    " << format_bytes(s.bytes_read) << "\n";
  out << "bytes written: " << format_bytes(s.bytes_written) << "\n";
  out << "time in reads: " << format_time(s.read_time)
      << "  writes: " << format_time(s.write_time) << "  metadata: " << format_time(s.meta_time)
      << "\n";
  if (s.reads > 0) {
    out << "read sizes (log2 buckets):\n" << s.read_sizes.to_string();
  }
  if (s.writes > 0) {
    out << "write sizes (log2 buckets):\n" << s.write_sizes.to_string();
  }
  out << "per-file records:\n";
  for (const auto& r : by_file()) {
    out << "  " << r.path << ": reads " << r.reads << " (" << format_bytes(r.bytes_read)
        << ", seq " << format_percent(r.read_seq_fraction()) << "), writes " << r.writes << " ("
        << format_bytes(r.bytes_written) << ", seq " << format_percent(r.write_seq_fraction())
        << "), meta " << r.metadata_ops << "\n";
  }
  return out.str();
}

void Profiler::record(const TraceEvent& event) {
  if (event.layer != layer_) return;
  // Synchronization/unknown events carry no file: counting them would
  // fabricate an empty-path "file record".
  if (!is_data_op(event.op) && !is_metadata_op(event.op)) return;
  const std::scoped_lock lock(mutex_);
  auto& r = records_[{event.rank, event.path}];
  if (r.path.empty()) {
    r.rank = event.rank;
    r.path = event.path;
  }
  r.first_op = std::min(r.first_op, event.start);
  r.last_op = std::max(r.last_op, event.end);
  if (!event.ok) ++r.errors;
  switch (event.op) {
    case OpKind::kRead: {
      ++r.reads;
      r.bytes_read += Bytes{event.size};
      r.read_time += event.duration();
      r.read_sizes.add(event.size);
      if (r.saw_read) {
        if (event.offset == r.last_read_end) {
          ++r.consecutive_reads;
          ++r.sequential_reads;
        } else if (event.offset > r.last_read_end) {
          ++r.sequential_reads;
        }
      } else {
        // First access at offset 0 counts as sequential (Darshan does the
        // same: the cursor starts at 0).
        if (event.offset == 0) {
          ++r.sequential_reads;
          ++r.consecutive_reads;
        }
      }
      r.saw_read = true;
      r.last_read_end = event.offset + event.size;
      r.max_offset = std::max(r.max_offset, event.offset + event.size);
      break;
    }
    case OpKind::kWrite: {
      ++r.writes;
      r.bytes_written += Bytes{event.size};
      r.write_time += event.duration();
      r.write_sizes.add(event.size);
      if (r.saw_write) {
        if (event.offset == r.last_write_end) {
          ++r.consecutive_writes;
          ++r.sequential_writes;
        } else if (event.offset > r.last_write_end) {
          ++r.sequential_writes;
        }
      } else {
        if (event.offset == 0) {
          ++r.sequential_writes;
          ++r.consecutive_writes;
        }
      }
      r.saw_write = true;
      r.last_write_end = event.offset + event.size;
      r.max_offset = std::max(r.max_offset, event.offset + event.size);
      break;
    }
    case OpKind::kOpen:
      ++r.opens;
      ++r.metadata_ops;
      r.meta_time += event.duration();
      break;
    case OpKind::kClose:
      ++r.closes;
      ++r.metadata_ops;
      r.meta_time += event.duration();
      break;
    default:
      if (is_metadata_op(event.op)) {
        ++r.metadata_ops;
        r.meta_time += event.duration();
      }
      break;
  }
}

void Profiler::absorb(const Profile& profile) {
  const std::scoped_lock lock(mutex_);
  for (const FileRecord& record : profile.records()) {
    auto [it, inserted] = records_.try_emplace({record.rank, record.path}, record);
    if (!inserted) it->second.merge(record);
  }
}

Profile Profiler::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<FileRecord> records;
  records.reserve(records_.size());
  for (const auto& [key, record] : records_) records.push_back(record);
  return Profile{std::move(records)};
}

}  // namespace pio::trace
