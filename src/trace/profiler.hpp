// PIOEval trace: Darshan-style I/O characterization profiler.
//
// §IV.A.2: "Profiles store I/O characterization information, i.e.,
// statistics, including: number of function invocations, average execution
// time of a function, file access patterns..." The profiler keeps bounded
// per-(rank, file) counters regardless of how many operations flow through,
// which is what lets real Darshan run 24/7 at petascale. The resulting
// profile is the input to characterization-based workload generation
// (IOWA-style, experiment C7) and to the predictive-analytics features.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "trace/event.hpp"

namespace pio::trace {

/// Counters for one (rank, file) pair — the Darshan "file record".
struct FileRecord {
  std::int32_t rank = 0;
  std::string path;

  std::uint64_t opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t metadata_ops = 0;
  std::uint64_t errors = 0;

  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();

  SimTime read_time = SimTime::zero();
  SimTime write_time = SimTime::zero();
  SimTime meta_time = SimTime::zero();

  SimTime first_op = SimTime::max();
  SimTime last_op = SimTime::zero();

  /// Access-size distributions (log2 buckets, like Darshan's
  /// POSIX_SIZE_READ_* counters).
  Log2Histogram read_sizes;
  Log2Histogram write_sizes;

  /// Sequentiality: next offset > previous end ("sequential") and
  /// next offset == previous end ("consecutive"), Darshan definitions.
  std::uint64_t sequential_reads = 0;
  std::uint64_t consecutive_reads = 0;
  std::uint64_t sequential_writes = 0;
  std::uint64_t consecutive_writes = 0;

  std::uint64_t max_offset = 0;  ///< highest byte touched + 1

  // Internal cursor state for sequentiality detection.
  std::uint64_t last_read_end = 0;
  bool saw_read = false;
  std::uint64_t last_write_end = 0;
  bool saw_write = false;

  void merge(const FileRecord& other);

  [[nodiscard]] double read_seq_fraction() const {
    return reads == 0 ? 0.0 : static_cast<double>(sequential_reads) / static_cast<double>(reads);
  }
  [[nodiscard]] double write_seq_fraction() const {
    return writes == 0 ? 0.0
                       : static_cast<double>(sequential_writes) / static_cast<double>(writes);
  }
};

/// Whole-job aggregate (the Darshan "job summary").
struct JobSummary {
  std::uint64_t total_ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t metadata_ops = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  SimTime read_time = SimTime::zero();
  SimTime write_time = SimTime::zero();
  SimTime meta_time = SimTime::zero();
  SimTime span = SimTime::zero();
  std::uint64_t files = 0;
  std::uint64_t ranks = 0;
  Log2Histogram read_sizes;
  Log2Histogram write_sizes;

  [[nodiscard]] double read_fraction_bytes() const {
    const double total = bytes_read.as_double() + bytes_written.as_double();
    return total == 0.0 ? 0.0 : bytes_read.as_double() / total;
  }
  [[nodiscard]] double metadata_fraction_ops() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(metadata_ops) / static_cast<double>(total_ops);
  }
};

/// Immutable profile produced by the Profiler.
class Profile {
 public:
  Profile() = default;
  explicit Profile(std::vector<FileRecord> records);

  [[nodiscard]] const std::vector<FileRecord>& records() const { return records_; }
  [[nodiscard]] JobSummary summarize() const;
  /// Records collapsed across ranks (per-file view).
  [[nodiscard]] std::vector<FileRecord> by_file() const;
  /// Human-readable report (the "darshan-parser" style dump).
  [[nodiscard]] std::string report() const;

 private:
  std::vector<FileRecord> records_;
};

/// Thread-safe profiling sink. Only POSIX-layer events are counted by
/// default (matching Darshan's POSIX module); other layers can be enabled
/// for layered analysis.
class Profiler final : public Sink {
 public:
  explicit Profiler(Layer layer = Layer::kPosix) : layer_(layer) {}

  void record(const TraceEvent& event) override;

  /// Merge a finished run's profile into this one (counters add, spans
  /// widen). Campaigns profile each parallel run locally and absorb the
  /// snapshots in submission order, so the merged profile is byte-identical
  /// at any thread count.
  void absorb(const Profile& profile);

  [[nodiscard]] Profile snapshot() const;

 private:
  Layer layer_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::int32_t, std::string>, FileRecord> records_;
};

}  // namespace pio::trace
