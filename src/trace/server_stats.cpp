#include "trace/server_stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace pio::trace {

ServerStatsCollector::ServerStatsCollector(SimTime window) : window_(window) {
  if (window <= SimTime::zero()) {
    throw std::invalid_argument("ServerStatsCollector: window must be positive");
  }
}

void ServerStatsCollector::attach(pfs::PfsModel& model) {
  model.set_ost_observer([this](const pfs::OstOpRecord& r) { on_ost_record(r); });
  model.set_mds_observer([this](const pfs::MdsOpRecord& r) { on_mds_record(r); });
  model.set_resilience_observer(
      [this](const pfs::ResilienceRecord& r) { on_resilience_record(r); });
}

void ServerStatsCollector::on_ost_record(const pfs::OstOpRecord& record) {
  auto& sample = ost_series_[record.ost][window_of(record.completed)];
  sample.window = window_of(record.completed);
  if (record.is_write) {
    ++sample.write_ops;
  } else {
    ++sample.read_ops;
  }
  if (record.ok) {
    // Only ops the device actually served move bytes.
    if (record.is_write) {
      sample.bytes_written += record.size;
    } else {
      sample.bytes_read += record.size;
    }
  } else {
    ++sample.failed_ops;
  }
  sample.total_latency += record.completed - record.enqueued;
  sample.max_queue_depth = std::max(sample.max_queue_depth, record.queue_depth_at_enqueue);
}

void ServerStatsCollector::on_mds_record(const pfs::MdsOpRecord& record) {
  auto& sample = mds_series_[window_of(record.completed)];
  sample.window = window_of(record.completed);
  ++sample.meta_ops;
  if (record.status != pfs::MetaStatus::kOk) ++sample.failed_ops;
  sample.total_latency += record.completed - record.enqueued;
}

void ServerStatsCollector::on_resilience_record(const pfs::ResilienceRecord& record) {
  auto& sample = resilience_series_[window_of(record.at)];
  sample.window = window_of(record.at);
  switch (record.kind) {
    case pfs::ResilienceEventKind::kRetry: ++sample.retries; break;
    case pfs::ResilienceEventKind::kTimeout: ++sample.timeouts; break;
    case pfs::ResilienceEventKind::kGiveUp: ++sample.giveups; break;
    case pfs::ResilienceEventKind::kFailover: ++sample.failovers; break;
    case pfs::ResilienceEventKind::kDegradedRead: ++sample.degraded_reads; break;
    case pfs::ResilienceEventKind::kStaleMapRetry: ++sample.stale_map_retries; break;
    case pfs::ResilienceEventKind::kDetectedDown: ++sample.down_detections; break;
    case pfs::ResilienceEventKind::kDetectedUp: ++sample.up_detections; break;
    case pfs::ResilienceEventKind::kBudgetExhausted: ++sample.budget_exhaustions; break;
    case pfs::ResilienceEventKind::kBreakerOpen: ++sample.breaker_opens; break;
    case pfs::ResilienceEventKind::kBreakerProbe: ++sample.breaker_probes; break;
    case pfs::ResilienceEventKind::kBreakerClose: ++sample.breaker_closes; break;
    case pfs::ResilienceEventKind::kDeadlineGiveUp: ++sample.deadline_giveups; break;
    case pfs::ResilienceEventKind::kRebuildStart:
    case pfs::ResilienceEventKind::kRebuildDone: {
      auto& rebuild = rebuild_series_[record.ost][sample.window];
      rebuild.window = sample.window;
      if (record.kind == pfs::ResilienceEventKind::kRebuildStart) {
        ++rebuild.started;
      } else {
        ++rebuild.completed;
        rebuild.rebuilt += record.bytes;
      }
      break;
    }
  }
}

void ServerStatsCollector::on_cache_record(const cache::CacheRecord& record) {
  auto& sample = cache_series_[window_of(record.at)];
  sample.window = window_of(record.at);
  switch (record.kind) {
    case cache::CacheEventKind::kHit:
      ++sample.hit_events;
      sample.hit_bytes += record.bytes;
      break;
    case cache::CacheEventKind::kMiss:
      ++sample.miss_events;
      sample.miss_bytes += record.bytes;
      break;
    case cache::CacheEventKind::kEviction: ++sample.evictions; break;
    case cache::CacheEventKind::kPrefetchIssue: ++sample.prefetch_issues; break;
    case cache::CacheEventKind::kWriteback:
      ++sample.writebacks;
      sample.writeback_bytes += record.bytes;
      break;
    case cache::CacheEventKind::kAbsorbedWrite: ++sample.absorbed_writes; break;
  }
}

ServerSeries ServerStatsCollector::aggregate_osts() const {
  ServerSeries out;
  for (const auto& [ost, series] : ost_series_) {
    for (const auto& [window, sample] : series) {
      auto& agg = out[window];
      agg.window = window;
      agg.read_ops += sample.read_ops;
      agg.write_ops += sample.write_ops;
      agg.meta_ops += sample.meta_ops;
      agg.bytes_read += sample.bytes_read;
      agg.bytes_written += sample.bytes_written;
      agg.total_latency += sample.total_latency;
      agg.max_queue_depth = std::max(agg.max_queue_depth, sample.max_queue_depth);
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> ServerStatsCollector::ost_imbalance() const {
  // Collect the set of windows with any traffic.
  std::map<std::uint64_t, std::pair<double, double>> acc;  // window -> (max, sum)
  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& [ost, series] : ost_series_) {
    for (const auto& [window, sample] : series) {
      const double moved = sample.bytes_read.as_double() + sample.bytes_written.as_double();
      auto& [mx, sum] = acc[window];
      mx = std::max(mx, moved);
      sum += moved;
      ++counts[window];
    }
  }
  const std::size_t n_osts = ost_series_.size();
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const auto& [window, mxsum] : acc) {
    const auto& [mx, sum] = mxsum;
    if (sum <= 0.0 || n_osts == 0) continue;
    // Mean over all OSTs (absent OSTs moved zero bytes in the window).
    const double mean = sum / static_cast<double>(n_osts);
    out.emplace_back(window, mean == 0.0 ? 0.0 : mx / mean);
  }
  return out;
}

}  // namespace pio::trace
