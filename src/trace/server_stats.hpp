// PIOEval trace: storage-system-level monitoring (GUIDE/FSMonitor-style).
//
// §IV.A.2: "storage and system administrators can collect additional
// server-side statistics of the file system, e.g., load on the servers and
// storage devices." This collector subscribes to the PFS model's OST and
// MDS op records and bins them into fixed time windows per server,
// producing the time series the system-level analysis (§IV.B.1 type (2),
// Patel et al. [53]) consumes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/pfs.hpp"

namespace pio::trace {

/// One time-window sample for one server.
struct ServerSample {
  std::uint64_t window = 0;  ///< window index (time / window_size)
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t meta_ops = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  SimTime total_latency = SimTime::zero();
  std::uint64_t max_queue_depth = 0;
  std::uint64_t failed_ops = 0;  ///< rejected/interrupted (OST) or error-status (MDS)

  [[nodiscard]] std::uint64_t total_ops() const { return read_ops + write_ops + meta_ops; }
};

/// Per-server time series, keyed by window index.
using ServerSeries = std::map<std::uint64_t, ServerSample>;

/// One time-window sample of client-side resilience activity (retry storms
/// show up here before they show up as server load).
struct ResilienceSample {
  std::uint64_t window = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t giveups = 0;
  std::uint64_t failovers = 0;
  std::uint64_t degraded_reads = 0;  ///< reads served by a non-primary replica
  std::uint64_t stale_map_retries = 0;  ///< kStaleMap bounces refreshed + retried
  std::uint64_t down_detections = 0;    ///< monitor down declarations this window
  std::uint64_t up_detections = 0;      ///< monitor up re-declarations this window
  // Overload-control activity (DESIGN.md §14); zero unless the knobs are on.
  std::uint64_t budget_exhaustions = 0;  ///< retries denied by the token bucket
  std::uint64_t breaker_opens = 0;       ///< breaker open/re-open transitions
  std::uint64_t breaker_probes = 0;      ///< half-open probes admitted
  std::uint64_t breaker_closes = 0;      ///< probes that closed a breaker
  std::uint64_t deadline_giveups = 0;    ///< ops that ran out of deadline
};

using ResilienceSeries = std::map<std::uint64_t, ResilienceSample>;

/// One time-window sample of online-rebuild activity on one OST (resync
/// passes started/finished and bytes re-copied, reported at completion).
struct RebuildSample {
  std::uint64_t window = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  Bytes rebuilt = Bytes::zero();
};

using RebuildSeries = std::map<std::uint64_t, RebuildSample>;

/// One time-window sample of client-cache activity: the hit-rate time
/// series of a run (a warming cache shows the hit curve climbing window by
/// window — the DL-epoch signature the cache experiments plot).
struct CacheSample {
  std::uint64_t window = 0;
  std::uint64_t hit_events = 0;        ///< ops with at least one page hit
  std::uint64_t miss_events = 0;       ///< ops that fetched from the backend
  std::uint64_t evictions = 0;
  std::uint64_t prefetch_issues = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t absorbed_writes = 0;
  Bytes hit_bytes = Bytes::zero();
  Bytes miss_bytes = Bytes::zero();
  Bytes writeback_bytes = Bytes::zero();

  /// Byte-granular hit rate of this window (0 with no data traffic).
  [[nodiscard]] double hit_rate() const {
    const double total = hit_bytes.as_double() + miss_bytes.as_double();
    return total == 0.0 ? 0.0 : hit_bytes.as_double() / total;
  }
};

using CacheSeries = std::map<std::uint64_t, CacheSample>;

class ServerStatsCollector {
 public:
  explicit ServerStatsCollector(SimTime window = SimTime::from_ms(100.0));

  /// Wire the collector into a PFS model (replaces existing observers).
  void attach(pfs::PfsModel& model);

  /// Manual feeds (for tests or custom wiring).
  void on_ost_record(const pfs::OstOpRecord& record);
  void on_mds_record(const pfs::MdsOpRecord& record);
  void on_resilience_record(const pfs::ResilienceRecord& record);
  /// Cache tier records (wire via ExecutionDrivenSimulator::set_cache_observer
  /// or ClientCacheTier::set_observer — the tier is per-run, so attach()
  /// cannot reach it).
  void on_cache_record(const cache::CacheRecord& record);

  [[nodiscard]] const std::map<std::uint32_t, ServerSeries>& ost_series() const {
    return ost_series_;
  }
  [[nodiscard]] const ServerSeries& mds_series() const { return mds_series_; }
  [[nodiscard]] const ResilienceSeries& resilience_series() const { return resilience_series_; }
  [[nodiscard]] const std::map<std::uint32_t, RebuildSeries>& rebuild_series() const {
    return rebuild_series_;
  }
  [[nodiscard]] const CacheSeries& cache_series() const { return cache_series_; }
  [[nodiscard]] SimTime window() const { return window_; }

  /// Cluster-wide aggregate per window (sums across OSTs).
  [[nodiscard]] ServerSeries aggregate_osts() const;

  /// Imbalance across OSTs in a window: max/mean of per-OST bytes moved
  /// (1.0 = perfectly balanced). Windows with no traffic are skipped.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> ost_imbalance() const;

 private:
  [[nodiscard]] std::uint64_t window_of(SimTime t) const {
    return static_cast<std::uint64_t>(t.ns() / window_.ns());
  }

  SimTime window_;
  std::map<std::uint32_t, ServerSeries> ost_series_;
  ServerSeries mds_series_;
  ResilienceSeries resilience_series_;
  std::map<std::uint32_t, RebuildSeries> rebuild_series_;
  CacheSeries cache_series_;
};

}  // namespace pio::trace
