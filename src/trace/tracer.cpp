#include "trace/tracer.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/record_io.hpp"

namespace pio::trace {

void Trace::sort_by_time() {
  std::stable_sort(events_.begin(), events_.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.end < b.end;
  });
}

Trace Trace::filtered(const std::function<bool(const TraceEvent&)>& keep) const {
  Trace out;
  for (const auto& e : events_) {
    if (keep(e)) out.append(e);
  }
  return out;
}

Trace Trace::layer(Layer layer) const {
  return filtered([layer](const TraceEvent& e) { return e.layer == layer; });
}

Trace Trace::rank(std::int32_t rank) const {
  return filtered([rank](const TraceEvent& e) { return e.rank == rank; });
}

std::vector<std::int32_t> Trace::ranks() const {
  std::set<std::int32_t> set;
  for (const auto& e : events_) set.insert(e.rank);
  return {set.begin(), set.end()};
}

std::vector<std::string> Trace::paths() const {
  std::set<std::string> set;
  for (const auto& e : events_) {
    if (!e.path.empty()) set.insert(e.path);
  }
  return {set.begin(), set.end()};
}

SimTime Trace::span() const {
  if (events_.empty()) return SimTime::zero();
  SimTime first = SimTime::max();
  SimTime last = SimTime::zero();
  for (const auto& e : events_) {
    first = std::min(first, e.start);
    last = std::max(last, e.end);
  }
  return last - first;
}

Bytes Trace::bytes_read() const {
  Bytes total = Bytes::zero();
  for (const auto& e : events_) {
    if (e.op == OpKind::kRead) total += Bytes{e.size};
  }
  return total;
}

Bytes Trace::bytes_written() const {
  Bytes total = Bytes::zero();
  for (const auto& e : events_) {
    if (e.op == OpKind::kWrite) total += Bytes{e.size};
  }
  return total;
}

Trace Trace::merge(const Trace& a, const Trace& b) {
  Trace out;
  std::vector<TraceEvent> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.events_.begin(), a.events_.end());
  merged.insert(merged.end(), b.events_.begin(), b.events_.end());
  out = Trace{std::move(merged)};
  out.sort_by_time();
  return out;
}

// ------------------------------------------------------------------- JSONL

void Trace::write_jsonl(std::ostream& out) const {
  for (const auto& e : events_) {
    Record r{{"layer", std::string(to_string(e.layer))},
             {"op", std::string(to_string(e.op))},
             {"rank", static_cast<std::int64_t>(e.rank)},
             {"path", e.path},
             {"offset", e.offset},
             {"size", e.size},
             {"start_ns", e.start.ns()},
             {"end_ns", e.end.ns()},
             {"ok", e.ok}};
    out << r.to_json_line() << "\n";
  }
}

namespace {

Layer layer_from(const std::string& s) {
  if (s == "app") return Layer::kApp;
  if (s == "hdf5") return Layer::kHdf5;
  if (s == "mpiio") return Layer::kMpiIo;
  if (s == "posix") return Layer::kPosix;
  if (s == "cache") return Layer::kCache;
  throw std::invalid_argument("unknown layer: " + s);
}

OpKind op_from(const std::string& s) {
  static const std::map<std::string, OpKind> table{
      {"open", OpKind::kOpen},       {"close", OpKind::kClose},
      {"read", OpKind::kRead},       {"write", OpKind::kWrite},
      {"stat", OpKind::kStat},       {"mkdir", OpKind::kMkdir},
      {"unlink", OpKind::kUnlink},   {"readdir", OpKind::kReaddir},
      {"fsync", OpKind::kFsync},     {"sync", OpKind::kSync},
      {"other", OpKind::kOther},
  };
  const auto it = table.find(s);
  if (it == table.end()) throw std::invalid_argument("unknown op: " + s);
  return it->second;
}

// Minimal JSON value scanner sufficient for the flat objects we emit.
std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto parse_string = [&]() -> std::string {
    std::string s;
    ++i;  // opening quote
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u':
            // \uXXXX: we only emit control characters this way; decode the
            // low byte.
            if (i + 4 < line.size()) {
              s += static_cast<char>(std::stoi(line.substr(i + 1, 4), nullptr, 16));
              i += 4;
            }
            break;
          default: s += line[i];
        }
      } else {
        s += line[i];
      }
      ++i;
    }
    ++i;  // closing quote
    return s;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') throw std::invalid_argument("bad json line");
  ++i;
  for (;;) {
    skip_ws();
    if (i < line.size() && line[i] == '}') break;
    if (i >= line.size() || line[i] != '"') throw std::invalid_argument("bad json key");
    const std::string key = parse_string();
    skip_ws();
    if (i >= line.size() || line[i] != ':') throw std::invalid_argument("bad json separator");
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      value = parse_string();
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}') value += line[i++];
    }
    out[key] = value;
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') break;
  }
  return out;
}

}  // namespace

Trace Trace::read_jsonl(std::istream& in) {
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto obj = parse_flat_json(line);
    TraceEvent e;
    e.layer = layer_from(obj.at("layer"));
    e.op = op_from(obj.at("op"));
    e.rank = static_cast<std::int32_t>(std::stol(obj.at("rank")));
    e.path = obj.at("path");
    e.offset = std::stoull(obj.at("offset"));
    e.size = std::stoull(obj.at("size"));
    e.start = SimTime::from_ns(std::stoll(obj.at("start_ns")));
    e.end = SimTime::from_ns(std::stoll(obj.at("end_ns")));
    e.ok = obj.at("ok") == "true";
    trace.append(std::move(e));
  }
  return trace;
}

// ------------------------------------------------------------------ binary

namespace {

constexpr char kMagic[8] = {'P', 'I', 'O', 'T', 'R', 'C', '0', '1'};

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("Trace::read_binary: truncated stream");
  return v;
}

struct BinaryRecord {
  std::uint8_t layer;
  std::uint8_t op;
  std::uint8_t ok;
  std::uint8_t pad = 0;
  std::int32_t rank;
  std::uint32_t path_id;
  std::uint32_t pad2 = 0;
  std::uint64_t offset;
  std::uint64_t size;
  std::int64_t start_ns;
  std::int64_t end_ns;
};
static_assert(sizeof(BinaryRecord) == 48);

}  // namespace

void Trace::write_binary(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  // Path table.
  std::map<std::string, std::uint32_t> path_ids;
  std::vector<const std::string*> paths_in_order;
  for (const auto& e : events_) {
    if (path_ids.emplace(e.path, static_cast<std::uint32_t>(path_ids.size())).second) {
      paths_in_order.push_back(&e.path);
    }
  }
  // The map assigns ids in insertion order; recover that order.
  std::vector<const std::string*> table(path_ids.size());
  for (const auto& [path, id] : path_ids) table[id] = &path;
  put<std::uint32_t>(out, static_cast<std::uint32_t>(table.size()));
  for (const auto* path : table) {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(path->size()));
    out.write(path->data(), static_cast<std::streamsize>(path->size()));
  }
  put<std::uint64_t>(out, events_.size());
  for (const auto& e : events_) {
    BinaryRecord r{};
    r.layer = static_cast<std::uint8_t>(e.layer);
    r.op = static_cast<std::uint8_t>(e.op);
    r.ok = e.ok ? 1 : 0;
    r.rank = e.rank;
    r.path_id = path_ids.at(e.path);
    r.offset = e.offset;
    r.size = e.size;
    r.start_ns = e.start.ns();
    r.end_ns = e.end.ns();
    put(out, r);
  }
}

namespace {

/// Bytes left between the read position and end of stream, or nullopt when
/// the stream is not seekable (pipes). Restores the read position.
std::optional<std::uint64_t> bytes_remaining(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (!in || end == std::istream::pos_type(-1) || end < here) return std::nullopt;
  return static_cast<std::uint64_t>(end - here);
}

template <typename T>
bool try_get(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Result<Trace> Trace::try_read_binary(std::istream& in) {
  const auto fail = [](std::string message) {
    return Error{1, "Trace::read_binary: " + std::move(message)};
  };
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return fail("bad magic");
  }
  const auto remaining = bytes_remaining(in);
  std::uint32_t path_count = 0;
  if (!try_get(in, path_count)) return fail("truncated stream");
  // A declared path table cannot be larger than the bytes behind it (each
  // entry carries at least its 4-byte length prefix): reject before any
  // allocation so a corrupt count cannot drive a huge resize.
  if (remaining.has_value() &&
      std::uint64_t{path_count} * sizeof(std::uint32_t) > *remaining) {
    return fail("path count exceeds stream size");
  }
  std::vector<std::string> paths;
  paths.reserve(std::min<std::uint64_t>(path_count, 4096));
  for (std::uint32_t p = 0; p < path_count; ++p) {
    std::uint32_t len = 0;
    if (!try_get(in, len)) return fail("truncated path table");
    if (const auto left = bytes_remaining(in); left.has_value() && len > *left) {
      return fail("path length exceeds stream size");
    }
    std::string path(len, '\0');
    in.read(path.data(), len);
    if (!in) return fail("truncated path table");
    paths.push_back(std::move(path));
  }
  std::uint64_t count = 0;
  if (!try_get(in, count)) return fail("truncated stream");
  if (const auto left = bytes_remaining(in);
      left.has_value() && count > *left / sizeof(BinaryRecord)) {
    return fail("event count exceeds stream size");
  }
  Trace trace;
  for (std::uint64_t i = 0; i < count; ++i) {
    BinaryRecord r{};
    if (!try_get(in, r)) return fail("truncated event records");
    if (r.path_id >= paths.size()) return fail("event references unknown path id");
    TraceEvent e;
    e.layer = static_cast<Layer>(r.layer);
    e.op = static_cast<OpKind>(r.op);
    e.ok = r.ok != 0;
    e.rank = r.rank;
    e.path = paths[r.path_id];
    e.offset = r.offset;
    e.size = r.size;
    e.start = SimTime::from_ns(r.start_ns);
    e.end = SimTime::from_ns(r.end_ns);
    trace.append(std::move(e));
  }
  return trace;
}

Trace Trace::read_binary(std::istream& in) {
  auto result = try_read_binary(in);
  if (!result.ok()) throw std::runtime_error(result.error().message);
  return std::move(result.value());
}

// ------------------------------------------------------------------ Tracer

void Tracer::record(const TraceEvent& event) {
  const std::scoped_lock lock(mutex_);
  trace_.append(event);
}

Trace Tracer::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return trace_;
}

Trace Tracer::take() {
  const std::scoped_lock lock(mutex_);
  Trace out = std::move(trace_);
  trace_ = Trace{};
  return out;
}

std::size_t Tracer::size() const {
  const std::scoped_lock lock(mutex_);
  return trace_.size();
}

}  // namespace pio::trace
