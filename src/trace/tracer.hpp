// PIOEval trace: lossless multi-level tracing (Recorder/DXT-style).
//
// A Tracer keeps the complete, timestamped execution chronology. This is
// the expensive-but-exact option of §IV.A.2: "traces record a detailed
// report of the execution chronology of function and system calls together
// with a timestamp, which produces much more log data". The in-memory trace
// can be filtered, merged, serialized (JSONL + compact binary), and fed to
// the replay and simulation subsystems.
#pragma once

#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "trace/event.hpp"

namespace pio::trace {

/// A recorded trace: events in record order (per rank monotonically
/// increasing start times; global order is merge order).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEvent> events) : events_(std::move(events)) {}

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  void append(TraceEvent event) { events_.push_back(std::move(event)); }

  /// Stable sort by (start, rank, end) — canonical order for comparisons.
  void sort_by_time();

  /// Events matching a predicate, e.g. one layer or one rank.
  [[nodiscard]] Trace filtered(const std::function<bool(const TraceEvent&)>& keep) const;
  [[nodiscard]] Trace layer(Layer layer) const;
  [[nodiscard]] Trace rank(std::int32_t rank) const;

  /// Ranks present, sorted.
  [[nodiscard]] std::vector<std::int32_t> ranks() const;
  /// Distinct paths touched, sorted.
  [[nodiscard]] std::vector<std::string> paths() const;
  [[nodiscard]] SimTime span() const;  ///< last end - first start (0 if empty)
  [[nodiscard]] Bytes bytes_read() const;
  [[nodiscard]] Bytes bytes_written() const;

  /// Merge two traces, keeping time order.
  [[nodiscard]] static Trace merge(const Trace& a, const Trace& b);

  // -- serialization -------------------------------------------------------

  /// One JSON object per line.
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] static Trace read_jsonl(std::istream& in);

  /// Compact length-prefixed binary (path table + fixed records). Roughly
  /// 40 bytes/event vs ~160 for JSONL.
  void write_binary(std::ostream& out) const;
  [[nodiscard]] static Trace read_binary(std::istream& in);

  /// Non-throwing variant of read_binary for untrusted inputs. Declared
  /// counts are validated against the bytes actually remaining in the
  /// stream *before* any allocation, so a corrupt header cannot trigger a
  /// huge resize; a record referencing a path id outside the table, or any
  /// truncation, is an Error rather than an exception. read_binary wraps
  /// this and throws std::runtime_error with the same message.
  [[nodiscard]] static Result<Trace> try_read_binary(std::istream& in);

 private:
  std::vector<TraceEvent> events_;
};

/// Thread-safe sink that accumulates a Trace.
class Tracer final : public Sink {
 public:
  void record(const TraceEvent& event) override;

  /// Snapshot the trace so far (copies under the lock).
  [[nodiscard]] Trace snapshot() const;
  /// Move the trace out and reset the tracer.
  [[nodiscard]] Trace take();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  Trace trace_;
};

}  // namespace pio::trace
