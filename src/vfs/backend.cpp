#include "vfs/backend.hpp"

#include <mutex>

namespace pio::vfs {

namespace {

Error bad_fd(Fd fd) {
  return Error{-1, "bad file descriptor: " + std::to_string(fd)};
}

Error bad_mode(const char* op) {
  return Error{-2, std::string("descriptor not open for ") + op};
}

}  // namespace

LocalBackend::LocalBackend(FileSystem& fs) : fs_(fs) {}

Result<Fd> LocalBackend::open(const std::string& path, const OpenOptions& options) {
  const std::scoped_lock lock(mutex_);
  if (!fs_.exists(path)) {
    if (!options.create) return Error{-3, "open: no such file: " + path};
    const FsStatus status = fs_.create(path);
    if (status != FsStatus::kOk) {
      return Error{static_cast<int>(status), std::string("open: ") + to_string(status)};
    }
  } else if (options.truncate && options.mode != OpenMode::kRead) {
    fs_.truncate(path, Bytes::zero());
  }
  const auto info = fs_.stat(path);
  if (info.ok() && info.value().is_dir) return Error{-4, "open: is a directory: " + path};
  const Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{path, options.mode});
  return fd;
}

Result<std::size_t> LocalBackend::pread(Fd fd, std::span<std::byte> out, std::uint64_t offset) {
  const std::scoped_lock lock(mutex_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return bad_fd(fd);
  if (it->second.mode == OpenMode::kWrite) return bad_mode("reading");
  return fs_.pread(it->second.path, out, offset);
}

Result<std::size_t> LocalBackend::pwrite(Fd fd, std::span<const std::byte> data,
                                         std::uint64_t offset) {
  const std::scoped_lock lock(mutex_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return bad_fd(fd);
  if (it->second.mode == OpenMode::kRead) return bad_mode("writing");
  return fs_.pwrite(it->second.path, data, offset);
}

FsStatus LocalBackend::close(Fd fd) {
  const std::scoped_lock lock(mutex_);
  return open_files_.erase(fd) > 0 ? FsStatus::kOk : FsStatus::kInvalid;
}

FsStatus LocalBackend::fsync(Fd fd) {
  const std::scoped_lock lock(mutex_);
  // In-memory store: fsync is a semantic no-op but still validates the fd so
  // traces show it against a real file.
  return open_files_.contains(fd) ? FsStatus::kOk : FsStatus::kInvalid;
}

FsStatus LocalBackend::mkdir(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return fs_.mkdir(path);
}

FsStatus LocalBackend::remove(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return fs_.remove(path);
}

Result<FileInfo> LocalBackend::stat(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return fs_.stat(path);
}

Result<std::vector<std::string>> LocalBackend::readdir(const std::string& path) {
  const std::scoped_lock lock(mutex_);
  return fs_.readdir(path);
}

std::string LocalBackend::path_of(Fd fd) const {
  const std::scoped_lock lock(mutex_);
  const auto it = open_files_.find(fd);
  return it == open_files_.end() ? std::string{} : it->second.path;
}

std::size_t LocalBackend::open_descriptors() const {
  const std::scoped_lock lock(mutex_);
  return open_files_.size();
}

}  // namespace pio::vfs
