// PIOEval VFS: the POSIX-level I/O interface (Fig. 2, bottom of the stack).
//
// Everything above — the MPI-IO layer, the HDF5-lite library, application
// code — performs I/O exclusively through this interface, which makes it the
// interposition point for POSIX-level tracing and profiling, exactly where
// Darshan/Recorder hook the real stack.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "vfs/file_system.hpp"

namespace pio::vfs {

using Fd = std::int32_t;

enum class OpenMode : std::uint8_t { kRead, kWrite, kReadWrite };

struct OpenOptions {
  OpenMode mode = OpenMode::kReadWrite;
  bool create = false;
  bool truncate = false;
};

/// Abstract POSIX-shaped backend. Implementations must be safe to call from
/// multiple rank threads concurrently.
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual Result<Fd> open(const std::string& path, const OpenOptions& options) = 0;
  [[nodiscard]] virtual Result<std::size_t> pread(Fd fd, std::span<std::byte> out,
                                                  std::uint64_t offset) = 0;
  [[nodiscard]] virtual Result<std::size_t> pwrite(Fd fd, std::span<const std::byte> data,
                                                   std::uint64_t offset) = 0;
  virtual FsStatus close(Fd fd) = 0;
  virtual FsStatus fsync(Fd fd) = 0;
  virtual FsStatus mkdir(const std::string& path) = 0;
  virtual FsStatus remove(const std::string& path) = 0;
  [[nodiscard]] virtual Result<FileInfo> stat(const std::string& path) = 0;
  [[nodiscard]] virtual Result<std::vector<std::string>> readdir(const std::string& path) = 0;

  /// Path behind an open descriptor ("" if unknown) — used by tracers to
  /// attribute per-file statistics.
  [[nodiscard]] virtual std::string path_of(Fd fd) const = 0;
};

/// In-memory backend over a FileSystem, with a process-wide lock — the
/// "compute node runs the real code" half of the measurement path.
class LocalBackend final : public Backend {
 public:
  explicit LocalBackend(FileSystem& fs);

  [[nodiscard]] Result<Fd> open(const std::string& path, const OpenOptions& options) override;
  [[nodiscard]] Result<std::size_t> pread(Fd fd, std::span<std::byte> out,
                                          std::uint64_t offset) override;
  [[nodiscard]] Result<std::size_t> pwrite(Fd fd, std::span<const std::byte> data,
                                           std::uint64_t offset) override;
  FsStatus close(Fd fd) override;
  FsStatus fsync(Fd fd) override;
  FsStatus mkdir(const std::string& path) override;
  FsStatus remove(const std::string& path) override;
  [[nodiscard]] Result<FileInfo> stat(const std::string& path) override;
  [[nodiscard]] Result<std::vector<std::string>> readdir(const std::string& path) override;
  [[nodiscard]] std::string path_of(Fd fd) const override;

  [[nodiscard]] std::size_t open_descriptors() const;

 private:
  struct OpenFile {
    std::string path;
    OpenMode mode;
  };

  mutable std::mutex mutex_;
  FileSystem& fs_;
  Fd next_fd_ = 3;  // 0/1/2 reserved, as tradition demands
  std::map<Fd, OpenFile> open_files_;
};

}  // namespace pio::vfs
