#include "vfs/fault_injection.hpp"

namespace pio::vfs {

namespace {

Error injected_error(const char* what) {
  return Error{kInjectedFaultCode, std::string("injected fault: ") + what};
}

}  // namespace

FaultInjectionBackend::FaultInjectionBackend(Backend& inner, const FaultPlan& plan)
    : inner_(inner), plan_(plan) {}

bool FaultInjectionBackend::should_fail(double probability) {
  const std::uint64_t index = ops_.fetch_add(1);
  if (probability <= 0.0 || index < plan_.grace_ops) return false;
  // One fresh draw per op index: deterministic under any thread
  // interleaving of the surrounding calls.
  Rng rng{plan_.seed, index};
  const bool fail = rng.chance(probability);
  if (fail) injected_.fetch_add(1);
  return fail;
}

Result<Fd> FaultInjectionBackend::open(const std::string& path, const OpenOptions& options) {
  if (should_fail(plan_.open_failure)) return injected_error("open");
  return inner_.open(path, options);
}

Result<std::size_t> FaultInjectionBackend::pread(Fd fd, std::span<std::byte> out,
                                                 std::uint64_t offset) {
  if (should_fail(plan_.read_failure)) return injected_error("pread");
  return inner_.pread(fd, out, offset);
}

Result<std::size_t> FaultInjectionBackend::pwrite(Fd fd, std::span<const std::byte> data,
                                                  std::uint64_t offset) {
  if (should_fail(plan_.write_failure)) return injected_error("pwrite");
  return inner_.pwrite(fd, data, offset);
}

FsStatus FaultInjectionBackend::close(Fd fd) {
  // Close never fails: leaking descriptors on injected errors would turn
  // every failure test into a resource-leak test.
  (void)ops_.fetch_add(1);
  return inner_.close(fd);
}

FsStatus FaultInjectionBackend::fsync(Fd fd) {
  if (should_fail(plan_.metadata_failure)) return FsStatus::kInvalid;
  return inner_.fsync(fd);
}

FsStatus FaultInjectionBackend::mkdir(const std::string& path) {
  if (should_fail(plan_.metadata_failure)) return FsStatus::kInvalid;
  return inner_.mkdir(path);
}

FsStatus FaultInjectionBackend::remove(const std::string& path) {
  if (should_fail(plan_.metadata_failure)) return FsStatus::kInvalid;
  return inner_.remove(path);
}

Result<FileInfo> FaultInjectionBackend::stat(const std::string& path) {
  if (should_fail(plan_.metadata_failure)) return injected_error("stat");
  return inner_.stat(path);
}

Result<std::vector<std::string>> FaultInjectionBackend::readdir(const std::string& path) {
  if (should_fail(plan_.metadata_failure)) return injected_error("readdir");
  return inner_.readdir(path);
}

}  // namespace pio::vfs
