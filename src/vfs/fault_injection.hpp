// PIOEval VFS: deterministic fault injection.
//
// A Backend decorator that fails a configurable, deterministic subset of
// operations — the tool for testing how the measurement stack behaves on a
// misbehaving file system: do tracers record the failures, do profilers
// count them, do applications survive? Determinism comes from the usual
// counter-based RNG, so a failing test case replays exactly.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/rng.hpp"
#include "vfs/backend.hpp"

namespace pio::vfs {

struct FaultPlan {
  /// Independent failure probability per operation class.
  double open_failure = 0.0;
  double read_failure = 0.0;
  double write_failure = 0.0;
  double metadata_failure = 0.0;
  /// Operations before any fault fires (lets setup complete).
  std::uint64_t grace_ops = 0;
  std::uint64_t seed = 1337;
};

/// Error code used for every injected failure (distinguishable from real
/// backend errors in tests and traces).
inline constexpr int kInjectedFaultCode = -999;

class FaultInjectionBackend final : public Backend {
 public:
  FaultInjectionBackend(Backend& inner, const FaultPlan& plan);

  [[nodiscard]] Result<Fd> open(const std::string& path, const OpenOptions& options) override;
  [[nodiscard]] Result<std::size_t> pread(Fd fd, std::span<std::byte> out,
                                          std::uint64_t offset) override;
  [[nodiscard]] Result<std::size_t> pwrite(Fd fd, std::span<const std::byte> data,
                                           std::uint64_t offset) override;
  FsStatus close(Fd fd) override;
  FsStatus fsync(Fd fd) override;
  FsStatus mkdir(const std::string& path) override;
  FsStatus remove(const std::string& path) override;
  [[nodiscard]] Result<FileInfo> stat(const std::string& path) override;
  [[nodiscard]] Result<std::vector<std::string>> readdir(const std::string& path) override;
  [[nodiscard]] std::string path_of(Fd fd) const override { return inner_.path_of(fd); }

  [[nodiscard]] std::uint64_t injected_faults() const { return injected_.load(); }
  [[nodiscard]] std::uint64_t total_ops() const { return ops_.load(); }

 private:
  /// Decide (thread-safely, deterministically by global op index) whether
  /// this operation fails.
  [[nodiscard]] bool should_fail(double probability);

  Backend& inner_;
  FaultPlan plan_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace pio::vfs
