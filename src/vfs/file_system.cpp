#include "vfs/file_system.hpp"

#include <algorithm>
#include <cstring>

namespace pio::vfs {

namespace {

Error fs_error(FsStatus status, const std::string& path) {
  return Error{static_cast<int>(status), std::string(to_string(status)) + ": " + path};
}

}  // namespace

const char* to_string(FsStatus status) {
  switch (status) {
    case FsStatus::kOk: return "ok";
    case FsStatus::kNotFound: return "not found";
    case FsStatus::kExists: return "already exists";
    case FsStatus::kIsDirectory: return "is a directory";
    case FsStatus::kNotDirectory: return "not a directory";
    case FsStatus::kNotEmpty: return "directory not empty";
    case FsStatus::kInvalid: return "invalid argument";
  }
  return "?";
}

FileSystem::FileSystem() {
  Node root;
  root.is_dir = true;
  nodes_.emplace("/", root);
}

std::string FileSystem::parent_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

bool FileSystem::valid_path(const std::string& path) {
  if (path.empty() || path.front() != '/') return false;
  if (path.size() > 1 && path.back() == '/') return false;
  if (path.find("//") != std::string::npos) return false;
  return true;
}

const FileSystem::Node* FileSystem::find(const std::string& path) const {
  const auto it = nodes_.find(path);
  return it == nodes_.end() ? nullptr : &it->second;
}

FileSystem::Node* FileSystem::find(const std::string& path) {
  const auto it = nodes_.find(path);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool FileSystem::has_children(const std::string& path) const {
  const std::string prefix = path == "/" ? "/" : path + "/";
  const auto it = nodes_.lower_bound(prefix);
  return it != nodes_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

FsStatus FileSystem::create(const std::string& path) {
  if (!valid_path(path) || path == "/") return FsStatus::kInvalid;
  if (nodes_.contains(path)) return FsStatus::kExists;
  const Node* parent = find(parent_of(path));
  if (parent == nullptr) return FsStatus::kNotFound;
  if (!parent->is_dir) return FsStatus::kNotDirectory;
  nodes_.emplace(path, Node{});
  return FsStatus::kOk;
}

FsStatus FileSystem::mkdir(const std::string& path) {
  if (!valid_path(path) || path == "/") return FsStatus::kInvalid;
  if (nodes_.contains(path)) return FsStatus::kExists;
  const Node* parent = find(parent_of(path));
  if (parent == nullptr) return FsStatus::kNotFound;
  if (!parent->is_dir) return FsStatus::kNotDirectory;
  Node node;
  node.is_dir = true;
  nodes_.emplace(path, node);
  return FsStatus::kOk;
}

FsStatus FileSystem::remove(const std::string& path) {
  if (!valid_path(path) || path == "/") return FsStatus::kInvalid;
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return FsStatus::kNotFound;
  if (it->second.is_dir && has_children(path)) return FsStatus::kNotEmpty;
  for (const auto& [idx, page] : it->second.pages) allocated_ -= Bytes{page.size()};
  nodes_.erase(it);
  return FsStatus::kOk;
}

FsStatus FileSystem::rename(const std::string& from, const std::string& to) {
  if (!valid_path(from) || !valid_path(to) || from == "/" || to == "/") return FsStatus::kInvalid;
  const auto it = nodes_.find(from);
  if (it == nodes_.end()) return FsStatus::kNotFound;
  if (nodes_.contains(to)) return FsStatus::kExists;
  const Node* parent = find(parent_of(to));
  if (parent == nullptr || !parent->is_dir) return FsStatus::kNotFound;
  if (it->second.is_dir && has_children(from)) {
    // Renaming a non-empty directory would require rewriting child keys;
    // out of scope for the workloads this VFS serves.
    return FsStatus::kNotEmpty;
  }
  Node node = std::move(it->second);
  nodes_.erase(it);
  node.version++;
  nodes_.emplace(to, std::move(node));
  return FsStatus::kOk;
}

bool FileSystem::exists(const std::string& path) const { return nodes_.contains(path); }

Result<FileInfo> FileSystem::stat(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return fs_error(FsStatus::kNotFound, path);
  return FileInfo{node->is_dir, Bytes{node->size}, node->version};
}

Result<std::vector<std::string>> FileSystem::readdir(const std::string& path) const {
  const Node* node = find(path);
  if (node == nullptr) return fs_error(FsStatus::kNotFound, path);
  if (!node->is_dir) return fs_error(FsStatus::kNotDirectory, path);
  std::vector<std::string> names;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (auto it = nodes_.lower_bound(prefix);
       it != nodes_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    const std::string rest = it->first.substr(prefix.size());
    if (!rest.empty() && rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;
}

Result<std::size_t> FileSystem::pwrite(const std::string& path, std::span<const std::byte> data,
                                       std::uint64_t offset) {
  Node* node = find(path);
  if (node == nullptr) return fs_error(FsStatus::kNotFound, path);
  if (node->is_dir) return fs_error(FsStatus::kIsDirectory, path);
  // POSIX: a zero-length write succeeds without extending the file, even at
  // an offset past EOF.
  if (data.empty()) return std::size_t{0};
  std::uint64_t cur = offset;
  std::size_t written = 0;
  while (written < data.size()) {
    const std::uint64_t page_index = cur / kPageSize;
    const std::size_t within = static_cast<std::size_t>(cur % kPageSize);
    const std::size_t run = std::min(data.size() - written, kPageSize - within);
    auto& page = node->pages[page_index];
    if (page.size() < within + run) {
      allocated_ += Bytes{within + run - page.size()};
      page.resize(within + run);
    }
    std::memcpy(page.data() + within, data.data() + written, run);
    cur += run;
    written += run;
  }
  node->size = std::max(node->size, offset + data.size());
  ++node->version;
  return written;
}

Result<std::size_t> FileSystem::pread(const std::string& path, std::span<std::byte> out,
                                      std::uint64_t offset) const {
  const Node* node = find(path);
  if (node == nullptr) return fs_error(FsStatus::kNotFound, path);
  if (node->is_dir) return fs_error(FsStatus::kIsDirectory, path);
  if (offset >= node->size) return std::size_t{0};
  const std::size_t want =
      std::min<std::uint64_t>(out.size(), node->size - offset);
  std::uint64_t cur = offset;
  std::size_t read = 0;
  while (read < want) {
    const std::uint64_t page_index = cur / kPageSize;
    const std::size_t within = static_cast<std::size_t>(cur % kPageSize);
    const std::size_t run = std::min(want - read, kPageSize - within);
    const auto it = node->pages.find(page_index);
    if (it == node->pages.end()) {
      std::memset(out.data() + read, 0, run);  // hole
    } else {
      const auto& page = it->second;
      const std::size_t have = page.size() > within ? page.size() - within : 0;
      const std::size_t copy = std::min(run, have);
      if (copy > 0) std::memcpy(out.data() + read, page.data() + within, copy);
      if (copy < run) std::memset(out.data() + read + copy, 0, run - copy);
    }
    cur += run;
    read += run;
  }
  return read;
}

FsStatus FileSystem::truncate(const std::string& path, Bytes new_size) {
  Node* node = find(path);
  if (node == nullptr) return FsStatus::kNotFound;
  if (node->is_dir) return FsStatus::kIsDirectory;
  const std::uint64_t size = new_size.count();
  if (size < node->size) {
    // Drop pages entirely beyond the new end; trim the boundary page.
    const std::uint64_t first_dead_page = (size + kPageSize - 1) / kPageSize;
    for (auto it = node->pages.lower_bound(first_dead_page); it != node->pages.end();) {
      allocated_ -= Bytes{it->second.size()};
      it = node->pages.erase(it);
    }
    const std::uint64_t boundary = size / kPageSize;
    const auto it = node->pages.find(boundary);
    if (it != node->pages.end()) {
      const auto keep = static_cast<std::size_t>(size % kPageSize);
      if (it->second.size() > keep) {
        allocated_ -= Bytes{it->second.size() - keep};
        it->second.resize(keep);
      }
    }
  }
  node->size = size;
  ++node->version;
  return FsStatus::kOk;
}

std::size_t FileSystem::file_count() const {
  std::size_t n = 0;
  for (const auto& [path, node] : nodes_) {
    if (!node.is_dir) ++n;
  }
  return n;
}

}  // namespace pio::vfs
