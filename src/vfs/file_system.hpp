// PIOEval VFS: an in-memory POSIX-like file system.
//
// This is the functional data store behind the measurement path: application
// code and the I/O middleware (pio::mio, pio::h5) run against it for real,
// with actual bytes, so correctness is testable end to end. Content is
// stored in sparse pages; reading a hole returns zeros, as POSIX specifies
// for sparse files.
//
// Thread-unsafe by design; LocalBackend adds the locking for the
// threads-as-ranks measurement path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace pio::vfs {

enum class FsStatus : std::uint8_t {
  kOk,
  kNotFound,
  kExists,
  kIsDirectory,
  kNotDirectory,
  kNotEmpty,
  kInvalid,
};

[[nodiscard]] const char* to_string(FsStatus status);

struct FileInfo {
  bool is_dir = false;
  Bytes size = Bytes::zero();
  std::uint64_t version = 0;  ///< bumped on every mutation ("mtime")
};

/// Sparse in-memory file system keyed by absolute paths ("/a/b").
class FileSystem {
 public:
  static constexpr std::size_t kPageSize = 64 * 1024;

  FileSystem();

  /// Create an empty regular file. Parent directory must exist.
  FsStatus create(const std::string& path);
  FsStatus mkdir(const std::string& path);
  /// Remove a file, or an empty directory.
  FsStatus remove(const std::string& path);
  FsStatus rename(const std::string& from, const std::string& to);

  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] Result<FileInfo> stat(const std::string& path) const;
  /// Names (not paths) of direct children, sorted.
  [[nodiscard]] Result<std::vector<std::string>> readdir(const std::string& path) const;

  /// Write at offset, extending the file as needed. Returns bytes written.
  [[nodiscard]] Result<std::size_t> pwrite(const std::string& path,
                                           std::span<const std::byte> data,
                                           std::uint64_t offset);
  /// Read at offset; short reads at EOF, zeros in holes. Returns bytes read.
  [[nodiscard]] Result<std::size_t> pread(const std::string& path, std::span<std::byte> out,
                                          std::uint64_t offset) const;

  FsStatus truncate(const std::string& path, Bytes new_size);

  [[nodiscard]] std::size_t file_count() const;
  /// Bytes of page storage actually allocated (for memory accounting).
  [[nodiscard]] Bytes allocated_bytes() const { return allocated_; }

 private:
  struct Node {
    bool is_dir = false;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    std::map<std::uint64_t, std::vector<std::byte>> pages;  // page index -> page
  };

  [[nodiscard]] static std::string parent_of(const std::string& path);
  [[nodiscard]] static bool valid_path(const std::string& path);
  [[nodiscard]] const Node* find(const std::string& path) const;
  [[nodiscard]] Node* find(const std::string& path);
  [[nodiscard]] bool has_children(const std::string& path) const;

  std::map<std::string, Node> nodes_;
  Bytes allocated_ = Bytes::zero();
};

}  // namespace pio::vfs
