#include "workload/dlio.hpp"

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace pio::workload {

namespace {

/// Lazy per-rank stream over shuffled epochs. The shuffled order is derived
/// deterministically from (seed, epoch), so every rank — and every re-stream
/// of the same workload — sees the same global order.
class DlioStream final : public RankStream {
 public:
  DlioStream(const DlioConfig& config, std::int32_t rank) : config_(config), rank_(rank) {}

  std::optional<Op> next() override {
    for (;;) {
      switch (phase_) {
        case Phase::kPrep: {
          if (!config_.include_preparation || rank_ != 0) {
            phase_ = Phase::kPrepBarrier;
            continue;
          }
          const std::uint64_t shards = shard_count();
          // Sub-steps per shard: mkdir (once), create, write, close.
          if (prep_step_ == 0) {
            ++prep_step_;
            return Op::mkdir(config_.directory);
          }
          const std::uint64_t shard = (prep_step_ - 1) / 3;
          const std::uint64_t sub = (prep_step_ - 1) % 3;
          if (shard >= shards) {
            phase_ = Phase::kPrepBarrier;
            continue;
          }
          ++prep_step_;
          const std::string path = dlio_shard_path(config_, shard);
          if (sub == 0) return Op::create(path);
          if (sub == 1) {
            return Op::write(path, 0, Bytes{samples_in_shard(shard) * config_.sample_size.count()});
          }
          return Op::close(path);
        }
        case Phase::kPrepBarrier:
          phase_ = Phase::kOpenShards;
          return Op::barrier();
        case Phase::kOpenShards: {
          // Every rank opens all shards once (the framework's file handles).
          if (open_index_ >= shard_count()) {
            phase_ = Phase::kTrain;
            begin_epoch();
            continue;
          }
          return Op::open(dlio_shard_path(config_, open_index_++));
        }
        case Phase::kTrain: {
          if (epoch_ >= config_.epochs) {
            phase_ = Phase::kCloseShards;
            continue;
          }
          if (cursor_ >= my_samples_.size()) {
            // End of this rank's epoch portion.
            ++epoch_;
            if (epoch_ >= config_.epochs) {
              phase_ = Phase::kEpochBarrier;
              continue;
            }
            begin_epoch();
            phase_ = Phase::kEpochBarrier;
            continue;
          }
          // Emit compute after each full batch.
          if (in_batch_ == config_.batch_size) {
            in_batch_ = 0;
            return Op::compute(config_.compute_per_batch);
          }
          const std::uint64_t sample = my_samples_[cursor_++];
          ++in_batch_;
          const std::uint64_t shard = sample / config_.samples_per_file;
          const std::uint64_t within = sample % config_.samples_per_file;
          return Op::read(dlio_shard_path(config_, shard),
                          within * config_.sample_size.count(), config_.sample_size);
        }
        case Phase::kEpochBarrier:
          phase_ = epoch_ >= config_.epochs ? Phase::kCloseShards : Phase::kTrain;
          return Op::barrier();
        case Phase::kCloseShards: {
          if (close_index_ >= shard_count()) {
            phase_ = Phase::kDone;
            continue;
          }
          return Op::close(dlio_shard_path(config_, close_index_++));
        }
        case Phase::kDone:
          return std::nullopt;
      }
    }
  }

 private:
  enum class Phase {
    kPrep,
    kPrepBarrier,
    kOpenShards,
    kTrain,
    kEpochBarrier,
    kCloseShards,
    kDone
  };

  [[nodiscard]] std::uint64_t shard_count() const {
    return (config_.samples + config_.samples_per_file - 1) / config_.samples_per_file;
  }

  [[nodiscard]] std::uint64_t samples_in_shard(std::uint64_t shard) const {
    const std::uint64_t start = shard * config_.samples_per_file;
    return std::min(config_.samples_per_file, config_.samples - start);
  }

  void begin_epoch() {
    // Global shuffled order for this epoch, identical on every rank; each
    // rank takes a strided slice (sample i goes to rank i % ranks), which is
    // how distributed samplers shard a common permutation.
    std::vector<std::uint64_t> order(config_.samples);
    for (std::uint64_t i = 0; i < config_.samples; ++i) order[i] = i;
    if (config_.shuffle) {
      Rng rng{config_.seed, std::uint64_t{0xD110} + static_cast<std::uint64_t>(epoch_)};
      rng.shuffle(order);
    }
    my_samples_.clear();
    for (std::uint64_t i = static_cast<std::uint64_t>(rank_); i < order.size();
         i += static_cast<std::uint64_t>(config_.ranks)) {
      my_samples_.push_back(order[i]);
    }
    cursor_ = 0;
    in_batch_ = 0;
  }

  DlioConfig config_;
  std::int32_t rank_;
  Phase phase_ = Phase::kPrep;
  std::uint64_t prep_step_ = 0;
  std::uint64_t open_index_ = 0;
  std::uint64_t close_index_ = 0;
  std::int32_t epoch_ = 0;
  std::vector<std::uint64_t> my_samples_;
  std::size_t cursor_ = 0;
  std::uint64_t in_batch_ = 0;
};

class DlioWorkload final : public Workload {
 public:
  explicit DlioWorkload(const DlioConfig& config) : config_(config) {
    if (config.ranks <= 0) throw std::invalid_argument("dlio_like: ranks must be positive");
    if (config.samples == 0 || config.samples_per_file == 0 || config.batch_size == 0) {
      throw std::invalid_argument("dlio_like: samples, samples_per_file, batch_size must be > 0");
    }
  }

  [[nodiscard]] std::string name() const override { return "dlio"; }
  [[nodiscard]] std::int32_t ranks() const override { return config_.ranks; }
  [[nodiscard]] std::unique_ptr<RankStream> stream(std::int32_t rank) const override {
    return std::make_unique<DlioStream>(config_, rank);
  }

 private:
  DlioConfig config_;
};

}  // namespace

std::unique_ptr<Workload> dlio_like(const DlioConfig& config) {
  return std::make_unique<DlioWorkload>(config);
}

std::string dlio_shard_path(const DlioConfig& config, std::uint64_t shard) {
  return config.directory + "/shard" + std::to_string(shard) + ".data";
}

}  // namespace pio::workload
