// PIOEval workload: deep-learning training I/O (DLIO-like, §V.B / [80]).
//
// "The DL training phase gives rise to highly random small file accesses
// ... The requirement of randomly shuffled input imposes significant
// pressure to parallel file systems, which are typically designed and
// optimized for large sequential I/O."
//
// The generator models exactly that: a dataset of fixed-size samples packed
// into files; each epoch visits every sample once in a globally shuffled
// order, partitioned across ranks into minibatches; every sample access is
// a small read at a random file offset, followed by a compute step per
// batch. Streams are lazy — an epoch over a large dataset never needs to be
// materialized.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "workload/op.hpp"

namespace pio::workload {

struct DlioConfig {
  std::int32_t ranks = 8;
  std::uint64_t samples = 16'384;          ///< dataset size
  Bytes sample_size = Bytes::from_kib(128);
  std::uint64_t samples_per_file = 1024;   ///< dataset sharding
  std::uint64_t batch_size = 32;           ///< per rank
  std::int32_t epochs = 1;
  SimTime compute_per_batch = SimTime::from_ms(50.0);
  bool shuffle = true;                     ///< false = sequential scan (ablation)
  std::uint64_t seed = 42;
  std::string directory = "/dataset";
  /// Emit the dataset-preparation phase (rank 0 writes all shards).
  bool include_preparation = true;
};

/// DLIO-like deep-learning training workload.
[[nodiscard]] std::unique_ptr<Workload> dlio_like(const DlioConfig& config);

/// Path of dataset shard `i` under `config.directory`.
[[nodiscard]] std::string dlio_shard_path(const DlioConfig& config, std::uint64_t shard);

}  // namespace pio::workload
