#include "workload/dsl.hpp"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

namespace pio::workload {

namespace {

// ------------------------------------------------------------------- lexer

enum class TokKind : std::uint8_t {
  kIdent,
  kNumber,  // value already scaled by its unit suffix
  kString,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;        // ident / string payload
  std::int64_t number = 0; // scaled numeric value
  std::size_t line = 1;
};

[[nodiscard]] std::int64_t unit_multiplier(const std::string& unit, std::size_t line) {
  if (unit.empty() || unit == "B") return 1;
  if (unit == "KiB") return 1024;
  if (unit == "MiB") return 1024LL * 1024;
  if (unit == "GiB") return 1024LL * 1024 * 1024;
  if (unit == "ns") return 1;
  if (unit == "us") return 1000;
  if (unit == "ms") return 1000LL * 1000;
  if (unit == "s") return 1000LL * 1000 * 1000;
  throw DslError(line, "unknown unit suffix '" + unit + "'");
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = TokKind::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::int64_t value = 0;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
        value = value * 10 + (src_[pos_++] - '0');
      }
      // Optional unit suffix glued to the number: 4MiB, 50ms.
      std::string unit;
      while (pos_ < src_.size() && std::isalpha(static_cast<unsigned char>(src_[pos_])) != 0) {
        unit += src_[pos_++];
      }
      current_.kind = TokKind::kNumber;
      current_.number = value * unit_multiplier(unit, line_);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::string ident;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 || src_[pos_] == '_')) {
        ident += src_[pos_++];
      }
      current_.kind = TokKind::kIdent;
      current_.text = std::move(ident);
      return;
    }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\n') throw DslError(line_, "unterminated string");
        s += src_[pos_++];
      }
      if (pos_ >= src_.size()) throw DslError(line_, "unterminated string");
      ++pos_;  // closing quote
      current_.kind = TokKind::kString;
      current_.text = std::move(s);
      return;
    }
    ++pos_;
    switch (c) {
      case '{': current_.kind = TokKind::kLBrace; return;
      case '}': current_.kind = TokKind::kRBrace; return;
      case '(': current_.kind = TokKind::kLParen; return;
      case ')': current_.kind = TokKind::kRParen; return;
      case '+': current_.kind = TokKind::kPlus; return;
      case '-': current_.kind = TokKind::kMinus; return;
      case '*': current_.kind = TokKind::kStar; return;
      case '/': current_.kind = TokKind::kSlash; return;
      case '%': current_.kind = TokKind::kPercent; return;
      default: throw DslError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

// --------------------------------------------------------------------- AST

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t { kConst, kVar, kBinary } kind = Kind::kConst;
  std::int64_t value = 0;   // kConst
  std::string var;          // kVar
  char op = '+';            // kBinary
  ExprPtr lhs;
  ExprPtr rhs;
  std::size_t line = 1;
};

/// A path template: literal segments interleaved with expressions.
struct PathTemplate {
  std::vector<std::string> literals;  // size == exprs.size() + 1
  std::vector<ExprPtr> exprs;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kCreate, kOpen, kClose, kStat, kUnlink, kMkdir, kReaddir, kFsync,
    kRead, kWrite, kCompute, kBarrier, kLoop,
  } kind = Kind::kBarrier;
  PathTemplate path;     // file ops
  ExprPtr offset;        // read/write
  ExprPtr size;          // read/write
  ExprPtr duration;      // compute
  std::string loop_var;  // loop
  std::int64_t loop_count = 0;
  std::vector<StmtPtr> body;  // loop
  std::size_t line = 1;
};

struct Program {
  std::string name = "dsl";
  std::int32_t ranks = 1;
  std::vector<StmtPtr> stmts;
};

// ------------------------------------------------------------------ parser

class Parser {
 public:
  explicit Parser(std::string_view source) : lexer_(source) {}

  Program parse() {
    Program program;
    bool ranks_seen = false;
    while (lexer_.peek().kind != TokKind::kEnd) {
      const Token& t = lexer_.peek();
      if (t.kind == TokKind::kIdent && t.text == "name") {
        lexer_.take();
        program.name = expect(TokKind::kString, "workload name string").text;
      } else if (t.kind == TokKind::kIdent && t.text == "ranks") {
        lexer_.take();
        const Token n = expect(TokKind::kNumber, "rank count");
        if (n.number <= 0 || n.number > 1'000'000) throw DslError(n.line, "bad rank count");
        program.ranks = static_cast<std::int32_t>(n.number);
        ranks_seen = true;
      } else {
        program.stmts.push_back(parse_stmt());
      }
    }
    if (!ranks_seen) throw DslError(1, "program must declare 'ranks N'");
    return program;
  }

 private:
  Token expect(TokKind kind, const std::string& what) {
    const Token t = lexer_.take();
    if (t.kind != kind) throw DslError(t.line, "expected " + what);
    return t;
  }

  Token expect_ident(const std::string& word) {
    const Token t = lexer_.take();
    if (t.kind != TokKind::kIdent || t.text != word) {
      throw DslError(t.line, "expected '" + word + "'");
    }
    return t;
  }

  StmtPtr parse_stmt() {
    const Token t = lexer_.take();
    if (t.kind != TokKind::kIdent) throw DslError(t.line, "expected a statement keyword");
    auto stmt = std::make_unique<Stmt>();
    stmt->line = t.line;
    const std::string& kw = t.text;
    using K = Stmt::Kind;
    static const std::map<std::string, K> path_ops{
        {"create", K::kCreate}, {"open", K::kOpen},     {"close", K::kClose},
        {"stat", K::kStat},     {"unlink", K::kUnlink}, {"mkdir", K::kMkdir},
        {"readdir", K::kReaddir}, {"fsync", K::kFsync},
    };
    if (const auto it = path_ops.find(kw); it != path_ops.end()) {
      stmt->kind = it->second;
      stmt->path = parse_path();
      return stmt;
    }
    if (kw == "read" || kw == "write") {
      stmt->kind = kw == "read" ? K::kRead : K::kWrite;
      stmt->path = parse_path();
      expect_ident("at");
      stmt->offset = parse_expr();
      expect_ident("size");
      stmt->size = parse_expr();
      return stmt;
    }
    if (kw == "compute") {
      stmt->kind = K::kCompute;
      stmt->duration = parse_expr();
      return stmt;
    }
    if (kw == "barrier") {
      stmt->kind = K::kBarrier;
      return stmt;
    }
    if (kw == "loop") {
      stmt->kind = K::kLoop;
      stmt->loop_var = expect(TokKind::kIdent, "loop variable name").text;
      const Token n = expect(TokKind::kNumber, "loop count");
      if (n.number < 0) throw DslError(n.line, "negative loop count");
      stmt->loop_count = n.number;
      expect(TokKind::kLBrace, "'{'");
      while (lexer_.peek().kind != TokKind::kRBrace) {
        if (lexer_.peek().kind == TokKind::kEnd) throw DslError(t.line, "unterminated loop body");
        stmt->body.push_back(parse_stmt());
      }
      lexer_.take();  // '}'
      return stmt;
    }
    throw DslError(t.line, "unknown statement '" + kw + "'");
  }

  /// Parse a quoted path and split out `{expr}` substitutions.
  PathTemplate parse_path() {
    const Token t = expect(TokKind::kString, "a quoted path");
    PathTemplate tpl;
    std::string literal;
    std::size_t i = 0;
    const std::string& s = t.text;
    while (i < s.size()) {
      if (s[i] == '{') {
        const auto close = s.find('}', i);
        if (close == std::string::npos) throw DslError(t.line, "unterminated '{' in path");
        tpl.literals.push_back(literal);
        literal.clear();
        Parser sub{std::string_view{s}.substr(i + 1, close - i - 1)};
        tpl.exprs.push_back(sub.parse_expr_to_end(t.line));
        i = close + 1;
      } else {
        literal += s[i++];
      }
    }
    tpl.literals.push_back(literal);
    return tpl;
  }

  ExprPtr parse_expr_to_end(std::size_t line) {
    auto e = parse_expr();
    if (lexer_.peek().kind != TokKind::kEnd) throw DslError(line, "trailing tokens in {expr}");
    return e;
  }

  ExprPtr parse_expr() {
    auto lhs = parse_term();
    for (;;) {
      const TokKind k = lexer_.peek().kind;
      if (k != TokKind::kPlus && k != TokKind::kMinus) return lhs;
      const Token op = lexer_.take();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = k == TokKind::kPlus ? '+' : '-';
      node->line = op.line;
      node->lhs = std::move(lhs);
      node->rhs = parse_term();
      lhs = std::move(node);
    }
  }

  ExprPtr parse_term() {
    auto lhs = parse_factor();
    for (;;) {
      const TokKind k = lexer_.peek().kind;
      if (k != TokKind::kStar && k != TokKind::kSlash && k != TokKind::kPercent) return lhs;
      const Token op = lexer_.take();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = k == TokKind::kStar ? '*' : k == TokKind::kSlash ? '/' : '%';
      node->line = op.line;
      node->lhs = std::move(lhs);
      node->rhs = parse_factor();
      lhs = std::move(node);
    }
  }

  ExprPtr parse_factor() {
    const Token t = lexer_.take();
    auto node = std::make_unique<Expr>();
    node->line = t.line;
    switch (t.kind) {
      case TokKind::kNumber:
        node->kind = Expr::Kind::kConst;
        node->value = t.number;
        return node;
      case TokKind::kIdent:
        node->kind = Expr::Kind::kVar;
        node->var = t.text;
        return node;
      case TokKind::kLParen: {
        auto inner = parse_expr();
        expect(TokKind::kRParen, "')'");
        return inner;
      }
      default:
        throw DslError(t.line, "expected a number, variable, or '('");
    }
  }

  Lexer lexer_;
};

// ---------------------------------------------------------------- expander

using Env = std::map<std::string, std::int64_t>;

std::int64_t eval(const Expr& expr, const Env& env) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.value;
    case Expr::Kind::kVar: {
      const auto it = env.find(expr.var);
      if (it == env.end()) throw DslError(expr.line, "unknown variable '" + expr.var + "'");
      return it->second;
    }
    case Expr::Kind::kBinary: {
      const std::int64_t a = eval(*expr.lhs, env);
      const std::int64_t b = eval(*expr.rhs, env);
      switch (expr.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/':
          if (b == 0) throw DslError(expr.line, "division by zero");
          return a / b;
        case '%':
          if (b == 0) throw DslError(expr.line, "modulo by zero");
          return a % b;
        default: throw DslError(expr.line, "bad operator");
      }
    }
  }
  throw DslError(expr.line, "bad expression");
}

std::string expand_path(const PathTemplate& tpl, const Env& env) {
  std::string out = tpl.literals.front();
  for (std::size_t i = 0; i < tpl.exprs.size(); ++i) {
    out += std::to_string(eval(*tpl.exprs[i], env));
    out += tpl.literals[i + 1];
  }
  return out;
}

std::uint64_t to_unsigned(std::int64_t v, std::size_t line, const char* what) {
  if (v < 0) throw DslError(line, std::string("negative ") + what);
  return static_cast<std::uint64_t>(v);
}

void expand(const std::vector<StmtPtr>& stmts, Env& env, std::vector<Op>& out) {
  using K = Stmt::Kind;
  for (const auto& stmt : stmts) {
    switch (stmt->kind) {
      case K::kCreate: out.push_back(Op::create(expand_path(stmt->path, env))); break;
      case K::kOpen: out.push_back(Op::open(expand_path(stmt->path, env))); break;
      case K::kClose: out.push_back(Op::close(expand_path(stmt->path, env))); break;
      case K::kStat: out.push_back(Op::stat(expand_path(stmt->path, env))); break;
      case K::kUnlink: out.push_back(Op::unlink(expand_path(stmt->path, env))); break;
      case K::kMkdir: out.push_back(Op::mkdir(expand_path(stmt->path, env))); break;
      case K::kReaddir: out.push_back(Op::readdir(expand_path(stmt->path, env))); break;
      case K::kFsync: out.push_back(Op::fsync(expand_path(stmt->path, env))); break;
      case K::kRead:
        out.push_back(Op::read(expand_path(stmt->path, env),
                               to_unsigned(eval(*stmt->offset, env), stmt->line, "offset"),
                               Bytes{to_unsigned(eval(*stmt->size, env), stmt->line, "size")}));
        break;
      case K::kWrite:
        out.push_back(Op::write(expand_path(stmt->path, env),
                                to_unsigned(eval(*stmt->offset, env), stmt->line, "offset"),
                                Bytes{to_unsigned(eval(*stmt->size, env), stmt->line, "size")}));
        break;
      case K::kCompute:
        out.push_back(Op::compute(SimTime::from_ns(
            static_cast<std::int64_t>(to_unsigned(eval(*stmt->duration, env), stmt->line,
                                                  "compute duration")))));
        break;
      case K::kBarrier: out.push_back(Op::barrier()); break;
      case K::kLoop: {
        if (env.contains(stmt->loop_var)) {
          throw DslError(stmt->line, "loop variable '" + stmt->loop_var + "' shadows another");
        }
        for (std::int64_t i = 0; i < stmt->loop_count; ++i) {
          env[stmt->loop_var] = i;
          expand(stmt->body, env, out);
        }
        env.erase(stmt->loop_var);
        break;
      }
    }
  }
}

}  // namespace

std::unique_ptr<Workload> parse_dsl(std::string_view source) {
  Parser parser{source};
  const Program program = parser.parse();
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(program.ranks));
  for (std::int32_t r = 0; r < program.ranks; ++r) {
    Env env{{"rank", r}, {"ranks", program.ranks}};
    expand(program.stmts, env, per_rank[static_cast<std::size_t>(r)]);
  }
  return std::make_unique<VectorWorkload>(program.name, std::move(per_rank));
}

}  // namespace pio::workload
