// PIOEval workload: a CODES-I/O-language-style workload DSL (§IV.B.4).
//
// "An example is the CODES I/O language [59], which allows researchers to
// model real or artificial I/O workloads using domain-specific language
// constructs." This module provides a small declarative language that
// expands into per-rank op streams:
//
//   name "striped-checkpoint"
//   ranks 8
//   mkdir "/out"
//   barrier
//   create "/out/ckpt.{rank}"
//   loop i 4 {
//     compute 50ms
//     write "/out/ckpt.{rank}" at i * 4MiB size 1MiB
//     barrier
//   }
//   close "/out/ckpt.{rank}"
//
// Expressions may use integer literals with size (B/KiB/MiB/GiB) or time
// (ns/us/ms/s) units, the builtins `rank` and `ranks`, loop variables, and
// + - * / % with the usual precedence. Paths substitute `{expr}`.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "workload/op.hpp"

namespace pio::workload {

/// Parse a DSL program and expand it to a workload. Throws
/// `DslError` with a line-annotated message on any syntax or semantic error.
[[nodiscard]] std::unique_ptr<Workload> parse_dsl(std::string_view source);

class DslError : public std::runtime_error {
 public:
  DslError(std::size_t line, const std::string& message)
      : std::runtime_error("dsl:" + std::to_string(line) + ": " + message), line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

}  // namespace pio::workload
