#include "workload/facility_mix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace pio::workload {

EraProfile era_simulation_2015() {
  // Volumes in ln(bytes): mu=24 ~ 26 GiB median, mu=22 ~ 3.6 GiB, mu=20 ~ 0.5 GiB.
  EraProfile era;
  era.name = "simulation-2015";
  era.classes = {
      // Bulk-synchronous simulation: heavy checkpoint output, light restart
      // input.
      JobClass{"simulation", 0.60, /*read*/ 21.5, 1.0, /*write*/ 24.5, 0.9, /*meta*/ 5.5, 0.8},
      // Post-processing: reads some simulation output, writes reduced data.
      JobClass{"postprocess", 0.25, 23.0, 0.9, 22.0, 0.9, 6.0, 0.8},
      // Small utility/compile-style jobs.
      JobClass{"utility", 0.15, 19.0, 1.2, 19.0, 1.2, 7.0, 1.0},
  };
  return era;
}

EraProfile era_emerging_2019() {
  EraProfile era;
  era.name = "emerging-2019";
  era.classes = {
      // Simulation still present but a smaller share.
      JobClass{"simulation", 0.30, 21.5, 1.0, 24.5, 0.9, 5.5, 0.8},
      // DL training: epoch-over-epoch re-reads of large datasets; output is
      // only small model checkpoints.
      JobClass{"dl-training", 0.30, 25.5, 0.8, 21.0, 0.9, 8.0, 0.9},
      // Analytics: scan-heavy reads of observational archives.
      JobClass{"analytics", 0.25, 24.8, 0.9, 21.5, 1.0, 7.5, 0.9},
      // Workflows: moderate data, metadata-intensive.
      JobClass{"workflow", 0.15, 22.5, 1.0, 22.0, 1.0, 9.5, 0.8},
  };
  return era;
}

namespace {

/// Linear interpolation of the class mix between two eras. Classes are
/// matched by name; a class absent from one era contributes weight 0 there.
std::vector<JobClass> blend(const EraProfile& from, const EraProfile& to, double t) {
  std::vector<JobClass> merged;
  auto find = [](const EraProfile& era, const std::string& name) -> const JobClass* {
    for (const auto& c : era.classes) {
      if (c.name == name) return &c;
    }
    return nullptr;
  };
  auto add = [&](const JobClass& base, const JobClass* a, const JobClass* b) {
    JobClass c = base;
    const double wa = a != nullptr ? a->weight : 0.0;
    const double wb = b != nullptr ? b->weight : 0.0;
    c.weight = (1.0 - t) * wa + t * wb;
    merged.push_back(c);
  };
  for (const auto& c : from.classes) add(c, &c, find(to, c.name));
  for (const auto& c : to.classes) {
    if (find(from, c.name) == nullptr) add(c, nullptr, &c);
  }
  return merged;
}

}  // namespace

std::vector<JobLogEntry> generate_facility_log(const FacilityMixConfig& config) {
  if (config.months == 0 || config.jobs_per_month == 0) {
    throw std::invalid_argument("generate_facility_log: months and jobs_per_month must be > 0");
  }
  std::vector<JobLogEntry> log;
  log.reserve(static_cast<std::size_t>(config.months) * config.jobs_per_month);
  for (std::uint32_t month = 0; month < config.months; ++month) {
    const double t =
        config.months == 1 ? 1.0 : static_cast<double>(month) / (config.months - 1);
    const auto classes = blend(config.from, config.to, t);
    double total_weight = 0.0;
    for (const auto& c : classes) total_weight += c.weight;
    Rng rng{config.seed, 0xFAC1117ULL + month};
    for (std::uint32_t j = 0; j < config.jobs_per_month; ++j) {
      // Weighted class draw.
      double pick = rng.uniform(0.0, total_weight);
      const JobClass* chosen = &classes.back();
      for (const auto& c : classes) {
        if (pick < c.weight) {
          chosen = &c;
          break;
        }
        pick -= c.weight;
      }
      JobLogEntry entry;
      entry.month = month;
      entry.job_class = chosen->name;
      entry.bytes_read = Bytes{static_cast<std::uint64_t>(
          std::min(rng.lognormal(chosen->read_mu, chosen->read_sigma), 1e15))};
      entry.bytes_written = Bytes{static_cast<std::uint64_t>(
          std::min(rng.lognormal(chosen->write_mu, chosen->write_sigma), 1e15))};
      entry.metadata_ops = static_cast<std::uint64_t>(
          std::min(rng.lognormal(chosen->meta_mu, chosen->meta_sigma), 1e12));
      log.push_back(std::move(entry));
    }
  }
  return log;
}

std::vector<MonthlyIoSummary> aggregate_by_month(const std::vector<JobLogEntry>& log) {
  std::uint32_t max_month = 0;
  for (const auto& e : log) max_month = std::max(max_month, e.month);
  std::vector<MonthlyIoSummary> monthly(log.empty() ? 0 : max_month + 1);
  for (std::uint32_t m = 0; m < monthly.size(); ++m) monthly[m].month = m;
  for (const auto& e : log) {
    auto& s = monthly[e.month];
    s.bytes_read += e.bytes_read;
    s.bytes_written += e.bytes_written;
    s.metadata_ops += e.metadata_ops;
    ++s.jobs;
  }
  return monthly;
}

std::int64_t read_write_crossover_month(const std::vector<MonthlyIoSummary>& monthly) {
  for (const auto& s : monthly) {
    if (s.read_fraction() >= 0.5) return s.month;
  }
  return -1;
}

}  // namespace pio::workload
