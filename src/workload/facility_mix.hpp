// PIOEval workload: facility-scale job-mix generator (experiment C1).
//
// Patel et al. [53] analysed a year of production I/O at NERSC and found
// that "HPC storage systems may no longer be dominated by write I/O —
// challenging the long- and widely-held belief that HPC workloads are
// write-intensive." We cannot use those proprietary logs, so this module
// generates a synthetic multi-month facility job log with a controlled
// ground truth: a job-class mix that shifts, month over month, from a
// simulation-dominated (write-heavy) era toward an analytics/learning era
// (read-heavy). The system-level analysis (src/analysis) must detect the
// read/write crossover from the generated log alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pio::workload {

/// A class of jobs with log-normal volume distributions.
struct JobClass {
  std::string name;
  double weight = 1.0;          ///< relative share of submitted jobs
  double read_mu = 20.0;        ///< lognormal mu of bytes read (ln-bytes)
  double read_sigma = 1.0;
  double write_mu = 20.0;
  double write_sigma = 1.0;
  double meta_mu = 6.0;         ///< lognormal mu of metadata op count
  double meta_sigma = 1.0;
};

/// A facility era: a weighted mix of job classes.
struct EraProfile {
  std::string name;
  std::vector<JobClass> classes;
};

/// Simulation-dominated mix (traditional checkpoint/restart facilities).
[[nodiscard]] EraProfile era_simulation_2015();
/// Emerging mix: deep learning, analytics, and workflows take large shares.
[[nodiscard]] EraProfile era_emerging_2019();

/// One job in the synthetic facility log.
struct JobLogEntry {
  std::uint32_t month = 0;
  std::string job_class;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  std::uint64_t metadata_ops = 0;
};

struct FacilityMixConfig {
  std::uint32_t months = 48;
  std::uint32_t jobs_per_month = 2000;
  std::uint64_t seed = 7;
  /// Mix evolves linearly from `from` (month 0) to `to` (last month).
  EraProfile from = era_simulation_2015();
  EraProfile to = era_emerging_2019();
};

/// Generate the full synthetic job log.
[[nodiscard]] std::vector<JobLogEntry> generate_facility_log(const FacilityMixConfig& config);

/// Per-month aggregate.
struct MonthlyIoSummary {
  std::uint32_t month = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  std::uint64_t metadata_ops = 0;
  std::uint64_t jobs = 0;

  [[nodiscard]] double read_fraction() const {
    const double total = bytes_read.as_double() + bytes_written.as_double();
    return total == 0.0 ? 0.0 : bytes_read.as_double() / total;
  }
};

[[nodiscard]] std::vector<MonthlyIoSummary> aggregate_by_month(
    const std::vector<JobLogEntry>& log);

/// First month whose read fraction is >= 0.5, or -1 if reads never
/// overtake writes (the Patel-style crossover detector).
[[nodiscard]] std::int64_t read_write_crossover_month(
    const std::vector<MonthlyIoSummary>& monthly);

}  // namespace pio::workload
