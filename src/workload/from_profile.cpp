#include "workload/from_profile.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace pio::workload {

namespace {

/// Draw an access size from a log2 histogram: pick a bucket proportionally
/// to its count, then uniform within [2^k, 2^(k+1)).
std::uint64_t sample_size(const Log2Histogram& hist, Rng& rng) {
  const std::uint64_t total = hist.total();
  if (total == 0) return 0;
  std::uint64_t pick = rng.next_below(total);
  for (std::size_t k = 0; k < Log2Histogram::kBuckets; ++k) {
    const std::uint64_t count = hist.bucket_count(k);
    if (pick < count) {
      const std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
      const std::uint64_t hi = (k >= 63) ? UINT64_MAX : (1ULL << (k + 1));
      return lo + rng.next_below(std::max<std::uint64_t>(1, hi - lo));
    }
    pick -= count;
  }
  return hist.max();
}

}  // namespace

std::unique_ptr<Workload> workload_from_profile(const trace::Profile& profile,
                                                const FromProfileConfig& config) {
  // Group records by rank; ranks are renumbered densely.
  std::map<std::int32_t, std::vector<const trace::FileRecord*>> by_rank;
  for (const auto& record : profile.records()) by_rank[record.rank].push_back(&record);

  std::vector<std::vector<Op>> per_rank;
  per_rank.reserve(by_rank.size());
  std::uint64_t stream_id = 0;
  for (const auto& [rank, records] : by_rank) {
    std::vector<Op> ops;
    Rng rng{config.seed, 0xC4A7ULL + stream_id++};
    for (const auto* record : records) {
      if (record->path.empty()) continue;
      // Recreate the file if it was written; open if it was only read.
      const bool writes_first = record->writes > 0;
      ops.push_back(writes_first ? Op::create(record->path) : Op::open(record->path));
      const std::uint64_t extent =
          std::max<std::uint64_t>(record->max_offset, 1);

      auto emit_phase = [&](bool is_write) {
        const std::uint64_t count = is_write ? record->writes : record->reads;
        const auto& hist = is_write ? record->write_sizes : record->read_sizes;
        const double seq_fraction =
            is_write ? record->write_seq_fraction() : record->read_seq_fraction();
        std::uint64_t n = count;
        if (config.max_ops_per_record != 0) n = std::min(n, config.max_ops_per_record);
        std::uint64_t cursor = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t size = std::max<std::uint64_t>(1, sample_size(hist, rng));
          std::uint64_t offset;
          if (rng.chance(seq_fraction) || extent <= size) {
            offset = cursor;  // continue sequentially
          } else {
            offset = rng.next_below(extent - size + 1);  // random re-position
          }
          ops.push_back(is_write ? Op::write(record->path, offset, Bytes{size})
                                 : Op::read(record->path, offset, Bytes{size}));
          cursor = offset + size;
        }
      };

      // Write phase before read phase: the dominant ordering in HPC jobs
      // (outputs are produced, then verified/consumed).
      emit_phase(/*is_write=*/true);
      emit_phase(/*is_write=*/false);
      ops.push_back(Op::close(record->path));
      // Metadata ops beyond open/close are replayed as stats (the profile
      // does not retain their exact kinds).
      const std::uint64_t open_close =
          std::min<std::uint64_t>(record->metadata_ops, record->opens + record->closes);
      for (std::uint64_t m = open_close; m < record->metadata_ops; ++m) {
        ops.push_back(Op::stat(record->path));
      }
    }
    per_rank.push_back(std::move(ops));
  }
  if (per_rank.empty()) per_rank.emplace_back();
  return std::make_unique<VectorWorkload>("from-profile", std::move(per_rank));
}

}  // namespace pio::workload
