// PIOEval workload: characterization-based workload generation (IOWA-style).
//
// §IV.B.4: "I/O Characterization Workloads: I/O profiles provide high-level
// statistics and capture an accurate picture of application I/O behavior,
// including properties such as access patterns within files, rather than
// complete traces." Snyder et al. [20] synthesize representative workloads
// from Darshan logs; this module does the same from our Profile: for each
// (rank, file) record it regenerates the recorded number of reads/writes,
// sampling access sizes from the recorded log2 histograms and reproducing
// the recorded sequential-access fraction. The result is statistically
// representative but not operation-exact — precisely the accuracy/cost
// trade-off experiment C7 measures.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/profiler.hpp"
#include "workload/op.hpp"

namespace pio::workload {

struct FromProfileConfig {
  std::uint64_t seed = 11;
  /// Cap on regenerated ops per (rank, file) record — guards against
  /// pathological profiles (0 = no cap).
  std::uint64_t max_ops_per_record = 0;
};

/// Synthesize a workload from a characterization profile.
[[nodiscard]] std::unique_ptr<Workload> workload_from_profile(const trace::Profile& profile,
                                                              const FromProfileConfig& config);

}  // namespace pio::workload
