#include "workload/kernels.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace pio::workload {

namespace {

std::string rank_file(const std::string& directory, const std::string& stem, std::int32_t rank) {
  return directory + "/" + stem + "." + std::to_string(rank);
}

}  // namespace

std::unique_ptr<Workload> ior_like(const IorConfig& config) {
  if (config.ranks <= 0) throw std::invalid_argument("ior_like: ranks must be positive");
  if (config.transfer_size == Bytes::zero() || config.block_size == Bytes::zero()) {
    throw std::invalid_argument("ior_like: sizes must be positive");
  }
  if (config.block_size % config.transfer_size != Bytes::zero()) {
    throw std::invalid_argument("ior_like: block_size must be a multiple of transfer_size");
  }
  const std::uint64_t transfers = config.block_size / config.transfer_size;
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.ranks));
  const std::string shared = config.directory + "/testfile";
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    if (r == 0) ops.push_back(Op::mkdir(config.directory));
    ops.push_back(Op::barrier());  // directory exists before anyone opens
    const std::string path =
        config.file_per_process ? rank_file(config.directory, "testfile", r) : shared;
    // In shared mode each rank owns a contiguous block at rank * block_size
    // (IOR's segmented layout).
    const std::uint64_t base =
        config.file_per_process ? 0 : static_cast<std::uint64_t>(r) * config.block_size.count();
    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      if (iter > 0 && config.compute_between_iterations > SimTime::zero()) {
        ops.push_back(Op::compute(config.compute_between_iterations));
      }
      if (config.write_phase) {
        // Creator first, then a barrier, then late openers — so a shared
        // file exists before any other rank opens it.
        if (config.file_per_process || r == 0) {
          ops.push_back(Op::create(path));
          ops.push_back(Op::barrier());
        } else {
          ops.push_back(Op::barrier());
          ops.push_back(Op::open(path));
        }
        for (std::uint64_t t = 0; t < transfers; ++t) {
          ops.push_back(Op::write(path, base + t * config.transfer_size.count(),
                                  config.transfer_size));
        }
        ops.push_back(Op::fsync(path));
        ops.push_back(Op::close(path));
        ops.push_back(Op::barrier());
      }
      if (config.read_phase) {
        ops.push_back(Op::open(path));
        for (std::uint64_t t = 0; t < transfers; ++t) {
          ops.push_back(Op::read(path, base + t * config.transfer_size.count(),
                                 config.transfer_size));
        }
        ops.push_back(Op::close(path));
        ops.push_back(Op::barrier());
      }
    }
  }
  return std::make_unique<VectorWorkload>("ior", std::move(per_rank));
}

std::unique_ptr<Workload> mdtest_like(const MdtestConfig& config) {
  if (config.ranks <= 0) throw std::invalid_argument("mdtest_like: ranks must be positive");
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.ranks));
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    if (r == 0) ops.push_back(Op::mkdir(config.directory));
    ops.push_back(Op::barrier());
    const std::string dir = config.directory + "/rank" + std::to_string(r);
    ops.push_back(Op::mkdir(dir));
    // Phase 1: create storm.
    for (std::uint64_t f = 0; f < config.files_per_rank; ++f) {
      const std::string path = dir + "/file" + std::to_string(f);
      ops.push_back(Op::create(path));
      if (config.write_per_file > Bytes::zero()) {
        ops.push_back(Op::write(path, 0, config.write_per_file));
      }
      ops.push_back(Op::close(path));
    }
    ops.push_back(Op::barrier());
    // Phase 2: stat storm.
    if (config.do_stat) {
      for (std::uint64_t f = 0; f < config.files_per_rank; ++f) {
        ops.push_back(Op::stat(dir + "/file" + std::to_string(f)));
      }
      ops.push_back(Op::barrier());
    }
    // Phase 3: unlink storm.
    if (config.do_unlink) {
      for (std::uint64_t f = 0; f < config.files_per_rank; ++f) {
        ops.push_back(Op::unlink(dir + "/file" + std::to_string(f)));
      }
      ops.push_back(Op::barrier());
    }
  }
  return std::make_unique<VectorWorkload>("mdtest", std::move(per_rank));
}

std::unique_ptr<Workload> hacc_io_like(const HaccIoConfig& config) {
  if (config.ranks <= 0) throw std::invalid_argument("hacc_io_like: ranks must be positive");
  const Bytes per_rank_bytes{config.particles_per_rank * kHaccParticleBytes};
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.ranks));
  const std::string shared = config.directory + "/particles";
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    if (r == 0) ops.push_back(Op::mkdir(config.directory));
    ops.push_back(Op::barrier());
    const std::string path =
        config.file_per_process ? rank_file(config.directory, "particles", r) : shared;
    const std::uint64_t base =
        config.file_per_process ? 0 : static_cast<std::uint64_t>(r) * per_rank_bytes.count();
    if (config.file_per_process || r == 0) {
      ops.push_back(Op::create(path));
      ops.push_back(Op::barrier());
    } else {
      ops.push_back(Op::barrier());
      ops.push_back(Op::open(path));
    }
    // HACC-IO writes the whole particle block in one shot per rank.
    ops.push_back(Op::write(path, base, per_rank_bytes));
    ops.push_back(Op::fsync(path));
    ops.push_back(Op::close(path));
    ops.push_back(Op::barrier());
    if (config.read_back) {
      ops.push_back(Op::open(path));
      ops.push_back(Op::read(path, base, per_rank_bytes));
      ops.push_back(Op::close(path));
      ops.push_back(Op::barrier());
    }
  }
  return std::make_unique<VectorWorkload>("hacc-io", std::move(per_rank));
}

std::unique_ptr<Workload> btio_like(const BtioConfig& config) {
  const auto side = static_cast<std::int32_t>(std::lround(std::sqrt(config.ranks)));
  if (side * side != config.ranks || config.ranks <= 0) {
    throw std::invalid_argument("btio_like: ranks must be a perfect square");
  }
  if (config.grid_points % static_cast<std::uint64_t>(side) != 0) {
    throw std::invalid_argument("btio_like: grid_points must divide by sqrt(ranks)");
  }
  const std::uint64_t n = config.grid_points;
  const std::uint64_t cells_per_side = n / static_cast<std::uint64_t>(side);
  const std::uint64_t cell = config.cell_bytes.count();
  const std::uint64_t plane = n * n * cell;  // one z-plane of the cube
  const std::uint64_t row = n * cell;
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.ranks));
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    if (r == 0) {
      ops.push_back(Op::mkdir("/btio"));
      ops.push_back(Op::create(config.file));
    }
    ops.push_back(Op::barrier());
    if (r != 0) ops.push_back(Op::open(config.file));
    // Rank (rx, ry) owns rows [ry*cps, (ry+1)*cps) x cols [rx*cps, ...).
    const std::uint64_t rx = static_cast<std::uint64_t>(r % side);
    const std::uint64_t ry = static_cast<std::uint64_t>(r / side);
    for (std::int32_t step = 0; step < config.time_steps; ++step) {
      // Each step appends a full cube snapshot; within it, the rank writes
      // its sub-rows: one small strided write per (z, y) pair.
      const std::uint64_t snapshot_base = static_cast<std::uint64_t>(step) * n * plane;
      for (std::uint64_t z = 0; z < n; ++z) {
        for (std::uint64_t y = ry * cells_per_side; y < (ry + 1) * cells_per_side; ++y) {
          const std::uint64_t offset =
              snapshot_base + z * plane + y * row + rx * cells_per_side * cell;
          ops.push_back(Op::write(config.file, offset, Bytes{cells_per_side * cell}));
        }
      }
      ops.push_back(Op::barrier());
    }
    if (r == 0) ops.push_back(Op::fsync(config.file));
    ops.push_back(Op::close(config.file));
  }
  return std::make_unique<VectorWorkload>("btio", std::move(per_rank));
}

std::unique_ptr<Workload> checkpoint_restart(const CheckpointConfig& config) {
  if (config.ranks <= 0) throw std::invalid_argument("checkpoint_restart: ranks must be positive");
  if (config.checkpoint_per_rank % config.transfer_size != Bytes::zero()) {
    throw std::invalid_argument(
        "checkpoint_restart: checkpoint size must be a multiple of transfer size");
  }
  const std::uint64_t transfers = config.checkpoint_per_rank / config.transfer_size;
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.ranks));
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto& ops = per_rank[static_cast<std::size_t>(r)];
    if (r == 0) ops.push_back(Op::mkdir(config.directory));
    ops.push_back(Op::barrier());
    for (std::int32_t c = 0; c < config.checkpoints; ++c) {
      ops.push_back(Op::compute(config.compute_phase));
      ops.push_back(Op::barrier());  // bulk-synchronous: everyone dumps at once
      const std::string path =
          config.file_per_process
              ? config.directory + "/ckpt" + std::to_string(c) + "." + std::to_string(r)
              : config.directory + "/ckpt" + std::to_string(c);
      const std::uint64_t base =
          config.file_per_process
              ? 0
              : static_cast<std::uint64_t>(r) * config.checkpoint_per_rank.count();
      if (config.file_per_process || r == 0) {
        ops.push_back(Op::create(path));
        ops.push_back(Op::barrier());
      } else {
        ops.push_back(Op::barrier());
        ops.push_back(Op::open(path));
      }
      for (std::uint64_t t = 0; t < transfers; ++t) {
        ops.push_back(Op::write(path, base + t * config.transfer_size.count(),
                                config.transfer_size));
      }
      ops.push_back(Op::fsync(path));
      ops.push_back(Op::close(path));
      ops.push_back(Op::barrier());
    }
  }
  return std::make_unique<VectorWorkload>("checkpoint", std::move(per_rank));
}

}  // namespace pio::workload
