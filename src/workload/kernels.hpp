// PIOEval workload: classic HPC benchmark kernels (§IV.A.1, §VI).
//
// The paper's finding: "the majority of the examined research still relies
// on synthetic benchmarks such as IOR, NPB, and HACC-IO or write-intensive,
// bursty workloads." These are those benchmarks, as workload generators:
//
//  - ior_like:    contiguous block/transfer sweeps, shared-file or
//                 file-per-process, optional read-back verification phase
//  - mdtest_like: create/stat/unlink storms over many small files
//  - hacc_io_like: particle checkpoint (HACC-IO's fixed 38 B/particle
//                 record, bulk contiguous writes)
//  - btio_like:   NPB BT-IO's nested strided pattern (each rank owns an
//                 interleaved sub-cube, producing many small strided ops)
//  - checkpoint_restart: periodic write bursts separated by compute
#pragma once

#include <memory>

#include "common/types.hpp"
#include "workload/op.hpp"

namespace pio::workload {

struct IorConfig {
  std::int32_t ranks = 8;
  Bytes block_size = Bytes::from_mib(16);     ///< contiguous region per rank
  Bytes transfer_size = Bytes::from_mib(1);   ///< size of each read/write
  bool file_per_process = false;              ///< vs one shared file
  bool write_phase = true;
  bool read_phase = false;                    ///< read back after writing
  std::int32_t iterations = 1;
  SimTime compute_between_iterations = SimTime::zero();
  std::string directory = "/ior";
};

/// IOR-like synthetic benchmark [76].
[[nodiscard]] std::unique_ptr<Workload> ior_like(const IorConfig& config);

struct MdtestConfig {
  std::int32_t ranks = 8;
  std::uint64_t files_per_rank = 64;
  bool do_stat = true;
  bool do_unlink = true;
  /// Bytes written into each file right after creation (0 = empty files,
  /// the mdtest default).
  Bytes write_per_file = Bytes::zero();
  std::string directory = "/mdtest";
};

/// mdtest-like metadata benchmark [8]: per-rank directories filled with
/// small files, then stat and unlink storms.
[[nodiscard]] std::unique_ptr<Workload> mdtest_like(const MdtestConfig& config);

struct HaccIoConfig {
  std::int32_t ranks = 8;
  std::uint64_t particles_per_rank = 1'000'000;
  bool file_per_process = false;
  bool read_back = false;
  std::string directory = "/hacc";
};

/// HACC-IO-like particle checkpoint [78]: 38 bytes per particle (9 floats
/// + 2 uint8, the HACC record), written as one contiguous block per rank.
[[nodiscard]] std::unique_ptr<Workload> hacc_io_like(const HaccIoConfig& config);
/// The HACC particle record size (bytes).
inline constexpr std::uint64_t kHaccParticleBytes = 38;

struct BtioConfig {
  std::int32_t ranks = 4;          ///< must be a perfect square (BT constraint)
  std::uint64_t grid_points = 64;  ///< cells per dimension of the global cube
  Bytes cell_bytes = Bytes{40};    ///< 5 doubles per cell, BT's solution vector
  std::int32_t time_steps = 4;     ///< BT writes the solution every few steps
  std::string file = "/btio/solution";
};

/// NPB BT-IO-like nested strided writes [77]: the global cube is stored in
/// row-major order; each rank owns an interleaved sub-block, so each rank's
/// write decomposes into many small strided pieces. This is the canonical
/// collective-buffering motivation workload (experiment C8).
[[nodiscard]] std::unique_ptr<Workload> btio_like(const BtioConfig& config);

struct CheckpointConfig {
  std::int32_t ranks = 8;
  Bytes checkpoint_per_rank = Bytes::from_mib(64);
  Bytes transfer_size = Bytes::from_mib(4);
  std::int32_t checkpoints = 4;
  SimTime compute_phase = SimTime::from_sec(5.0);
  bool file_per_process = true;
  std::string directory = "/ckpt";
};

/// Bursty checkpoint/restart cycle: long compute, then every rank dumps its
/// state at once — the traditional write-intensive HPC pattern the paper
/// contrasts emerging workloads against.
[[nodiscard]] std::unique_ptr<Workload> checkpoint_restart(const CheckpointConfig& config);

}  // namespace pio::workload
