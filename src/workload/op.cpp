#include "workload/op.hpp"

namespace pio::workload {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kCreate: return "create";
    case OpKind::kOpen: return "open";
    case OpKind::kClose: return "close";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kStat: return "stat";
    case OpKind::kMkdir: return "mkdir";
    case OpKind::kUnlink: return "unlink";
    case OpKind::kReaddir: return "readdir";
    case OpKind::kFsync: return "fsync";
    case OpKind::kCompute: return "compute";
    case OpKind::kBarrier: return "barrier";
  }
  return "?";
}

namespace {

class VectorStream final : public RankStream {
 public:
  explicit VectorStream(const std::vector<Op>& ops) : ops_(ops) {}

  std::optional<Op> next() override {
    if (index_ >= ops_.size()) return std::nullopt;
    return ops_[index_++];
  }

 private:
  const std::vector<Op>& ops_;
  std::size_t index_ = 0;
};

}  // namespace

std::unique_ptr<RankStream> VectorWorkload::stream(std::int32_t rank) const {
  return std::make_unique<VectorStream>(per_rank_.at(static_cast<std::size_t>(rank)));
}

std::vector<std::vector<Op>> materialize(const Workload& workload) {
  std::vector<std::vector<Op>> out(static_cast<std::size_t>(workload.ranks()));
  for (std::int32_t r = 0; r < workload.ranks(); ++r) {
    auto stream = workload.stream(r);
    while (auto op = stream->next()) out[static_cast<std::size_t>(r)].push_back(std::move(*op));
  }
  return out;
}

WorkloadFootprint footprint(const Workload& workload) {
  WorkloadFootprint fp;
  for (std::int32_t r = 0; r < workload.ranks(); ++r) {
    auto stream = workload.stream(r);
    while (auto op = stream->next()) {
      ++fp.ops;
      switch (op->kind) {
        case OpKind::kRead: fp.bytes_read += op->size; break;
        case OpKind::kWrite: fp.bytes_written += op->size; break;
        case OpKind::kCompute:
        case OpKind::kBarrier:
          break;
        default: ++fp.metadata_ops; break;
      }
    }
  }
  return fp;
}

}  // namespace pio::workload
