// PIOEval workload: the operation/stream model (§IV.A.1, §IV.B.4).
//
// Every workload source — benchmark kernels, the synthetic I/O DSL, trace
// replay, characterization sampling — produces the same thing: one lazy
// stream of Ops per rank. Lazy streams are what make execution-driven
// simulation (§IV.C.3) possible: the driver pulls the next op only when the
// previous one completes, interleaving "workload produce" and "workload
// consume" exactly as the paper describes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pio::workload {

enum class OpKind : std::uint8_t {
  kCreate,   ///< create + open for writing
  kOpen,     ///< open existing
  kClose,
  kRead,
  kWrite,
  kStat,
  kMkdir,
  kUnlink,
  kReaddir,
  kFsync,
  kCompute,  ///< think time between I/O phases
  kBarrier,  ///< synchronize all ranks
};

[[nodiscard]] const char* to_string(OpKind kind);

/// One workload operation. Interpretation of fields depends on `kind`:
/// data ops use path/offset/size; kCompute uses `think_time`; kBarrier uses
/// nothing.
struct Op {
  OpKind kind = OpKind::kCompute;
  std::string path;
  std::uint64_t offset = 0;
  Bytes size = Bytes::zero();
  SimTime think_time = SimTime::zero();

  static Op create(std::string path) { return Op{OpKind::kCreate, std::move(path), 0, {}, {}}; }
  static Op open(std::string path) { return Op{OpKind::kOpen, std::move(path), 0, {}, {}}; }
  static Op close(std::string path) { return Op{OpKind::kClose, std::move(path), 0, {}, {}}; }
  static Op read(std::string path, std::uint64_t offset, Bytes size) {
    return Op{OpKind::kRead, std::move(path), offset, size, {}};
  }
  static Op write(std::string path, std::uint64_t offset, Bytes size) {
    return Op{OpKind::kWrite, std::move(path), offset, size, {}};
  }
  static Op stat(std::string path) { return Op{OpKind::kStat, std::move(path), 0, {}, {}}; }
  static Op mkdir(std::string path) { return Op{OpKind::kMkdir, std::move(path), 0, {}, {}}; }
  static Op unlink(std::string path) { return Op{OpKind::kUnlink, std::move(path), 0, {}, {}}; }
  static Op readdir(std::string path) { return Op{OpKind::kReaddir, std::move(path), 0, {}, {}}; }
  static Op fsync(std::string path) { return Op{OpKind::kFsync, std::move(path), 0, {}, {}}; }
  static Op compute(SimTime t) { return Op{OpKind::kCompute, {}, 0, {}, t}; }
  static Op barrier() { return Op{OpKind::kBarrier, {}, 0, {}, {}}; }
};

/// Lazy per-rank op stream.
class RankStream {
 public:
  virtual ~RankStream() = default;
  /// Next op, or nullopt when the rank is done.
  [[nodiscard]] virtual std::optional<Op> next() = 0;
};

/// A workload = a name + a number of ranks + a stream factory. Workloads
/// must be re-streamable: `stream(r)` can be called repeatedly and always
/// yields the same sequence (determinism requirement).
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::int32_t ranks() const = 0;
  [[nodiscard]] virtual std::unique_ptr<RankStream> stream(std::int32_t rank) const = 0;
};

/// Fully materialized workload (used by trace replay and the DSL expander).
class VectorWorkload final : public Workload {
 public:
  VectorWorkload(std::string name, std::vector<std::vector<Op>> per_rank)
      : name_(std::move(name)), per_rank_(std::move(per_rank)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::int32_t ranks() const override {
    return static_cast<std::int32_t>(per_rank_.size());
  }
  [[nodiscard]] std::unique_ptr<RankStream> stream(std::int32_t rank) const override;

  [[nodiscard]] const std::vector<std::vector<Op>>& ops() const { return per_rank_; }

 private:
  std::string name_;
  std::vector<std::vector<Op>> per_rank_;
};

/// Drain all streams into vectors (for inspection and tests).
[[nodiscard]] std::vector<std::vector<Op>> materialize(const Workload& workload);

/// Total bytes a workload would read/write, and op count (dry run).
struct WorkloadFootprint {
  std::uint64_t ops = 0;
  Bytes bytes_read = Bytes::zero();
  Bytes bytes_written = Bytes::zero();
  std::uint64_t metadata_ops = 0;
};
[[nodiscard]] WorkloadFootprint footprint(const Workload& workload);

}  // namespace pio::workload
