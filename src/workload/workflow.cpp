#include "workload/workflow.hpp"

#include <stdexcept>
#include <vector>

namespace pio::workload {

namespace {

std::string task_file(const WorkflowConfig& config, std::int32_t stage, std::int32_t task,
                      std::int32_t file) {
  return config.directory + "/stage" + std::to_string(stage) + "/task" + std::to_string(task) +
         ".out" + std::to_string(file);
}

}  // namespace

std::unique_ptr<Workload> workflow_dag(const WorkflowConfig& config) {
  if (config.workers <= 0 || config.stages <= 0 || config.tasks_per_stage <= 0 ||
      config.files_per_task <= 0) {
    throw std::invalid_argument("workflow_dag: counts must be positive");
  }
  if (config.file_size % config.transaction_size != Bytes::zero()) {
    throw std::invalid_argument("workflow_dag: file_size must be a multiple of transaction_size");
  }
  const std::uint64_t transactions = config.file_size / config.transaction_size;
  std::vector<std::vector<Op>> per_rank(static_cast<std::size_t>(config.workers));

  for (std::int32_t w = 0; w < config.workers; ++w) {
    auto& ops = per_rank[static_cast<std::size_t>(w)];
    if (w == 0) ops.push_back(Op::mkdir(config.directory));
    ops.push_back(Op::barrier());
    for (std::int32_t stage = 0; stage < config.stages; ++stage) {
      if (w == 0) {
        ops.push_back(Op::mkdir(config.directory + "/stage" + std::to_string(stage)));
      }
      ops.push_back(Op::barrier());
      // Tasks of this stage are distributed round-robin over workers.
      for (std::int32_t task = w; task < config.tasks_per_stage; task += config.workers) {
        // Input side: read one predecessor task's outputs (stage > 0). The
        // DAG edge is task -> same-index task of the previous stage.
        if (stage > 0) {
          for (std::int32_t f = 0; f < config.files_per_task; ++f) {
            const std::string input = task_file(config, stage - 1, task, f);
            // Readiness polling: the engine stats the file repeatedly.
            for (std::int32_t p = 0; p < config.stat_polls_per_input; ++p) {
              ops.push_back(Op::stat(input));
            }
            ops.push_back(Op::open(input));
            for (std::uint64_t t = 0; t < transactions; ++t) {
              ops.push_back(Op::read(input, t * config.transaction_size.count(),
                                     config.transaction_size));
            }
            ops.push_back(Op::close(input));
          }
        }
        ops.push_back(Op::compute(config.compute_per_task));
        // Output side: many small files, written in small transactions.
        for (std::int32_t f = 0; f < config.files_per_task; ++f) {
          const std::string output = task_file(config, stage, task, f);
          ops.push_back(Op::create(output));
          for (std::uint64_t t = 0; t < transactions; ++t) {
            ops.push_back(Op::write(output, t * config.transaction_size.count(),
                                    config.transaction_size));
          }
          ops.push_back(Op::close(output));
        }
        // Completion marker: engines list the stage directory to track
        // progress.
        ops.push_back(Op::readdir(config.directory + "/stage" + std::to_string(stage)));
      }
      ops.push_back(Op::barrier());  // stage boundary
    }
  }
  return std::make_unique<VectorWorkload>("workflow", std::move(per_rank));
}

}  // namespace pio::workload
