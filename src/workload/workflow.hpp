// PIOEval workload: data-intensive scientific workflow (§V.C).
//
// "In sharp contrast to the traditional highly coherent, sequential,
// large-transaction reads and writes, data-intensive workflows have been
// shown to often utilize non-sequential, metadata-intensive, and small-
// transaction reads and writes" [73].
//
// The generator models a stage-parallel workflow DAG executed by a pool of
// workers: each task polls its input files' existence (stat storms — the
// way workflow engines detect readiness), reads its inputs in small
// transactions, computes, and writes many small output files. Stages are
// separated by barriers (engine-level synchronization points).
#pragma once

#include <memory>

#include "common/types.hpp"
#include "workload/op.hpp"

namespace pio::workload {

struct WorkflowConfig {
  std::int32_t workers = 8;              ///< ranks executing tasks
  std::int32_t stages = 4;
  std::int32_t tasks_per_stage = 32;
  std::int32_t files_per_task = 4;       ///< outputs written by each task
  Bytes file_size = Bytes::from_kib(256);
  Bytes transaction_size = Bytes::from_kib(16);  ///< small-transaction unit
  std::int32_t stat_polls_per_input = 3; ///< readiness polling per dependency
  SimTime compute_per_task = SimTime::from_ms(20.0);
  std::string directory = "/workflow";
};

/// Stage-parallel workflow DAG workload.
[[nodiscard]] std::unique_ptr<Workload> workflow_dag(const WorkflowConfig& config);

}  // namespace pio::workload
