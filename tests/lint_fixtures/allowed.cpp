// piolint fixture: every violation below carries an allow directive, so the
// file must lint clean.
#include <cstdlib>
#include <unordered_map>

// piolint: allow-file(D2)

int sanctioned_rand() {
  return std::rand();  // piolint: allow(D1)
}

int sanctioned_walk() {
  std::unordered_map<int, int> table;
  int sum = 0;
  for (const auto& [k, v] : table) sum += v;  // suppressed by allow-file(D2)
  return sum;
}

// piolint: allow(D1)
int sanctioned_rand_previous_line() { return std::rand(); }
