// piolint fixture: fully compliant header — zero findings expected. Mentions
// of banned identifiers inside strings and comments (std::rand, 1e9) must
// not trip the lexer.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "common/types.hpp"

namespace fixture {

// A comment naming std::rand() and steady_clock::now() is not a violation.
inline const char* kBannedList = "std::rand, random_device, 1e9";

[[nodiscard]] pio::Result<int> count_entries(const std::map<std::string, int>& m);

[[nodiscard]] inline pio::SimTime double_time(pio::SimTime t) { return t + t; }

}  // namespace fixture
