// piolint fixture: exactly one D1 violation (std::rand in library-style code).
#include <cstdlib>

int noisy_seed() {
  return std::rand();  // the one violation in this file
}
