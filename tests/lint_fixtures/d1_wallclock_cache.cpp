// piolint fixture: exactly one D1 violation — a cache eviction policy that
// ages pages against the wall clock. Cache recency must be logical (list
// order) or simulated time; a steady_clock-aged LRU makes eviction order
// depend on host scheduling, so same-seed cached campaigns stop replaying
// byte-identically (DESIGN.md §10).
#include <chrono>
#include <cstdint>

std::int64_t cache_page_age_ns(std::int64_t inserted_ns) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();  // the one violation
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() - inserted_ns;
}
