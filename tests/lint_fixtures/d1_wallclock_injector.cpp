// piolint fixture: exactly one D1 violation — a fault injector seeded from
// the wall clock. Fault schedules must be derived from the campaign seed
// (pio::fault::kFaultRngStream); wall-clock seeding makes every run's
// weather unique and unreproducible.
#include <chrono>
#include <cstdint>

std::uint64_t wallclock_injector_seed() {
  const auto now = std::chrono::steady_clock::now();  // the one violation
  return static_cast<std::uint64_t>(now.time_since_epoch().count());
}
