// piolint fixture: exactly one D1 violation — a resync planner that jitters
// its rebuild pacing from the wall clock. Rebuild pacing must draw from the
// engine substream (pio::pfs::kRebuildRngStream); a wall-clock source makes
// every recovery schedule unique, so same-seed durability campaigns stop
// replaying byte-identically.
#include <cstdint>
#include <ctime>

double rebuild_pace_jitter_sec(double base_sec) {
  const std::uint64_t noise = static_cast<std::uint64_t>(std::time(nullptr));  // the one violation
  return base_sec * (1.0 + static_cast<double>(noise % 100) / 1000.0);
}
