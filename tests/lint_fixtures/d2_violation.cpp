// piolint fixture: exactly one D2 violation (range-for over an unordered map).
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> keys_in_hash_order() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  std::vector<std::string> out;
  for (const auto& [key, value] : counts) {  // the one violation in this file
    out.push_back(key);
  }
  return out;
}
