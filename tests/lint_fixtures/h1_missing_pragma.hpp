// piolint fixture: exactly one H1 violation — this header has no
// include guard of any kind.

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
