// piolint fixture: exactly one H1 violation (using-namespace at header scope).
#pragma once

#include <string>

using namespace std;  // the one violation in this file

namespace fixture {
inline string shout(const string& s) { return s + "!"; }
}  // namespace fixture
