// Fixture: raw threading primitives outside the sanctioned pool internals.
// Three violations (std::thread spawn, std::jthread, std::async) and two
// non-violations: hardware_concurrency is a query, and the annotated join
// is suppressed.
#include <future>
#include <thread>

namespace fixture {

inline unsigned probe() {
  return std::thread::hardware_concurrency();  // fine: a query, not a spawn
}

inline void spawn_adhoc() {
  std::thread worker([] {});  // line 15: P1
  worker.join();
  std::jthread other([] {});  // line 17: P1
  auto f = std::async([] { return 1; });  // line 18: P1
  f.get();
  // piolint: allow(P1)
  std::thread sanctioned([] {});
  sanctioned.join();
}

}  // namespace fixture
