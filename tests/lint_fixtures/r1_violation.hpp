// piolint fixture: exactly one R1 violation (Result-returning function
// without [[nodiscard]]).
#pragma once

#include "common/result.hpp"

namespace fixture {

pio::Result<int> parse_count(const char* text);  // the one violation in this file

[[nodiscard]] pio::Result<int> parse_size(const char* text);  // compliant

}  // namespace fixture
