// piolint fixture: exactly one T1 violation (hand-scaled SimTime conversion).
#include "common/types.hpp"

double seconds_by_hand(pio::SimTime t) {
  return static_cast<double>(t.ns()) / 1e9;  // the one violation in this file
}
