// C2 fixture: by-reference lambda captures handed to deferring sinks
// (schedule_at / submit). By-value captures must stay silent.
namespace fix {

struct Eng {
  template <typename F>
  void schedule_at(int, F&&) {}
  template <typename F>
  void submit(int, F&&) {}
};

inline void use(Eng& e) {
  int x = 0;
  e.schedule_at(1, [&] { (void)x; });
  e.submit(2, [&x] { (void)x; });
  e.schedule_at(3, [x] { (void)x; });
  e.schedule_at(4, [=] { (void)x; });
}

}  // namespace fix
