// D3 fixture, declaration side: one unordered member and one ordered member.
// Nothing here iterates them, so the file itself is D2-clean.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fix {

struct PageTable {
  std::unordered_map<std::uint64_t, int> pages_;
  std::vector<int> rows_;
};

}  // namespace fix
