// D3 fixture, use side: iterates pages_ (declared unordered in d3_decl.hpp;
// cross-file, so D2 cannot see it) and rows_ (declared ordered -> silent).
#include "d3_decl.hpp"

namespace fix {

inline int walk(PageTable& t) {
  int sum = 0;
  for (const auto& p : t.pages_) sum += p.second;
  for (const int r : t.rows_) sum += r;
  return sum;
}

}  // namespace fix
