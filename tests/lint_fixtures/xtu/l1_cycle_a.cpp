// L1 fixture, forward direction: acquires m_a then m_b. On its own this is
// a consistent order (no finding); combined with l1_cycle_b.cpp it closes
// the m_a -> m_b -> m_a cycle.
#include <mutex>

namespace fix {

struct Forward {
  std::mutex m_a;
  std::mutex m_b;
  int v = 0;

  void fwd() {
    std::lock_guard<std::mutex> g1(m_a);
    std::lock_guard<std::mutex> g2(m_b);
    ++v;
  }
};

}  // namespace fix
