// L1 fixture, reverse direction: acquires m_b then m_a, closing the cycle
// with l1_cycle_a.cpp. The multi-arg scoped_lock acquires both atomically
// (deadlock-avoidance algorithm) and must not contribute an edge.
#include <mutex>

namespace fix {

struct Reverse {
  std::mutex m_a;
  std::mutex m_b;
  int v = 0;

  void rev() {
    std::lock_guard<std::mutex> g1(m_b);
    std::lock_guard<std::mutex> g2(m_a);
    ++v;
  }

  void both() {
    std::scoped_lock g(m_a, m_b);
    ++v;
  }
};

}  // namespace fix
