// R2 fixture, API side: a Result-returning function declared in a header.
// Carries [[nodiscard]] so the per-file R1 rule stays silent.
#pragma once

namespace fix {

template <typename T>
struct Result {
  T value{};
};

[[nodiscard]] Result<int> parse_thing();

}  // namespace fix
