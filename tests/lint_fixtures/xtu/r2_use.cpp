// R2 fixture, call side: discards the Result of a function declared in a
// different TU (r2_api.hpp). The bound call below must stay silent.
#include "r2_api.hpp"

namespace fix {

inline void drive() {
  parse_thing();
  auto kept = parse_thing();
  (void)kept;
}

}  // namespace fix
