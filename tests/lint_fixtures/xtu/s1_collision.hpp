// S1 positive: a stream id defined outside the registry, whose value also
// collides with a registry claim (kBetaStream).
#pragma once

#include <cstdint>

namespace fix {

inline constexpr std::uint64_t kGammaStream = 0xAB010001ULL;

}  // namespace fix
