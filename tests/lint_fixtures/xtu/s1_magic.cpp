// S1 positive: a raw integer literal equal to a claimed stream id. The
// unrelated literal below it must stay silent.
#include <cstdint>

namespace fix {

inline std::uint64_t claimed_value() { return 0xAB010000ULL; }
inline std::uint64_t unrelated_value() { return 0xDEADBEEFULL; }

}  // namespace fix
