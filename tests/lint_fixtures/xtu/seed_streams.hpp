// Fixture seed-stream registry. The analyzer detects registries by path
// suffix "seed_streams.hpp", so definitions here are the claimed streams
// for the xtu fixture project.
#pragma once

#include <cstdint>

namespace fix {

inline constexpr std::uint64_t kAlphaStream = 0xAB010000ULL;
inline constexpr std::uint64_t kBetaStream = 0xAB010001ULL;

}  // namespace fix
