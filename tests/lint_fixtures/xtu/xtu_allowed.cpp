// Allow-suppression fixture for the cross-TU rules: every violation below
// carries an allow directive, so the project pass must report nothing here.
//
// piolint: allow-file(C2)
#include <cstdint>

namespace fix {

// piolint: allow(S1)
inline constexpr std::uint64_t kZetaStream = 0xAB010777ULL;

struct Eng {
  template <typename F>
  void schedule_at(int, F&&) {}
};

inline void use(Eng& e) {
  int x = 0;
  e.schedule_at(1, [&] { (void)x; });
}

}  // namespace fix
