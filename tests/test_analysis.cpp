// Tests for job-level and system-level analysis, plus the closed-loop
// campaign and the survey corpus.
#include <gtest/gtest.h>

#include "analysis/job_analysis.hpp"
#include "analysis/system_analysis.hpp"
#include "corpus/corpus.hpp"
#include "driver/sim_driver.hpp"
#include "eval/campaign.hpp"
#include "trace/server_stats.hpp"
#include "trace/tracer.hpp"
#include "workload/dlio.hpp"
#include "workload/facility_mix.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

namespace pio {
namespace {

using namespace pio::literals;

pfs::PfsConfig small_pfs(pfs::DiskKind disk = pfs::DiskKind::kSsd) {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = disk;
  return config;
}

driver::SimRunResult simulate(const workload::Workload& w, trace::Sink* sink,
                              trace::ServerStatsCollector* server_stats = nullptr,
                              std::uint64_t seed = 1) {
  sim::Engine engine{seed};
  pfs::PfsModel model{engine, small_pfs()};
  if (server_stats != nullptr) server_stats->attach(model);
  driver::ExecutionDrivenSimulator sim{engine, model};
  return sim.run(w, sink);
}

TEST(JobAnalysisTest, DetectsCheckpointPeriodicity) {
  workload::CheckpointConfig config;
  config.ranks = 4;
  config.checkpoint_per_rank = 4_MiB;
  config.transfer_size = 1_MiB;
  config.checkpoints = 6;
  config.compute_phase = SimTime::from_sec(1.0);
  trace::Tracer tracer;
  (void)simulate(*workload::checkpoint_restart(config), &tracer);
  analysis::JobAnalysisConfig job_config;
  job_config.window = SimTime::from_ms(100.0);
  const auto report = analysis::analyze_job(tracer.take(), job_config);
  // ~1 s period (compute + burst), detected within 30%.
  ASSERT_GT(report.period.ns(), 0);
  EXPECT_NEAR(report.period.sec(), 1.0, 0.3);
  EXPECT_GT(report.period_strength, 0.3);
  // Checkpoints are bursty: top 10% of windows carry most bytes.
  EXPECT_GT(report.burst_concentration, 0.5);
  EXPECT_EQ(report.bytes_written, 6u * 4u * 4_MiB);
  // Six write phases detected (within merging tolerance).
  EXPECT_GE(report.phases.size(), 4u);
  EXPECT_LE(report.phases.size(), 8u);
  EXPECT_NE(report.to_string().find("periodic I/O"), std::string::npos);
}

TEST(JobAnalysisTest, SteadyWorkloadHasNoPeriodAndLowBurstiness) {
  workload::IorConfig config;
  config.ranks = 4;
  config.block_size = 8_MiB;
  config.transfer_size = 1_MiB;
  trace::Tracer tracer;
  (void)simulate(*workload::ior_like(config), &tracer);
  // Fine windows so the short run spans many of them.
  analysis::JobAnalysisConfig job_config;
  job_config.window = SimTime::from_ms(1.0);
  const auto report = analysis::analyze_job(tracer.take(), job_config);
  EXPECT_LT(report.burst_concentration, 0.9);
  EXPECT_EQ(report.metadata_ops, 0u + [&] {
    // opens/creates/closes/fsyncs counted as metadata: 4 ranks x
    // (1 open/create + 1 fsync + 1 close) + 1 mkdir.
    return 4u * 3u + 1u;
  }());
}

TEST(JobAnalysisTest, EmptyTraceIsSafe) {
  const auto report = analysis::analyze_job(trace::Trace{});
  EXPECT_EQ(report.span, SimTime::zero());
  EXPECT_EQ(report.phases.size(), 0u);
}

TEST(SystemAnalysisTest, WorkflowIsMetadataIntensiveAndDlIsReadHeavy) {
  // Workflow: metadata ops should dwarf per-window data activity.
  workload::WorkflowConfig wf;
  wf.workers = 4;
  wf.stages = 2;
  wf.tasks_per_stage = 8;
  wf.compute_per_task = SimTime::zero();
  trace::ServerStatsCollector wf_stats{SimTime::from_ms(50.0)};
  (void)simulate(*workload::workflow_dag(wf), nullptr, &wf_stats);
  std::uint64_t wf_meta = 0;
  for (const auto& [w, s] : wf_stats.mds_series()) wf_meta += s.meta_ops;
  EXPECT_GT(wf_meta, 100u);

  // DL training on a prepared dataset: reads dominate writes.
  workload::DlioConfig dl;
  dl.ranks = 4;
  dl.samples = 512;
  dl.samples_per_file = 64;
  dl.sample_size = 64_KiB;
  dl.epochs = 2;
  dl.compute_per_batch = SimTime::zero();
  trace::ServerStatsCollector dl_stats{SimTime::from_ms(1.0)};
  (void)simulate(*workload::dlio_like(dl), nullptr, &dl_stats);
  const auto report = analysis::analyze_system(dl_stats);
  // Preparation writes the dataset once; training reads it every epoch, so
  // reads arrive after writes and the read share trends upward.
  EXPECT_GT(report.temporal.read_fraction_trend, 0.0);
  EXPECT_GE(report.temporal.read_dominance_onset, 0);
  EXPECT_GT(report.spatial.servers, 0u);
  EXPECT_NE(report.to_string().find("correlative"), std::string::npos);
}

TEST(SystemAnalysisTest, FacilityTrendFindsTheCrossover) {
  workload::FacilityMixConfig config;
  config.months = 36;
  config.jobs_per_month = 800;
  const auto monthly =
      workload::aggregate_by_month(workload::generate_facility_log(config));
  const auto trend = analysis::analyze_facility_trend(monthly);
  EXPECT_GT(trend.read_fraction_trend, 0.0);
  EXPECT_GT(trend.read_dominance_onset, 0);
  EXPECT_LT(trend.read_dominance_onset, 36);
  EXPECT_EQ(trend.windows, 36u);
}

TEST(CampaignTest, ClosedLoopReducesPredictionError) {
  eval::CampaignConfig config;
  config.testbed = small_pfs(pfs::DiskKind::kHdd);
  config.model = small_pfs(pfs::DiskKind::kHdd);
  // Mis-calibrate the model: its disks stream 3x faster than the testbed's.
  config.model.hdd.stream_bandwidth = Bandwidth::from_mib_per_sec(540.0);
  config.iterations = 4;

  workload::IorConfig a;
  a.ranks = 4;
  a.block_size = 8_MiB;
  a.transfer_size = 1_MiB;
  workload::IorConfig b = a;
  b.transfer_size = 4_MiB;
  const auto wa = workload::ior_like(a);
  const auto wb = workload::ior_like(b);

  eval::Campaign campaign{config};
  const auto result = campaign.run({wa.get(), wb.get()});
  ASSERT_EQ(result.iterations.size(), 4u);
  const double first = result.iterations.front().mean_abs_pct_error();
  const double last = result.iterations.back().mean_abs_pct_error();
  EXPECT_GT(first, 0.2) << "mis-calibrated model must start clearly wrong";
  EXPECT_LT(last, first * 0.5) << "feedback must cut the error at least in half";
  EXPECT_TRUE(result.converged());
  EXPECT_GT(result.final_calibration, 1.0);
  EXPECT_GT(result.profile.records().size(), 0u);
  EXPECT_NE(result.to_string().find("calibration"), std::string::npos);
}

TEST(CampaignTest, WellCalibratedModelStaysAccurate) {
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.model = small_pfs();  // identical
  config.iterations = 2;
  workload::IorConfig a;
  a.ranks = 2;
  a.block_size = 2_MiB;
  a.transfer_size = 1_MiB;
  const auto w = workload::ior_like(a);
  eval::Campaign campaign{config};
  const auto result = campaign.run({w.get()});
  EXPECT_LT(result.iterations.front().mean_abs_pct_error(), 0.15);
  EXPECT_NEAR(result.final_calibration, 1.0, 0.15);
}

TEST(CorpusTest, ExactlyFiftyOneArticlesInWindow) {
  const auto& articles = corpus::surveyed_articles();
  EXPECT_EQ(articles.size(), 51u);
  for (const auto& a : articles) {
    EXPECT_GE(a.year, 2015) << a.short_title;
    EXPECT_LE(a.year, 2020) << a.short_title;
    EXPECT_FALSE(a.categories.empty()) << a.short_title;
    EXPECT_GT(a.reference, 0);
  }
  // Reference numbers are unique.
  std::set<int> refs;
  for (const auto& a : articles) EXPECT_TRUE(refs.insert(a.reference).second);
}

TEST(CorpusTest, DistributionSumsTo100Percent) {
  const auto dist = corpus::compute_distribution();
  EXPECT_EQ(dist.total, 51u);
  auto check_sums = [](const std::vector<corpus::Share>& shares) {
    double pct = 0.0;
    std::size_t count = 0;
    for (const auto& s : shares) {
      pct += s.percent;
      count += s.count;
    }
    EXPECT_NEAR(pct, 100.0, 1e-9);
    EXPECT_EQ(count, 51u);
  };
  check_sums(dist.by_type);
  check_sums(dist.by_publisher);
  check_sums(dist.by_year);
  // Shape facts from the survey: conferences dominate, IEEE is the largest
  // publisher.
  EXPECT_EQ(dist.by_type.front().label, "conference");
  EXPECT_EQ(dist.by_publisher.front().label, "IEEE");
}

TEST(CorpusTest, Filters) {
  const auto emerging = corpus::filter_by_category(corpus::Category::kEmerging);
  EXPECT_GT(emerging.size(), 5u);
  EXPECT_LT(emerging.size(), 51u);
  const auto y2020 = corpus::filter_by_year(2020, 2020);
  for (const auto& a : y2020) EXPECT_EQ(a.year, 2020);
  EXPECT_GT(y2020.size(), 0u);
  // The measurement phase is the survey's biggest bucket — matching the
  // paper's finding that most research is characterization-heavy.
  const auto measurement = corpus::filter_by_category(corpus::Category::kMeasurement);
  const auto simulation = corpus::filter_by_category(corpus::Category::kSimulation);
  EXPECT_GT(measurement.size(), simulation.size());
}

}  // namespace
}  // namespace pio
