// pio::cache tests: the page-cache core (LRU and 2Q replacement, dirty
// bookkeeping, prefetch accounting), the vfs::CacheBackend decorator
// (read-through, write-back, RMW, fault handling), and the DES-timed
// ClientCacheTier behind the simulation driver (warm-cache speedup, epoch
// prefetching, invariant C1 under injected faults, counter plumbing into
// SimRunResult / ServerStats / kCache trace events). Registered under the
// `cache` ctest label; CI runs the group in the Release and sanitizer legs.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/backend_cache.hpp"
#include "cache/cache.hpp"
#include "cache/client_tier.hpp"
#include "cache/page_cache.hpp"
#include "driver/sim_driver.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "trace/backend_shim.hpp"
#include "trace/server_stats.hpp"
#include "trace/tracer.hpp"
#include "vfs/backend.hpp"
#include "vfs/fault_injection.hpp"
#include "vfs/file_system.hpp"
#include "workload/dlio.hpp"
#include "workload/op.hpp"

namespace pio {
namespace {

using namespace pio::literals;

using cache::CacheConfig;
using cache::CacheStats;
using cache::EvictionPolicy;
using cache::Page;
using cache::PageCache;
using cache::PageKey;
using cache::PrefetchMode;

constexpr std::uint64_t kPage = vfs::FileSystem::kPageSize;  // 64 KiB

SimTime ms(double v) { return SimTime::from_ms(v); }

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::byte>((i * 13 + seed) & 0xFF);
  return data;
}

CacheConfig page_config(std::uint64_t capacity, EvictionPolicy policy) {
  CacheConfig config;
  config.capacity_pages = capacity;
  config.policy = policy;
  config.max_dirty_pages = capacity - 1;
  return config;
}

// ------------------------------------------------------------- CacheConfig

TEST(CacheConfigTest, DefaultsValidateAndEnumsPrint) {
  const CacheConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_STREQ(cache::to_string(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(cache::to_string(EvictionPolicy::kTwoQ), "2q");
  EXPECT_STREQ(cache::to_string(PrefetchMode::kEpoch), "epoch");
  EXPECT_STREQ(cache::to_string(cache::CacheScope::kShared), "shared");
}

TEST(CacheConfigTest, DirtyBoundMustStayBelowCapacity) {
  CacheConfig config;
  config.capacity_pages = 16;
  config.max_dirty_pages = 16;  // C1: eviction would have no clean victim
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.write_back = false;  // write-through never dirties: bound is moot
  EXPECT_NO_THROW(config.validate());
  config.write_back = true;
  config.max_dirty_pages = 15;
  EXPECT_NO_THROW(config.validate());
}

TEST(CacheConfigTest, RejectsDegenerateGeometry) {
  CacheConfig config;
  config.page_size = Bytes::zero();
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CacheConfig{};
  config.capacity_pages = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CacheConfig{};
  config.prefetch = PrefetchMode::kSequential;
  config.readahead_pages = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = CacheConfig{};
  config.local_bandwidth = Bandwidth{0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(CacheStatsTest, AccumulateAndHitRate) {
  CacheStats a;
  EXPECT_EQ(a.hit_rate(), 0.0);  // no lookups yet
  a.hits = 3;
  a.misses = 1;
  a.hit_bytes = 64_KiB;
  CacheStats b;
  b.hits = 1;
  b.misses = 3;
  b.writebacks = 2;
  b.hit_bytes = 64_KiB;
  a += b;
  EXPECT_EQ(a.hits, 4u);
  EXPECT_EQ(a.misses, 4u);
  EXPECT_EQ(a.writebacks, 2u);
  EXPECT_EQ(a.hit_bytes, 128_KiB);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
}

// --------------------------------------------------------------- PageCache

TEST(PageCacheTest, LruEvictsLeastRecentlyUsed) {
  PageCache cache{page_config(3, EvictionPolicy::kLru)};
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  (void)cache.insert(PageKey{1, 1}, SimTime::zero());
  (void)cache.insert(PageKey{1, 2}, SimTime::zero());
  // Touch page 0: page 1 becomes the LRU victim.
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
  (void)cache.insert(PageKey{1, 3}, SimTime::zero());
  EXPECT_TRUE(cache.contains(PageKey{1, 0}));
  EXPECT_FALSE(cache.contains(PageKey{1, 1}));
  EXPECT_TRUE(cache.contains(PageKey{1, 2}));
  EXPECT_TRUE(cache.contains(PageKey{1, 3}));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PageCacheTest, TwoQHitInAdmissionQueueDoesNotPromote) {
  // 2Q: a page must prove reuse *after* leaving the admission window. A hit
  // while still in A1in earns nothing — the page is evicted in FIFO order
  // anyway (scan resistance), unlike LRU where the same hit would save it.
  PageCache cache{page_config(4, EvictionPolicy::kTwoQ)};
  for (std::uint64_t p = 0; p < 4; ++p) (void)cache.insert(PageKey{1, p}, SimTime::zero());
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
  (void)cache.insert(PageKey{1, 4}, SimTime::zero());
  EXPECT_FALSE(cache.contains(PageKey{1, 0}));  // hit did not save it
  EXPECT_TRUE(cache.contains(PageKey{1, 1}));
}

TEST(PageCacheTest, TwoQGhostReinsertionPromotesToMain) {
  PageCache cache{page_config(4, EvictionPolicy::kTwoQ)};
  for (std::uint64_t p = 0; p < 4; ++p) (void)cache.insert(PageKey{1, p}, SimTime::zero());
  (void)cache.insert(PageKey{1, 4}, SimTime::zero());  // evicts page 0 into the ghost list
  ASSERT_FALSE(cache.contains(PageKey{1, 0}));
  // Re-miss within the ghost window: page 0 is admitted straight to Am and
  // survives a scan of new keys, which drains the admission FIFO instead.
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  for (std::uint64_t p = 10; p < 16; ++p) (void)cache.insert(PageKey{1, p}, SimTime::zero());
  EXPECT_TRUE(cache.contains(PageKey{1, 0}));
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
}

TEST(PageCacheTest, EvictionSkipsDirtyPagesAndReportsVictims) {
  PageCache cache{page_config(3, EvictionPolicy::kLru)};
  std::vector<PageKey> evicted;
  cache.set_eviction_observer([&](const Page& page) {
    EXPECT_FALSE(page.dirty);  // C1: only clean pages ever leave this way
    evicted.push_back(page.key);
  });
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  (void)cache.insert(PageKey{1, 1}, SimTime::zero());
  (void)cache.insert(PageKey{1, 2}, SimTime::zero());
  cache.mark_dirty(PageKey{1, 0});  // the LRU page, but untouchable
  (void)cache.insert(PageKey{1, 3}, SimTime::zero());
  EXPECT_TRUE(cache.contains(PageKey{1, 0}));
  EXPECT_FALSE(cache.contains(PageKey{1, 1}));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], (PageKey{1, 1}));
}

TEST(PageCacheTest, InsertThrowsWhenEveryPageIsDirty) {
  PageCache cache{page_config(2, EvictionPolicy::kLru)};
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  (void)cache.insert(PageKey{1, 1}, SimTime::zero());
  cache.mark_dirty(PageKey{1, 0});
  cache.mark_dirty(PageKey{1, 1});
  EXPECT_THROW((void)cache.insert(PageKey{1, 2}, SimTime::zero()), std::logic_error);
  // A clean victim restores insertability.
  cache.mark_clean(PageKey{1, 0});
  EXPECT_NO_THROW((void)cache.insert(PageKey{1, 2}, SimTime::zero()));
}

TEST(PageCacheTest, OldestDirtyIsFifoByFirstDirtying) {
  PageCache cache{page_config(8, EvictionPolicy::kLru)};
  for (std::uint64_t p = 0; p < 3; ++p) (void)cache.insert(PageKey{1, p}, SimTime::zero());
  cache.mark_dirty(PageKey{1, 1});
  cache.mark_dirty(PageKey{1, 0});
  cache.mark_dirty(PageKey{1, 2});
  cache.mark_dirty(PageKey{1, 1});  // re-dirtying does not reorder
  EXPECT_EQ(cache.dirty_count(), 3u);
  const auto two = cache.oldest_dirty(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (PageKey{1, 1}));
  EXPECT_EQ(two[1], (PageKey{1, 0}));
  cache.mark_clean(PageKey{1, 0});
  const auto rest = cache.oldest_dirty(8);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], (PageKey{1, 1}));
  EXPECT_EQ(rest[1], (PageKey{1, 2}));
}

TEST(PageCacheTest, PrefetchedPagesResolveToUsedOnHit) {
  PageCache cache{page_config(8, EvictionPolicy::kLru)};
  cache.insert(PageKey{1, 0}, SimTime::zero()).prefetched = true;
  cache.insert(PageKey{1, 1}, SimTime::zero()).prefetched = true;
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
  EXPECT_EQ(cache.stats().prefetch_used, 1u);
  // A second hit on the same page is no longer a prefetch resolution.
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
  EXPECT_EQ(cache.stats().prefetch_used, 1u);
  cache.finalize_prefetch_waste();
  EXPECT_EQ(cache.stats().prefetch_wasted, 1u);  // page 1 never paid off
}

TEST(PageCacheTest, EvictedUnusedPrefetchCountsAsWasted) {
  PageCache cache{page_config(2, EvictionPolicy::kLru)};
  cache.insert(PageKey{1, 0}, SimTime::zero()).prefetched = true;
  (void)cache.insert(PageKey{1, 1}, SimTime::zero());
  (void)cache.insert(PageKey{1, 2}, SimTime::zero());  // evicts the prefetched LRU page
  EXPECT_EQ(cache.stats().prefetch_wasted, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PageCacheTest, PeekDoesNotTouchReadCounters) {
  PageCache cache{page_config(4, EvictionPolicy::kLru)};
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  EXPECT_NE(cache.peek(PageKey{1, 0}), nullptr);
  EXPECT_EQ(cache.peek(PageKey{1, 9}), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.lookup(PageKey{1, 9}, SimTime::zero()), nullptr);
  EXPECT_NE(cache.lookup(PageKey{1, 0}, SimTime::zero()), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCacheTest, EraseFileDropsOnlyThatFile) {
  PageCache cache{page_config(8, EvictionPolicy::kLru)};
  (void)cache.insert(PageKey{1, 0}, SimTime::zero());
  (void)cache.insert(PageKey{1, 7}, SimTime::zero());
  (void)cache.insert(PageKey{2, 0}, SimTime::zero());
  cache.mark_dirty(PageKey{1, 7});
  cache.erase_file(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.dirty_count(), 0u);  // dirty pages of the file go with it
  EXPECT_TRUE(cache.contains(PageKey{2, 0}));
}

// ------------------------------------------------------------ CacheBackend

CacheConfig backend_config() {
  CacheConfig config;
  config.capacity_pages = 64;
  config.max_dirty_pages = 32;
  return config;
}

TEST(CacheBackendTest, WriteBackAbsorbsAndFlushesOnFsync) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  const auto data = pattern(3 * kPage);
  ASSERT_TRUE(cached.pwrite(fd.value(), data, 0).ok());
  // Absorbed: acknowledged from the cache, nothing on the backing store yet.
  EXPECT_EQ(cached.stats().absorbed_writes, 1u);
  EXPECT_EQ(cached.dirty_pages(), 3u);
  EXPECT_EQ(fs.stat("/f").value().size, Bytes::zero());
  EXPECT_EQ(cached.fsync(fd.value()), vfs::FsStatus::kOk);
  EXPECT_EQ(cached.dirty_pages(), 0u);
  EXPECT_EQ(cached.stats().writebacks, 3u);
  std::vector<std::byte> out(data.size());
  ASSERT_EQ(fs.pread("/f", out, 0).value(), data.size());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, ReadThroughCachesAndHitsOnReread) {
  vfs::FileSystem fs;
  ASSERT_EQ(fs.create("/f"), vfs::FsStatus::kOk);
  const auto data = pattern(2 * kPage, 7);
  ASSERT_TRUE(fs.pwrite("/f", data, 0).ok());
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kRead, false, false});
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> out(data.size());
  ASSERT_EQ(cached.pread(fd.value(), out, 0).value(), data.size());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_EQ(cached.stats().misses, 2u);
  EXPECT_EQ(cached.stats().hits, 0u);
  std::fill(out.begin(), out.end(), std::byte{0});
  ASSERT_EQ(cached.pread(fd.value(), out, 0).value(), data.size());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_EQ(cached.stats().hits, 2u);
  EXPECT_EQ(cached.stats().hit_bytes, Bytes{2 * kPage});
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, PartialWriteMergesWithExistingContent) {
  vfs::FileSystem fs;
  ASSERT_EQ(fs.create("/f"), vfs::FsStatus::kOk);
  const auto base = pattern(kPage, 1);
  ASSERT_TRUE(fs.pwrite("/f", base, 0).ok());
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, false, false});
  ASSERT_TRUE(fd.ok());
  const auto overlay = pattern(100, 2);
  ASSERT_TRUE(cached.pwrite(fd.value(), overlay, 10).ok());  // RMW inside the page
  auto expected = base;
  std::memcpy(expected.data() + 10, overlay.data(), overlay.size());
  // The merged view is visible through the cache before any write-back...
  std::vector<std::byte> out(kPage);
  ASSERT_EQ(cached.pread(fd.value(), out, 0).value(), kPage);
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), kPage), 0);
  // ...and lands intact on the backing store after fsync.
  EXPECT_EQ(cached.fsync(fd.value()), vfs::FsStatus::kOk);
  ASSERT_EQ(fs.pread("/f", out, 0).value(), kPage);
  EXPECT_EQ(std::memcmp(out.data(), expected.data(), kPage), 0);
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, StatReflectsCachedSizeExtension) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(cached.pwrite(fd.value(), pattern(kPage), 3 * kPage).ok());
  EXPECT_EQ(cached.stat("/f").value().size, Bytes{4 * kPage});  // cached extension
  EXPECT_EQ(fs.stat("/f").value().size, Bytes::zero());         // not yet written back
  EXPECT_EQ(cached.fsync(fd.value()), vfs::FsStatus::kOk);
  EXPECT_EQ(fs.stat("/f").value().size, Bytes{4 * kPage});
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, FailedWritebackSurfacesOnCloseAndKeepsData) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  vfs::FaultPlan plan;
  plan.write_failure = 1.0;  // every inner write fails: write-backs can't land
  vfs::FaultInjectionBackend faulty{local, plan};
  cache::CacheBackend cached{faulty, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  const auto data = pattern(kPage, 5);
  ASSERT_TRUE(cached.pwrite(fd.value(), data, 0).ok());  // absorbed, acknowledged
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kInvalid);
  EXPECT_GE(cached.stats().writeback_failures, 1u);
  // C1: the acknowledged bytes are still held dirty, the descriptor stays
  // open, and the data remains readable for a later retry.
  EXPECT_EQ(cached.dirty_pages(), 1u);
  EXPECT_EQ(cached.path_of(fd.value()), "/f");
  std::vector<std::byte> out(kPage);
  ASSERT_EQ(cached.pread(fd.value(), out, 0).value(), kPage);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPage), 0);
}

TEST(CacheBackendTest, FullOfDirtyRefusesWriteInsteadOfDropping) {
  CacheConfig config;
  config.capacity_pages = 8;
  config.max_dirty_pages = 4;
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  vfs::FaultPlan plan;
  plan.write_failure = 1.0;
  vfs::FaultInjectionBackend faulty{local, plan};
  cache::CacheBackend cached{faulty, config};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  // With write-backs failing, dirty pages pile up to the C1 ceiling
  // (capacity - 1): the next write is refused, never silently shed.
  for (std::uint64_t p = 0; p < 7; ++p) {
    ASSERT_TRUE(cached.pwrite(fd.value(), pattern(kPage, unsigned(p)), p * kPage).ok());
  }
  const auto refused = cached.pwrite(fd.value(), pattern(kPage), 7 * kPage);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(cached.dirty_pages(), 7u);
  // Every previously acknowledged page is still intact.
  std::vector<std::byte> out(kPage);
  for (std::uint64_t p = 0; p < 7; ++p) {
    const auto expected = pattern(kPage, unsigned(p));
    ASSERT_EQ(cached.pread(fd.value(), out, p * kPage).value(), kPage);
    EXPECT_EQ(std::memcmp(out.data(), expected.data(), kPage), 0) << "page " << p;
  }
}

TEST(CacheBackendTest, RemoveDiscardsDirtyPages) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(cached.pwrite(fd.value(), pattern(kPage), 0).ok());
  EXPECT_EQ(cached.dirty_pages(), 1u);
  // Unlink discards: dirty pages of a removed file are dropped, not flushed.
  EXPECT_EQ(cached.remove("/f"), vfs::FsStatus::kOk);
  EXPECT_EQ(cached.dirty_pages(), 0u);
  EXPECT_FALSE(cached.stat("/f").ok());
  EXPECT_FALSE(fs.exists("/f"));
}

TEST(CacheBackendTest, SequentialReadaheadPrefetchesAhead) {
  vfs::FileSystem fs;
  ASSERT_EQ(fs.create("/data"), vfs::FsStatus::kOk);
  const auto data = pattern(16 * kPage, 9);
  ASSERT_TRUE(fs.pwrite("/data", data, 0).ok());
  CacheConfig config = backend_config();
  config.prefetch = PrefetchMode::kSequential;
  config.readahead_pages = 4;
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, config};
  auto fd = cached.open("/data", {vfs::OpenMode::kRead, false, false});
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> out(kPage);
  for (std::uint64_t p = 0; p < 16; ++p) {
    ASSERT_EQ(cached.pread(fd.value(), out, p * kPage).value(), kPage);
    ASSERT_EQ(std::memcmp(out.data(), data.data() + p * kPage, kPage), 0) << "page " << p;
  }
  const auto& stats = cached.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_used, 0u);
  // Readahead turned most would-be misses into hits on a pure sequential scan.
  EXPECT_LT(stats.misses, 8u);
  EXPECT_GT(stats.hits, 8u);
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, ComposesWithTracingBackendOnEitherSide) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  // Inner tracer: sees what the storage saw (write-backs, misses).
  trace::ManualClock clock;
  trace::Tracer storage_trace;
  trace::TracingBackend traced{local, storage_trace, clock, 0};
  cache::CacheBackend cached{traced, backend_config()};
  // Outer tracer: sees what the application did (hits and misses alike).
  trace::Tracer app_trace;
  trace::TracingBackend app{cached, app_trace, clock, 0};
  auto fd = app.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(app.pwrite(fd.value(), pattern(2 * kPage), 0).ok());
  std::vector<std::byte> out(2 * kPage);
  ASSERT_EQ(app.pread(fd.value(), out, 0).value(), 2 * kPage);
  // The app issued the ops; the storage has seen none of the data yet.
  EXPECT_EQ(app_trace.snapshot().bytes_written(), Bytes{2 * kPage});
  EXPECT_EQ(app_trace.snapshot().bytes_read(), Bytes{2 * kPage});
  EXPECT_EQ(storage_trace.snapshot().bytes_written(), Bytes::zero());
  EXPECT_EQ(storage_trace.snapshot().bytes_read(), Bytes::zero());
  EXPECT_EQ(app.fsync(fd.value()), vfs::FsStatus::kOk);
  EXPECT_EQ(storage_trace.snapshot().bytes_written(), Bytes{2 * kPage});  // the write-backs
  EXPECT_EQ(app.close(fd.value()), vfs::FsStatus::kOk);
}

TEST(CacheBackendTest, TruncateOnOpenDropsCachedPages) {
  vfs::FileSystem fs;
  vfs::LocalBackend local{fs};
  cache::CacheBackend cached{local, backend_config()};
  auto fd = cached.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(cached.pwrite(fd.value(), pattern(kPage, 3), 0).ok());
  EXPECT_EQ(cached.fsync(fd.value()), vfs::FsStatus::kOk);
  EXPECT_EQ(cached.close(fd.value()), vfs::FsStatus::kOk);
  auto fd2 = cached.open("/f", {vfs::OpenMode::kReadWrite, false, true});
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(cached.stat("/f").value().size, Bytes::zero());
  std::vector<std::byte> out(kPage);
  EXPECT_EQ(cached.pread(fd2.value(), out, 0).value(), 0u);  // stale pages are gone
  EXPECT_EQ(cached.close(fd2.value()), vfs::FsStatus::kOk);
}

// ---------------------------------------------------------- ClientCacheTier

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

workload::DlioConfig small_dlio(std::int32_t epochs) {
  workload::DlioConfig config;
  config.ranks = 4;
  config.samples = 64;
  config.samples_per_file = 16;
  config.sample_size = 64_KiB;
  config.batch_size = 4;
  config.epochs = epochs;
  config.compute_per_batch = SimTime::zero();
  return config;
}

CacheConfig shared_cache() {
  CacheConfig config;
  config.enabled = true;
  config.scope = cache::CacheScope::kShared;
  config.capacity_pages = 256;
  config.max_dirty_pages = 128;
  return config;
}

struct TierRun {
  driver::SimRunResult result;
  CacheStats tier_stats;
  std::uint64_t epochs_marked = 0;
};

TierRun run_dlio(const CacheConfig& cache_config, std::uint64_t seed, std::int32_t epochs,
                 trace::Sink* sink = nullptr,
                 std::function<void(const cache::CacheRecord&)> observer = {}) {
  sim::Engine engine{seed};
  pfs::PfsModel model{engine, small_pfs()};
  driver::SimRunConfig run_config;
  run_config.cache = cache_config;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  if (observer) sim.set_cache_observer(std::move(observer));
  TierRun out;
  out.result = sim.run(*workload::dlio_like(small_dlio(epochs)), sink);
  if (sim.cache_tier() != nullptr) {
    out.tier_stats = sim.cache_tier()->stats();
    out.epochs_marked = sim.cache_tier()->epochs_marked();
  }
  return out;
}

TEST(ClientCacheTierTest, WarmCacheSpeedsUpRereadEpochs) {
  const auto off = run_dlio(CacheConfig{}, 42, 2);
  const auto on = run_dlio(shared_cache(), 42, 2);
  EXPECT_EQ(off.result.cache_hits + off.result.cache_misses, 0u);  // cache disabled
  EXPECT_GT(on.result.cache_hits, 0u);
  EXPECT_GT(on.result.cache_hit_rate(), 0.5);  // epoch 2 rereads the warmed set
  EXPECT_LT(on.result.makespan, off.result.makespan);
  EXPECT_EQ(on.result.failed_ops, 0u);
}

TEST(ClientCacheTierTest, SameSeedCachedRunsAreIdentical) {
  const auto a = run_dlio(shared_cache(), 7, 2);
  const auto b = run_dlio(shared_cache(), 7, 2);
  EXPECT_EQ(a.result.makespan.ns(), b.result.makespan.ns());
  EXPECT_EQ(a.result.cache_hits, b.result.cache_hits);
  EXPECT_EQ(a.result.cache_misses, b.result.cache_misses);
  EXPECT_EQ(a.result.cache_evictions, b.result.cache_evictions);
  EXPECT_EQ(a.result.cache_writebacks, b.result.cache_writebacks);
  EXPECT_EQ(a.result.cache_hit_bytes, b.result.cache_hit_bytes);
  EXPECT_EQ(a.result.cache_prefetch_issued, b.result.cache_prefetch_issued);
}

TEST(ClientCacheTierTest, CountersFlowIntoSimRunResult) {
  const auto run = run_dlio(shared_cache(), 11, 2);
  EXPECT_EQ(run.result.cache_hits, run.tier_stats.hits);
  EXPECT_EQ(run.result.cache_misses, run.tier_stats.misses);
  EXPECT_EQ(run.result.cache_writebacks, run.tier_stats.writebacks);
  EXPECT_EQ(run.result.cache_hit_bytes, run.tier_stats.hit_bytes);
  EXPECT_EQ(run.result.cache_absorbed_writes, run.tier_stats.absorbed_writes);
  EXPECT_GT(run.result.cache_absorbed_writes, 0u);  // dataset preparation writes
  EXPECT_GT(run.result.cache_writebacks, 0u);       // drained by quiescence
}

TEST(ClientCacheTierTest, EpochPrefetcherWarmsPreviousEpochSet) {
  CacheConfig config = shared_cache();
  config.prefetch = PrefetchMode::kEpoch;
  config.capacity_pages = 48;  // smaller than the 64-page dataset: warming has work
  config.max_dirty_pages = 16;
  const auto run = run_dlio(config, 13, 3);
  EXPECT_GE(run.epochs_marked, 3u);  // one mark per DLIO epoch barrier
  EXPECT_GT(run.result.cache_prefetch_issued, 0u);
  EXPECT_GT(run.result.cache_prefetch_used, 0u);
  // Accounting closes: every issued prefetch resolves to used or wasted by
  // the end of the run (finalize folds the stragglers).
  EXPECT_EQ(run.result.cache_prefetch_issued,
            run.result.cache_prefetch_used + run.result.cache_prefetch_wasted);
  EXPECT_EQ(run.result.failed_ops, 0u);
}

TEST(ClientCacheTierTest, SharedScopeOutHitsPerRankUnderReshuffle) {
  // DL reshuffling re-partitions samples across ranks every epoch: a
  // node-local
  // (shared) cache re-hits the full warmed set, per-rank caches only their
  // ~1/N share. The scope axis exists to expose exactly that.
  CacheConfig per_rank = shared_cache();
  per_rank.scope = cache::CacheScope::kPerRank;
  const auto shared = run_dlio(shared_cache(), 21, 2);
  const auto isolated = run_dlio(per_rank, 21, 2);
  EXPECT_GT(shared.result.cache_hits, isolated.result.cache_hits);
}

TEST(ClientCacheTierTest, WriteThroughModeNeverDirties) {
  CacheConfig config = shared_cache();
  config.write_back = false;
  const auto run = run_dlio(config, 5, 2);
  EXPECT_EQ(run.result.cache_absorbed_writes, 0u);
  EXPECT_EQ(run.result.cache_writebacks, 0u);
  EXPECT_GT(run.result.cache_hits, 0u);  // reads still cache and re-hit
  EXPECT_EQ(run.result.failed_ops, 0u);
}

TEST(ClientCacheTierTest, WritebackRetriesThroughOstOutagePreserveC1) {
  // Checkpoint-style workload: writes are absorbed instantly, then fsync
  // forces write-back into an OST that is down for the first 50 ms. C1: the
  // tier retries until recovery — no acknowledged byte is ever dropped.
  std::vector<std::vector<workload::Op>> ops(2);
  for (std::int32_t r = 0; r < 2; ++r) {
    const std::string path = "/ckpt-" + std::to_string(r);
    ops[static_cast<std::size_t>(r)].push_back(workload::Op::create(path));
    for (std::uint64_t p = 0; p < 4; ++p) {
      ops[static_cast<std::size_t>(r)].push_back(workload::Op::write(path, p * kPage, 64_KiB));
    }
    ops[static_cast<std::size_t>(r)].push_back(workload::Op::fsync(path));
    ops[static_cast<std::size_t>(r)].push_back(workload::Op::close(path));
  }
  const workload::VectorWorkload checkpoint{"ckpt", std::move(ops)};

  sim::Engine engine{3};
  pfs::PfsConfig pfs_config;
  pfs_config.clients = 2;
  pfs_config.io_nodes = 1;
  pfs_config.osts = 1;
  pfs_config.disk_kind = pfs::DiskKind::kSsd;
  pfs_config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  pfs_config.faults.ost_down(0, SimTime::zero(), ms(50));
  pfs::PfsModel model{engine, pfs_config};
  driver::SimRunConfig run_config;
  run_config.layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  run_config.cache.enabled = true;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  const auto result = sim.run(checkpoint);
  EXPECT_EQ(result.failed_ops, 0u);  // the application never saw the outage
  EXPECT_EQ(result.cache_absorbed_writes, 8u);
  EXPECT_EQ(result.cache_writebacks, 8u);
  EXPECT_GT(result.cache_writeback_failures, 0u);  // attempts during the outage
  EXPECT_GE(result.makespan, ms(50));              // fsync waited for recovery
  // Every acknowledged byte landed on the device once it came back.
  EXPECT_EQ(model.ost(0).stats().bytes_written, Bytes{8 * kPage});
  engine.assert_drained();
  model.assert_quiescent();  // F3: the durability ledger agrees
}

TEST(ClientCacheTierTest, ObserverFeedsServerStatsCacheSeries) {
  trace::ServerStatsCollector collector{ms(10)};
  const auto run = run_dlio(shared_cache(), 17, 2, nullptr,
                            [&](const cache::CacheRecord& r) { collector.on_cache_record(r); });
  std::uint64_t hit_events = 0;
  std::uint64_t absorbed = 0;
  Bytes hit_bytes = Bytes::zero();
  for (const auto& [window, sample] : collector.cache_series()) {
    EXPECT_EQ(window, sample.window);
    hit_events += sample.hit_events;
    absorbed += sample.absorbed_writes;
    hit_bytes += sample.hit_bytes;
  }
  EXPECT_GT(hit_events, 0u);
  EXPECT_EQ(hit_bytes, run.result.cache_hit_bytes);
  EXPECT_EQ(absorbed, run.result.cache_absorbed_writes);
}

TEST(ClientCacheTierTest, CacheLayerTraceEventsCarryHitBytes) {
  trace::Tracer tracer;
  const auto run = run_dlio(shared_cache(), 23, 2, &tracer);
  const auto trace = tracer.snapshot();
  std::uint64_t cache_events = 0;
  Bytes read_hit_bytes = Bytes::zero();
  for (const auto& e : trace.events()) {
    if (e.layer != trace::Layer::kCache) continue;
    ++cache_events;
    EXPECT_LE(e.start, e.end);
    if (e.op == trace::OpKind::kRead) read_hit_bytes += Bytes{e.size};
  }
  EXPECT_GT(cache_events, 0u);
  // One kCache annotation per data op, sized by the bytes the cache served.
  EXPECT_EQ(read_hit_bytes, run.result.cache_hit_bytes);
}

}  // namespace
}  // namespace pio
