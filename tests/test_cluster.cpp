// pio::pfs cluster-membership tests: HRW vs round-robin placement algebra,
// heartbeat failure detection (latency bounds, grace-period sweeps), the
// stale-map client protocol (kStaleMap bounce -> refresh -> retry), epoch
// migration volume, and invariant F4 — acknowledged data stays readable
// across any join -> drain -> crash -> decommission sequence at R >= 2.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine/model and drain it in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "pfs/cluster_map.hpp"
#include "pfs/pfs.hpp"
#include "pfs/resilience.hpp"
#include "sim/engine.hpp"

namespace pio {
namespace {

using pfs::OstIndex;

SimTime ms(double v) { return SimTime::from_ms(v); }

bool contains(const std::vector<OstIndex>& targets, OstIndex ost) {
  return std::find(targets.begin(), targets.end(), ost) != targets.end();
}

pfs::ClusterMap all_up(std::uint32_t osts) {
  return pfs::ClusterMap{1, std::vector<pfs::OstState>(osts, pfs::OstState::kUp)};
}

/// A small cluster-mode PFS. Short horizon: sync-style engine.run() drains
/// every heartbeat up to the horizon, so tests keep it in the low hundreds
/// of ms to stay fast.
pfs::PfsConfig cluster_pfs(std::uint32_t osts, pfs::PlacementMode mode, SimTime horizon) {
  pfs::PfsConfig config;
  config.clients = 2;
  config.io_nodes = 1;
  config.osts = osts;
  config.disk_kind = pfs::DiskKind::kSsd;
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_kib(64), 2, 0};
  config.cluster.enabled = true;
  config.cluster.placement = mode;
  config.cluster.heartbeat_interval = ms(5.0);
  config.cluster.heartbeat_grace = 3;
  config.cluster.horizon = horizon;
  return config;
}

/// Replicated layout + contents tracking (the durability layer is what makes
/// migration and F4 observable).
void enable_tracking(pfs::PfsConfig& config) {
  config.durability.track_contents = true;
  config.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(256.0);
}

/// Count stripes whose target set changed between two maps, asserting the
/// caller-supplied witness predicate on every changed stripe.
struct PlacementDiff {
  std::uint64_t changed = 0;
  std::uint64_t total = 0;
};

template <typename Witness>
PlacementDiff diff_placement(const pfs::ClusterMap& before, const pfs::ClusterMap& after,
                             pfs::PlacementMode mode, const pfs::StripeLayout& layout,
                             std::uint32_t replicas, Witness&& witness) {
  PlacementDiff diff;
  for (const std::string& path : {std::string("/a/data"), std::string("/b/data")}) {
    const std::uint64_t key = pfs::file_placement_key(path);
    for (std::uint64_t stripe = 0; stripe < 64; ++stripe) {
      const auto t_before = pfs::placement_targets(before, mode, layout, key, stripe, replicas);
      const auto t_after = pfs::placement_targets(after, mode, layout, key, stripe, replicas);
      ++diff.total;
      if (t_before != t_after) {
        ++diff.changed;
        witness(t_before, t_after);
      }
    }
  }
  return diff;
}

/// The migration bytes one epoch transition should mark: for every written
/// stripe, each new-placement target that was not an old-placement holder
/// owes one stripe of resync.
Bytes expected_migration(const pfs::ClusterMap& before, const pfs::ClusterMap& after,
                         pfs::PlacementMode mode, const pfs::StripeLayout& layout,
                         const std::vector<std::string>& paths, std::uint64_t stripes_per_file) {
  std::uint64_t marked = 0;
  for (const std::string& path : paths) {
    const std::uint64_t key = pfs::file_placement_key(path);
    for (std::uint64_t stripe = 0; stripe < stripes_per_file; ++stripe) {
      const auto t_old = pfs::placement_targets(before, mode, layout, key, stripe,
                                                layout.replicas);
      const auto t_new = pfs::placement_targets(after, mode, layout, key, stripe,
                                                layout.replicas);
      for (const OstIndex target : t_new) {
        if (!contains(t_old, target)) marked += layout.stripe_size.count();
      }
    }
  }
  return Bytes{marked};
}

// ------------------------------------------------------------ placement

TEST(ClusterPlacement, HrwIsDeterministicAndDistinct) {
  const auto map = all_up(8);
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 3};
  const std::uint64_t key = pfs::file_placement_key("/exp/checkpoint.0");
  for (std::uint64_t stripe = 0; stripe < 32; ++stripe) {
    const auto first = pfs::placement_targets(map, pfs::PlacementMode::kRendezvousHash, layout,
                                              key, stripe, 3);
    const auto second = pfs::placement_targets(map, pfs::PlacementMode::kRendezvousHash, layout,
                                               key, stripe, 3);
    EXPECT_EQ(first, second);
    ASSERT_EQ(first.size(), 3u);
    auto sorted = first;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end()) << "duplicate replica";
  }
  // Two files with the same layout spread independently: their primaries
  // cannot all coincide across 32 stripes unless the file key is dead.
  const std::uint64_t other = pfs::file_placement_key("/exp/checkpoint.1");
  std::uint64_t same_primary = 0;
  for (std::uint64_t stripe = 0; stripe < 32; ++stripe) {
    const auto a = pfs::placement_targets(map, pfs::PlacementMode::kRendezvousHash, layout, key,
                                          stripe, 1);
    const auto b = pfs::placement_targets(map, pfs::PlacementMode::kRendezvousHash, layout,
                                          other, stripe, 1);
    if (a == b) ++same_primary;
  }
  EXPECT_LT(same_primary, 32u);
}

TEST(ClusterPlacement, HrwRemovalMovesOnlyStripesThatLostAWinner) {
  const auto before = all_up(8);
  auto after = before;
  after.set_state(3, pfs::OstState::kDown);
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 3};
  const auto diff = diff_placement(
      before, after, pfs::PlacementMode::kRendezvousHash, layout, 3,
      [](const std::vector<OstIndex>& t_before, const std::vector<OstIndex>& t_after) {
        // HRW's minimal-disruption guarantee: a stripe moves iff the lost
        // OST was one of its winners, and survivors keep their slots.
        EXPECT_TRUE(contains(t_before, 3));
        EXPECT_FALSE(contains(t_after, 3));
      });
  EXPECT_GT(diff.changed, 0u);
  // Only the stripes that had OST 3 as a winner move: ~replicas/pool of the
  // total (3/8 here), far from a full reshuffle.
  EXPECT_LT(diff.changed, diff.total * 6 / 10);
  // And the converse: unchanged stripes never had OST 3.
  std::uint64_t with_lost = 0;
  const std::uint64_t key = pfs::file_placement_key("/a/data");
  for (std::uint64_t stripe = 0; stripe < 64; ++stripe) {
    const auto t = pfs::placement_targets(before, pfs::PlacementMode::kRendezvousHash, layout,
                                          key, stripe, 3);
    if (contains(t, 3)) ++with_lost;
  }
  EXPECT_GT(with_lost, 0u);
}

TEST(ClusterPlacement, RoundRobinReshufflesFarMoreThanHrw) {
  const auto before = all_up(8);
  auto after = before;
  after.set_state(3, pfs::OstState::kDown);
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 3};
  const auto nop = [](const std::vector<OstIndex>&, const std::vector<OstIndex>&) {};
  const auto hrw = diff_placement(before, after, pfs::PlacementMode::kRendezvousHash, layout, 3,
                                  nop);
  const auto rr = diff_placement(before, after, pfs::PlacementMode::kRoundRobin, layout, 3, nop);
  // The pool shrank 8 -> 7: round-robin's modulus change moves nearly every
  // stripe while HRW moves only the lost OST's share.
  EXPECT_GT(rr.changed, hrw.changed);
  EXPECT_GT(rr.changed, rr.total / 2);
}

TEST(ClusterPlacement, HrwJoinMovesOnlyStripesTheNewOstWins) {
  auto before = all_up(8);
  before.set_state(7, pfs::OstState::kDecommissioned);
  const auto after = all_up(8);
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 3};
  const auto diff = diff_placement(
      before, after, pfs::PlacementMode::kRendezvousHash, layout, 3,
      [](const std::vector<OstIndex>& t_before, const std::vector<OstIndex>& t_after) {
        EXPECT_TRUE(contains(t_after, 7));
        EXPECT_FALSE(contains(t_before, 7));
      });
  EXPECT_GT(diff.changed, 0u);
  EXPECT_LT(diff.changed, diff.total * 6 / 10);
}

TEST(ClusterPlacement, DegradedPoolsClampAndEmpty) {
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 3};
  const std::uint64_t key = pfs::file_placement_key("/a/data");
  pfs::ClusterMap dead{1, std::vector<pfs::OstState>(4, pfs::OstState::kDown)};
  EXPECT_TRUE(pfs::placement_targets(dead, pfs::PlacementMode::kRendezvousHash, layout, key, 0, 3)
                  .empty());
  // Draining OSTs serve reads but take no new placements.
  pfs::ClusterMap draining{1, std::vector<pfs::OstState>(4, pfs::OstState::kDraining)};
  draining.set_state(2, pfs::OstState::kUp);
  const auto only = pfs::placement_targets(draining, pfs::PlacementMode::kRendezvousHash, layout,
                                           key, 5, 3);
  ASSERT_EQ(only.size(), 1u);  // want 3, pool has 1
  EXPECT_EQ(only.front(), 2u);
  EXPECT_TRUE(draining.serving(0));
  EXPECT_FALSE(draining.placeable(0));
}

// ------------------------------------------------------------ validation

TEST(ClusterConfig, RejectsInvalidConfigurations) {
  {
    sim::Engine engine{1};
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(100.0));
    config.bb_placement = pfs::BbPlacement::kPerIoNode;
    EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
  }
  {
    sim::Engine engine{1};
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(100.0));
    config.cluster.heartbeat_grace = 0;
    EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
  }
  {
    sim::Engine engine{1};
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(100.0));
    config.cluster.heartbeat_interval = SimTime::zero();
    EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
  }
  {
    sim::Engine engine{1};
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(100.0));
    config.cluster.join(4, ms(10.0));  // no such OST
    EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
  }
  {
    sim::Engine engine{1};
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(100.0));
    config.cluster.drain(1, ms(200.0));  // past the heartbeat horizon
    EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
  }
}

// ------------------------------------------------------------ detection

TEST(ClusterHeartbeat, DetectsCrashWithinGraceBoundAndRecovery) {
  auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(500.0));
  config.faults.ost_down(1, ms(100.0), ms(300.0));
  sim::Engine engine{7};
  pfs::PfsModel model{engine, config};
  std::vector<pfs::ResilienceRecord> downs, ups;
  model.set_resilience_observer([&](const pfs::ResilienceRecord& r) {
    if (r.kind == pfs::ResilienceEventKind::kDetectedDown) downs.push_back(r);
    if (r.kind == pfs::ResilienceEventKind::kDetectedUp) ups.push_back(r);
  });
  engine.run();
  engine.assert_drained();

  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].ost, 1u);
  // Non-omniscient: detection trails the true crash by up to the grace
  // period plus one jittered interval (plus header delivery).
  EXPECT_GT(downs[0].at, ms(100.0));
  EXPECT_LT(downs[0].at, ms(122.0));
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(ups[0].ost, 1u);
  // Recovery is noticed on the next delivered beat, not at the true instant.
  EXPECT_GT(ups[0].at, ms(300.0));
  EXPECT_LT(ups[0].at, ms(307.0));

  EXPECT_EQ(model.resilience_stats().down_detections, 1u);
  EXPECT_EQ(model.resilience_stats().up_detections, 1u);
  // Three epochs: initial, down, up — with the full history retained.
  EXPECT_EQ(model.cluster_map().epoch(), 3u);
  ASSERT_EQ(model.cluster_map_history().size(), 3u);
  EXPECT_EQ(model.cluster_map_history()[1].state(1), pfs::OstState::kDown);
  EXPECT_EQ(model.cluster_map().state(1), pfs::OstState::kUp);
}

TEST(ClusterHeartbeat, DetectionLatencyTracksGracePeriod) {
  // Jitter off: the grace period is the only knob moving, so detection
  // latency must shrink strictly monotonically as the grace shrinks.
  std::vector<SimTime> detected;
  for (const std::uint32_t grace : {8u, 5u, 3u, 2u}) {
    auto config = cluster_pfs(4, pfs::PlacementMode::kRendezvousHash, ms(300.0));
    config.cluster.heartbeat_jitter_fraction = 0.0;
    config.cluster.heartbeat_grace = grace;
    config.faults.ost_down(1, ms(100.0), SimTime::from_sec(10.0));  // never recovers
    sim::Engine engine{7};
    pfs::PfsModel model{engine, config};
    std::vector<SimTime> downs;
    model.set_resilience_observer([&](const pfs::ResilienceRecord& r) {
      if (r.kind == pfs::ResilienceEventKind::kDetectedDown) downs.push_back(r.at);
    });
    engine.run();
    engine.assert_drained();
    ASSERT_EQ(downs.size(), 1u) << "grace " << grace;
    EXPECT_GT(downs[0], ms(100.0) + config.cluster.heartbeat_interval *
                                        static_cast<std::int64_t>(grace - 1));
    EXPECT_LT(downs[0], ms(101.0) + config.cluster.grace_period());
    detected.push_back(downs[0]);
  }
  for (std::size_t i = 1; i < detected.size(); ++i) {
    EXPECT_LT(detected[i], detected[i - 1]) << "detection latency not monotone in grace";
  }
}

// ------------------------------------------------------------ protocol

/// Satellite: RetryPolicy x late detection. A write issued inside the
/// detection window addresses a dead-but-undetected OST, fails at the door,
/// and its retries ride through detection: a kOstDown rejection first, then
/// a kStaleMap bounce against the undetected epoch, a map refresh, and a
/// clean completion on the shrunk pool — all inside one op.
TEST(ClusterProtocol, WriteInsideDetectionWindowFailsThenRecovers) {
  auto config = cluster_pfs(2, pfs::PlacementMode::kRendezvousHash, ms(300.0));
  enable_tracking(config);
  config.retry.max_attempts = 8;
  config.retry.base_backoff = ms(2.0);
  config.faults.ost_down(1, ms(50.0), ms(200.0));
  const pfs::StripeLayout layout{Bytes::from_kib(64), 2, 0, 2};

  sim::Engine engine{11};
  pfs::PfsModel model{engine, config};
  std::optional<pfs::MetaResult> created;
  std::optional<pfs::IoResult> healthy, windowed;
  engine.schedule_at(SimTime::zero(), [&] {
    model.meta(0, pfs::MetaOp::kCreate, "/f",
               [&](pfs::MetaResult r) { created = r; }, layout);
  });
  engine.schedule_at(ms(5.0), [&] {
    model.io(0, "/f", layout, 0, Bytes::from_kib(128), true,
             [&](pfs::IoResult r) { healthy = r; });
  });
  engine.schedule_at(ms(55.0), [&] {
    model.io(0, "/f", layout, Bytes::from_kib(128).count(), Bytes::from_kib(128), true,
             [&](pfs::IoResult r) { windowed = r; });
  });
  engine.run();
  engine.assert_drained();
  model.assert_quiescent();  // F2 + F3 + F4 all hold through the window

  ASSERT_TRUE(created.has_value());
  EXPECT_TRUE(created->ok());
  ASSERT_TRUE(healthy.has_value());
  EXPECT_TRUE(healthy->ok);
  EXPECT_EQ(healthy->attempts, 1u);
  ASSERT_TRUE(windowed.has_value());
  EXPECT_TRUE(windowed->ok) << "write could not ride through detection";
  EXPECT_GE(windowed->attempts, 2u);

  const pfs::ResilienceStats& stats = model.resilience_stats();
  EXPECT_GE(stats.retries, 1u);            // kOstDown rejections inside the window
  EXPECT_GE(stats.stale_map_retries, 1u);  // the bounce once the epoch moved
  EXPECT_GE(stats.map_refreshes, 1u);
  EXPECT_EQ(stats.down_detections, 1u);
  EXPECT_EQ(stats.up_detections, 1u);
  EXPECT_GE(model.client_epoch(0), 2u);
  // The recovered OST owes exactly the windowed write's two stripes, which
  // the post-recovery epoch marks and the migration rebuild settles.
  EXPECT_EQ(stats.migration_marked_bytes.count(), Bytes::from_kib(128).count());
  EXPECT_GE(stats.rebuilds_completed, 1u);
}

TEST(ClusterProtocol, StaleReadAfterJoinBouncesRefreshesAndSucceeds) {
  auto config = cluster_pfs(3, pfs::PlacementMode::kRendezvousHash, ms(200.0));
  enable_tracking(config);
  config.retry.max_attempts = 4;
  config.retry.base_backoff = ms(1.0);
  config.cluster.initial_absent = {2};
  config.cluster.join(2, ms(40.0));
  const pfs::StripeLayout layout{Bytes::from_kib(64), 2, 0, 2};

  sim::Engine engine{13};
  pfs::PfsModel model{engine, config};
  std::optional<pfs::IoResult> wrote;
  std::vector<pfs::IoResult> reads;
  engine.schedule_at(SimTime::zero(), [&] {
    model.meta(0, pfs::MetaOp::kCreate, "/data", [](pfs::MetaResult) {}, layout);
  });
  engine.schedule_at(ms(5.0), [&] {
    model.io(0, "/data", layout, 0, Bytes::from_kib(512), true,
             [&](pfs::IoResult r) { wrote = r; });
  });
  engine.schedule_at(ms(100.0), [&] {
    for (std::uint64_t stripe = 0; stripe < 8; ++stripe) {
      model.io(0, "/data", layout, stripe * Bytes::from_kib(64).count(), Bytes::from_kib(64),
               false, [&](pfs::IoResult r) { reads.push_back(r); });
    }
  });
  engine.run();
  engine.assert_drained();
  model.assert_quiescent();

  ASSERT_TRUE(wrote.has_value());
  EXPECT_TRUE(wrote->ok);
  ASSERT_EQ(reads.size(), 8u);
  for (const auto& r : reads) EXPECT_TRUE(r.ok);

  // The join must have moved at least one written stripe onto the new OST
  // (otherwise this test proves nothing — guarded, not assumed).
  ASSERT_EQ(model.cluster_map_history().size(), 2u);
  const Bytes expected = expected_migration(
      model.cluster_map_history()[0], model.cluster_map_history()[1],
      config.cluster.placement, layout, {"/data"}, 8);
  ASSERT_GT(expected.count(), 0u);
  const pfs::ResilienceStats& stats = model.resilience_stats();
  EXPECT_EQ(stats.migration_marked_bytes.count(), expected.count());
  // Readers held the pre-join epoch: the moved stripes bounce with
  // kStaleMap, refresh, and complete on the new map.
  EXPECT_GE(stats.stale_map_retries, 1u);
  EXPECT_GE(stats.map_refreshes, 1u);
  EXPECT_EQ(model.client_epoch(0), 2u);
  EXPECT_EQ(stats.down_detections, 0u);  // a join is not weather
}

// ------------------------------------------------------------ migration

TEST(ClusterMigration, HrwVolumeMatchesPlacementDiffAndBeatsRoundRobin) {
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 2};
  const std::vector<std::string> paths = {"/m-a", "/m-b", "/m-c", "/m-d"};
  const auto run_mode = [&](pfs::PlacementMode mode) {
    auto config = cluster_pfs(6, mode, ms(400.0));
    enable_tracking(config);
    config.retry.max_attempts = 4;
    config.retry.base_backoff = ms(1.0);
    // Drain OST 0: every round-robin pool slot shifts by one (the worst-case
    // reshuffle), while HRW still moves only the stripes OST 0 was winning.
    config.cluster.drain(0, ms(60.0)).decommission(0, ms(250.0));

    sim::Engine engine{17};
    pfs::PfsModel model{engine, config};
    std::vector<pfs::IoResult> writes, reads;
    engine.schedule_at(SimTime::zero(), [&] {
      for (const auto& path : paths) {
        model.meta(0, pfs::MetaOp::kCreate, path, [](pfs::MetaResult) {}, layout);
      }
    });
    engine.schedule_at(ms(5.0), [&] {
      for (const auto& path : paths) {
        model.io(0, path, layout, 0, Bytes::from_kib(256), true,
                 [&](pfs::IoResult r) { writes.push_back(r); });
      }
    });
    engine.schedule_at(ms(350.0), [&] {
      for (const auto& path : paths) {
        for (std::uint64_t stripe = 0; stripe < 4; ++stripe) {
          model.io(0, path, layout, stripe * Bytes::from_kib(64).count(), Bytes::from_kib(64),
                   false, [&](pfs::IoResult r) { reads.push_back(r); });
        }
      }
    });
    engine.run();
    engine.assert_drained();
    // F4 with the drained OST fully decommissioned: every acked byte is
    // still readable from the surviving placement.
    model.assert_quiescent();

    EXPECT_EQ(writes.size(), paths.size());
    for (const auto& w : writes) EXPECT_TRUE(w.ok);
    EXPECT_EQ(reads.size(), paths.size() * 4);
    for (const auto& r : reads) EXPECT_TRUE(r.ok);

    // Epochs: initial, drain, decommission. The decommission changes no
    // placement (a draining OST already left the pool), so the only marks
    // come from the drain epoch — and must equal the pure placement diff.
    const auto& history = model.cluster_map_history();
    EXPECT_EQ(history.size(), 3u);
    const Bytes expected =
        expected_migration(history[0], history[1], mode, layout, paths, 4);
    EXPECT_EQ(model.resilience_stats().migration_marked_bytes.count(), expected.count())
        << pfs::to_string(mode);
    EXPECT_EQ(model.cluster_map().state(0), pfs::OstState::kDecommissioned);
    return model.resilience_stats().migration_marked_bytes;
  };

  const Bytes hrw = run_mode(pfs::PlacementMode::kRendezvousHash);
  const Bytes rr = run_mode(pfs::PlacementMode::kRoundRobin);
  EXPECT_GT(hrw.count(), 0u);
  // The tentpole's migration-volume invariant: rendezvous hashing moves only
  // the drained OST's share while round-robin reshuffles the file body.
  EXPECT_LT(hrw.count(), rr.count());
}

// ------------------------------------------------------------ invariant F4

TEST(ClusterF4, AckedDataReadableAcrossJoinDrainCrashDecommission) {
  auto config = cluster_pfs(5, pfs::PlacementMode::kRendezvousHash, ms(400.0));
  enable_tracking(config);
  config.retry.max_attempts = 6;
  config.retry.base_backoff = ms(2.0);
  config.cluster.initial_absent = {4};
  config.cluster.join(4, ms(40.0)).drain(0, ms(80.0)).decommission(0, ms(250.0));
  config.faults.ost_down(1, ms(120.0), ms(200.0));
  const pfs::StripeLayout layout{Bytes::from_kib(64), 4, 0, 2};
  const std::vector<std::string> paths = {"/ck-a", "/ck-b", "/ck-c"};

  sim::Engine engine{19};
  pfs::PfsModel model{engine, config};
  std::vector<pfs::IoResult> writes, reads;
  engine.schedule_at(SimTime::zero(), [&] {
    for (const auto& path : paths) {
      model.meta(0, pfs::MetaOp::kCreate, path, [](pfs::MetaResult) {}, layout);
    }
  });
  engine.schedule_at(ms(5.0), [&] {
    for (const auto& path : paths) {
      model.io(0, path, layout, 0, Bytes::from_kib(256), true,
               [&](pfs::IoResult r) { writes.push_back(r); });
    }
  });
  engine.schedule_at(ms(350.0), [&] {
    for (const auto& path : paths) {
      for (std::uint64_t stripe = 0; stripe < 4; ++stripe) {
        model.io(0, path, layout, stripe * Bytes::from_kib(64).count(), Bytes::from_kib(64),
                 false, [&](pfs::IoResult r) { reads.push_back(r); });
      }
    }
  });
  engine.run();
  engine.assert_drained();
  // The F4 acceptance walk: data written before any churn, then a live
  // join, a drain, an undetected-then-detected crash with recovery, and a
  // decommission of the drained OST — every acked byte must still be held
  // by a serving OST under the final map.
  model.assert_quiescent();

  EXPECT_EQ(writes.size(), paths.size());
  for (const auto& w : writes) EXPECT_TRUE(w.ok);
  EXPECT_EQ(reads.size(), paths.size() * 4);
  for (const auto& r : reads) EXPECT_TRUE(r.ok);

  // Six epochs: initial, join, drain, detected-down, detected-up,
  // decommission.
  EXPECT_EQ(model.cluster_map().epoch(), 6u);
  EXPECT_EQ(model.cluster_map_history().size(), 6u);
  EXPECT_EQ(model.cluster_map().state(0), pfs::OstState::kDecommissioned);
  EXPECT_EQ(model.cluster_map().state(1), pfs::OstState::kUp);
  EXPECT_EQ(model.cluster_map().state(4), pfs::OstState::kUp);

  const pfs::ResilienceStats& stats = model.resilience_stats();
  EXPECT_EQ(stats.down_detections, 1u);
  EXPECT_EQ(stats.up_detections, 1u);
  EXPECT_GT(stats.migration_marked_bytes.count(), 0u);
  EXPECT_GE(stats.rebuilds_completed, 1u);
  // The churned placements differ from the readers' initial epoch for at
  // least one stripe, so the stale-map protocol must have fired.
  std::uint64_t moved = 0;
  for (const auto& path : paths) {
    const std::uint64_t key = pfs::file_placement_key(path);
    for (std::uint64_t stripe = 0; stripe < 4; ++stripe) {
      const auto t1 = pfs::placement_targets(model.cluster_map_history()[0],
                                             config.cluster.placement, layout, key, stripe, 2);
      const auto t6 = pfs::placement_targets(model.cluster_map(), config.cluster.placement,
                                             layout, key, stripe, 2);
      if (t1 != t6) ++moved;
    }
  }
  ASSERT_GT(moved, 0u);
  EXPECT_GE(stats.stale_map_retries, 1u);
  EXPECT_GE(stats.map_refreshes, 1u);
}

}  // namespace
}  // namespace pio
