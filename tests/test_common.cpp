// Unit tests for src/common: types, RNG, histograms, intervals, formatting,
// record I/O.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/format.hpp"
#include "common/histogram.hpp"
#include "common/interval_set.hpp"
#include "common/record_io.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace pio {
namespace {

using namespace pio::literals;

TEST(SimTimeTest, ArithmeticAndConversions) {
  const SimTime t = 1500_us;
  EXPECT_EQ(t.ns(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_EQ((t + 500_us).ms(), 2.0);
  EXPECT_EQ((t - 500_us).ms(), 1.0);
  EXPECT_EQ((t * 2).ns(), 3'000'000);
  EXPECT_EQ((t / 3).ns(), 500'000);
  EXPECT_LT(1_ms, 1_s);
  EXPECT_EQ(SimTime::from_sec(2.5).ns(), 2'500'000'000LL);
}

TEST(BytesTest, ArithmeticAndConversions) {
  const Bytes b = 3_MiB;
  EXPECT_EQ(b.count(), 3ULL * 1024 * 1024);
  EXPECT_DOUBLE_EQ(b.mib(), 3.0);
  EXPECT_EQ((b + 1_MiB).mib(), 4.0);
  EXPECT_EQ((b - 1_MiB).mib(), 2.0);
  EXPECT_EQ((b * 2).mib(), 6.0);
  EXPECT_EQ(b / 3, 1_MiB);
  EXPECT_EQ(5_KiB % 2_KiB, 1_KiB);
}

TEST(BytesTest, SubtractionUnderflowThrows) {
  EXPECT_THROW((void)(1_KiB - 2_KiB), std::underflow_error);
}

TEST(BandwidthTest, TransferTime) {
  const auto bw = Bandwidth::from_mib_per_sec(100.0);
  EXPECT_NEAR(bw.transfer_time(100_MiB).sec(), 1.0, 1e-9);  // piolint: allow(T1) NEAR tolerance
  EXPECT_NEAR(bw.transfer_time(50_MiB).ms(), 500.0, 1e-6);  // piolint: allow(T1) NEAR tolerance
  EXPECT_THROW((void)Bandwidth{0.0}.transfer_time(1_KiB), std::domain_error);
}

TEST(BandwidthTest, ObservedBandwidth) {
  EXPECT_NEAR(observed_bandwidth(100_MiB, 1_s).mib_per_sec(), 100.0, 1e-9);
  EXPECT_EQ(observed_bandwidth(1_MiB, SimTime::zero()).bytes_per_sec(), 0.0);
}

TEST(RngTest, DeterministicByKey) {
  Rng a{42, 7};
  Rng b{42, 7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, StreamsAreIndependent) {
  Rng a{42, 0};
  Rng b{42, 1};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SubstreamIsDeterministic) {
  const Rng parent{9, 3};
  Rng c1 = parent.substream(5);
  Rng c2 = parent.substream(5);
  Rng c3 = parent.substream(6);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(RngTest, UniformRanges) {
  Rng rng{1, 0};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto k = rng.next_below(17);
    EXPECT_LT(k, 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW((void)rng.next_below(0), std::domain_error);
}

TEST(RngTest, DistributionMeansAreSane) {
  Rng rng{2, 0};
  double esum = 0.0;
  double nsum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    esum += rng.exponential(4.0);
    nsum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(esum / kN, 4.0, 0.15);
  EXPECT_NEAR(nsum / kN, 10.0, 0.1);
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng{3, 0};
  std::uint64_t low = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const auto k = rng.zipf(100, 1.2);
    ASSERT_LT(k, 100u);
    if (k < 10) ++low;
  }
  // With alpha=1.2 the first 10 ranks must dominate.
  EXPECT_GT(low, kN / 2);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng{4, 0};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::multiset<int> sv(v.begin(), v.end());
  std::multiset<int> sw(w.begin(), w.end());
  EXPECT_EQ(sv, sw);
}

TEST(Log2HistogramTest, BucketPlacement) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u);  // 2 and 3
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
}

TEST(Log2HistogramTest, MergeAndMean) {
  Log2Histogram a;
  Log2Histogram b;
  a.add(8, 2);
  b.add(16, 2);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 12.0);
}

TEST(Log2HistogramTest, QuantileBucketFloor) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(4);
  for (int i = 0; i < 10; ++i) h.add(1 << 20);
  EXPECT_EQ(h.quantile_bucket_floor(0.5), 4u);
  EXPECT_EQ(h.quantile_bucket_floor(0.99), 1u << 20);
}

TEST(LinearHistogramTest, BinningAndClamping) {
  LinearHistogram h{0.0, 10.0, 5};
  h.add(0.5);
  h.add(9.9);
  h.add(-3.0);  // clamps to first bin
  h.add(42.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(IntervalSetTest, InsertCoalesces) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(10, 20);  // bridges the gap
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total_bytes(), 30u);
  EXPECT_TRUE(s.contains(0, 30));
}

TEST(IntervalSetTest, EraseSplits) {
  IntervalSet s;
  s.insert(0, 100);
  s.erase(40, 60);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.total_bytes(), 80u);
  EXPECT_TRUE(s.contains(0, 40));
  EXPECT_FALSE(s.contains(39, 41));
  const auto gaps = s.gaps(0, 100);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].lo, 40u);
  EXPECT_EQ(gaps[0].hi, 60u);
}

TEST(IntervalSetTest, CoveredBytes) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  EXPECT_EQ(s.covered_bytes(0, 50), 20u);
  EXPECT_EQ(s.covered_bytes(15, 35), 10u);
  EXPECT_EQ(s.covered_bytes(20, 30), 0u);
}

/// Property test: IntervalSet agrees with a reference std::set<uint64_t> of
/// individual covered offsets under a random op sequence.
TEST(IntervalSetTest, PropertyAgainstReferenceModel) {
  Rng rng{99, 0};
  IntervalSet s;
  std::set<std::uint64_t> reference;
  constexpr std::uint64_t kSpace = 300;
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t lo = rng.next_below(kSpace);
    const std::uint64_t hi = lo + rng.next_below(40);
    if (rng.chance(0.6)) {
      s.insert(lo, hi);
      for (std::uint64_t x = lo; x < hi; ++x) reference.insert(x);
    } else {
      s.erase(lo, hi);
      for (std::uint64_t x = lo; x < hi; ++x) reference.erase(x);
    }
    ASSERT_EQ(s.total_bytes(), reference.size()) << "step " << step;
    // Spot-check contains on a few random ranges.
    for (int probe = 0; probe < 5; ++probe) {
      const std::uint64_t plo = rng.next_below(kSpace);
      const std::uint64_t phi = plo + rng.next_below(20);
      bool ref_contains = true;
      for (std::uint64_t x = plo; x < phi; ++x) {
        if (!reference.contains(x)) {
          ref_contains = false;
          break;
        }
      }
      ASSERT_EQ(s.contains(plo, phi), ref_contains) << "step " << step;
    }
  }
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(Bytes{17}), "17 B");
  EXPECT_EQ(format_bytes(4_KiB), "4.00 KiB");
  EXPECT_EQ(format_bytes(Bytes{3ULL * 1024 * 1024 * 1024 / 2}), "1.50 GiB");
}

TEST(FormatTest, Time) {
  EXPECT_EQ(format_time(SimTime::from_ns(123)), "123 ns");
  EXPECT_EQ(format_time(12_us), "12.000 us");
  EXPECT_EQ(format_time(SimTime::from_sec(1.5)), "1.500 s");
}

TEST(FormatTest, ParseBytesRoundTrip) {
  EXPECT_EQ(parse_bytes("512"), Bytes{512});
  EXPECT_EQ(parse_bytes("64KiB"), 64_KiB);
  EXPECT_EQ(parse_bytes("4 MiB"), 4_MiB);
  EXPECT_EQ(parse_bytes("1gib"), 1_GiB);
  EXPECT_THROW((void)parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_bytes("12parsecs"), std::invalid_argument);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(RecordTest, JsonEscaping) {
  Record r{{"k", std::string("a\"b\nc")}};
  EXPECT_EQ(r.to_json_line(), R"({"k":"a\"b\nc"})");
}

TEST(RecordTest, SetOverwritesInPlace) {
  Record r{{"a", std::int64_t{1}}, {"b", std::int64_t{2}}};
  r.set("a", std::int64_t{5});
  EXPECT_EQ(std::get<std::int64_t>(r.at("a")), 5);
  EXPECT_EQ(r.fields().size(), 2u);
  EXPECT_THROW((void)r.at("zzz"), std::out_of_range);
}

TEST(CsvWriterTest, HeaderFromFirstRecord) {
  std::ostringstream out;
  CsvWriter w{out};
  w.write(Record{{"a", std::int64_t{1}}, {"b", std::string("x,y")}});
  w.write(Record{{"a", std::int64_t{2}}, {"b", std::string("plain")}});
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n2,plain\n");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok{7};
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err{Error{3, "nope"}};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, 3);
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_THROW((void)err.value(), std::runtime_error);
}

}  // namespace
}  // namespace pio
