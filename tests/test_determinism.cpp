// Determinism regression tests: the engine's contract (src/sim/engine.hpp)
// is that two runs with equal inputs produce byte-identical outputs. These
// tests hash the full ordered event/trace stream of same-seed campaigns with
// FNV-1a and require identical digests — the property every replay-fidelity
// and extrapolation result in the paper rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>

#include "driver/sim_driver.hpp"
#include "eval/campaign.hpp"
#include "fault/injector.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

namespace pio {
namespace {

// -------------------------------------------------------------- FNV-1a 64
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffULL;
      hash_ *= kFnvPrime;
    }
  }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kFnvPrime;
    }
    mix(s.size());
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

std::uint64_t hash_trace(const trace::Trace& trace) {
  Fnv1a h;
  for (const auto& e : trace.events()) {
    h.mix(static_cast<std::uint64_t>(e.layer));
    h.mix(static_cast<std::uint64_t>(e.op));
    h.mix(static_cast<std::uint64_t>(e.rank));
    h.mix(e.path);
    h.mix(e.offset);
    h.mix(e.size);
    h.mix(static_cast<std::uint64_t>(e.start.ns()));
    h.mix(static_cast<std::uint64_t>(e.end.ns()));
    h.mix(e.ok ? 1u : 0u);
  }
  return h.digest();
}

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

/// One full simulated campaign: a shuffled DLIO epoch (exercises Rng-driven
/// sample order) traced end to end. Returns the trace digest.
std::uint64_t run_campaign(std::uint64_t engine_seed, std::uint64_t workload_seed) {
  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, small_pfs()};
  driver::ExecutionDrivenSimulator sim{engine, model};
  workload::DlioConfig config;
  config.ranks = 4;
  config.samples = 512;
  config.samples_per_file = 128;
  config.batch_size = 16;
  config.shuffle = true;
  config.seed = workload_seed;
  trace::Tracer tracer;
  const auto result = sim.run(*workload::dlio_like(config), &tracer);
  engine.assert_drained();
  Fnv1a h;
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(result.ops);
  h.mix(engine.events_executed());
  return h.digest();
}

TEST(DeterminismRegression, SameSeedCampaignsHashIdentical) {
  const std::uint64_t first = run_campaign(7, 42);
  const std::uint64_t second = run_campaign(7, 42);
  EXPECT_EQ(first, second) << "same-seed campaign diverged: determinism contract broken";
}

TEST(DeterminismRegression, DifferentSeedsDiverge) {
  // Not a hard guarantee (hashes can collide) but with a shuffled workload a
  // seed change that *doesn't* move the trace means dead Rng plumbing.
  EXPECT_NE(run_campaign(7, 42), run_campaign(7, 43));
}

TEST(DeterminismRegression, EngineEventOrderIsReproducible) {
  auto run_engine = [](std::uint64_t seed) {
    sim::Engine engine{seed};
    Rng jitter = engine.rng_stream(1);
    Fnv1a h;
    // A self-rescheduling cascade with random delays plus same-time events:
    // ties must fire in insertion order, draws must replay exactly.
    for (int i = 0; i < 8; ++i) {
      // piolint: allow(C2) — engine is drained by run() in this same scope.
      engine.schedule_at(SimTime::from_ns(100), [&h, i] { h.mix(static_cast<std::uint64_t>(i)); });
    }
    std::function<void()> cascade = [&] {
      h.mix(static_cast<std::uint64_t>(engine.now().ns()));
      if (engine.events_executed() < 500) {
        engine.schedule_after(SimTime::from_ns(jitter.uniform_int(0, 1000)), cascade);
      }
    };
    engine.schedule_after(SimTime::zero(), cascade);
    engine.run();
    engine.assert_drained();
    h.mix(engine.events_executed());
    return h.digest();
  };
  EXPECT_EQ(run_engine(99), run_engine(99));
}

/// A faulted, resilient campaign: scripted OST outage + straggler on top of
/// an injector-generated schedule, retries with jittered backoff, timeouts
/// and failover all active. Every one of those draws from engine-owned Rng
/// streams, so the digest must replay exactly for equal seeds.
std::uint64_t run_fault_campaign(std::uint64_t engine_seed) {
  auto config = small_pfs();
  config.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0))
      .ost_straggler(2, SimTime::from_ms(1.0), SimTime::from_ms(30.0), 5.0);
  // Rates are high enough that several stochastic events land inside the
  // run's ~tens-of-ms window — a seed change must visibly move the trace.
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 60.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  injector.ost_straggler_rate_hz = 60.0;
  injector.ost_straggler_mean = SimTime::from_ms(10.0);
  injector.storage_brownout_rate_hz = 30.0;
  injector.storage_brownout_mean = SimTime::from_ms(5.0);
  injector.mds_slowdown_rate_hz = 30.0;
  injector.mds_slowdown_mean = SimTime::from_ms(5.0);
  config.fault_injector = injector;
  config.retry.max_attempts = 3;
  config.retry.op_timeout = SimTime::from_ms(40.0);
  config.retry.failover = true;

  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, config};
  driver::ExecutionDrivenSimulator sim{engine, model};
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  trace::Tracer tracer;
  const auto result = sim.run(*workload::ior_like(ior), &tracer);
  engine.assert_drained();
  model.assert_quiescent();
  Fnv1a h;
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(result.failed_ops);
  h.mix(result.retries);
  h.mix(result.timeouts);
  h.mix(result.giveups);
  h.mix(result.failovers);
  h.mix(engine.events_executed());
  return h.digest();
}

/// An overload campaign: the fault weather of run_fault_campaign with the
/// whole overload-control stack armed — CoDel shedding on bounded queues,
/// token-bucket retry budget, per-OST breakers whose open-window jitter
/// draws from kBreakerRngStream, adaptive timeouts, end-to-end deadlines.
/// The digest folds in every overload counter and the server-side
/// rejected/shed totals, so a breaker or shed decision drawing outside the
/// engine's streams diverges immediately on a same-seed pair.
std::uint64_t run_overload_campaign(std::uint64_t engine_seed) {
  auto config = small_pfs();
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 60.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  injector.ost_straggler_rate_hz = 60.0;
  injector.ost_straggler_mean = SimTime::from_ms(10.0);
  config.fault_injector = injector;
  config.admission.policy = pfs::AdmissionPolicy::kCodelShed;
  config.admission.shed_target = SimTime::from_ms(2.0);
  config.retry.max_attempts = 4;
  config.retry.adaptive_timeout = true;
  config.retry.initial_timeout = SimTime::from_ms(20.0);
  config.retry.op_deadline = SimTime::from_ms(120.0);
  config.retry.retry_budget = true;
  config.retry.budget_ratio = 0.5;
  config.retry.breaker = true;
  config.retry.breaker_threshold = 3;
  config.retry.breaker_open_base = SimTime::from_ms(10.0);

  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, config};
  driver::ExecutionDrivenSimulator sim{engine, model};
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  trace::Tracer tracer;
  const auto result = sim.run(*workload::ior_like(ior), &tracer);
  engine.assert_drained();
  model.assert_quiescent();
  const auto& res = model.resilience_stats();
  const auto server = model.server_overload_totals();
  Fnv1a h;
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(result.failed_ops);
  h.mix(result.retries);
  h.mix(res.overload_rejections);
  h.mix(res.budget_spent);
  h.mix(res.budget_denied);
  h.mix(res.breaker_opens);
  h.mix(res.breaker_probes);
  h.mix(res.breaker_fast_fails);
  h.mix(res.deadline_giveups);
  h.mix(server.rejected);
  h.mix(server.shed);
  h.mix(engine.events_executed());
  return h.digest();
}

TEST(DeterminismRegression, SameSeedOverloadCampaignsHashIdentical) {
  const std::uint64_t first = run_overload_campaign(31);
  const std::uint64_t second = run_overload_campaign(31);
  EXPECT_EQ(first, second) << "same-seed overload campaign diverged: a shed, "
                              "budget or breaker decision draws outside engine streams";
}

TEST(DeterminismRegression, DifferentSeedOverloadCampaignsDiverge) {
  EXPECT_NE(run_overload_campaign(31), run_overload_campaign(32));
}

/// A durability campaign: replicated layout, tracked contents, OST crashes
/// that force degraded reads, and an online rebuild whose pacing jitter
/// draws from the kRebuildRngStream engine substream. The digest covers the
/// trace, the durability counters, and the rebuilt byte total, so a resync
/// planner drawing from wall-clock state (piolint D1) shows up immediately.
std::uint64_t run_durability_campaign(std::uint64_t engine_seed) {
  auto config = small_pfs();
  config.durability.track_contents = true;
  config.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(128.0);
  config.mds.default_layout.replicas = 2;
  config.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0))
      .ost_down(0, SimTime::from_ms(20.0), SimTime::from_ms(26.0));
  config.retry.max_attempts = 2;
  config.retry.failover = true;

  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, config};
  // Resilience/durability events carry the jitter-paced rebuild timestamps,
  // so the digest is sensitive to the resync planner even when the rebuild
  // never contends with foreground traffic.
  Fnv1a h;
  model.set_resilience_observer([&h](const pfs::ResilienceRecord& r) {
    h.mix(static_cast<std::uint64_t>(r.kind));
    h.mix(static_cast<std::uint64_t>(r.at.ns()));
    h.mix(static_cast<std::uint64_t>(r.ost));
    h.mix(r.bytes.count());
  });
  driver::SimRunConfig run_config;
  run_config.layout.replicas = 2;  // the driver's create layout wins over the MDS default
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  trace::Tracer tracer;
  const auto result = sim.run(*workload::ior_like(ior), &tracer);
  engine.run();  // drain constructor-scheduled rebuild passes past the workload
  engine.assert_drained();
  model.assert_quiescent();
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(model.resilience_stats().degraded_reads);
  h.mix(model.resilience_stats().rebuilds_completed);
  h.mix(model.resilience_stats().rebuilt_bytes.count());
  h.mix(model.resilience_stats().data_lost_ops);
  h.mix(engine.events_executed());
  return h.digest();
}

TEST(DeterminismRegression, SameSeedDurabilityCampaignsHashIdentical) {
  const std::uint64_t first = run_durability_campaign(21);
  const std::uint64_t second = run_durability_campaign(21);
  EXPECT_EQ(first, second) << "same-seed durability campaign diverged: rebuild "
                              "pacing is drawing outside engine streams";
}

TEST(DeterminismRegression, DifferentSeedDurabilityCampaignsDiverge) {
  EXPECT_NE(run_durability_campaign(21), run_durability_campaign(22));
}

/// A membership-churn campaign: epoch-versioned cluster map with rendezvous
/// placement, a scripted drain, and an OST crash detected through jittered
/// heartbeats (kHeartbeatRngStream) whose migration resync paces on
/// kDrainRngStream. The digest covers the trace, every membership counter,
/// and the final epoch, so a detector or migration planner drawing outside
/// engine streams diverges immediately (extends the C-12 oracle).
std::uint64_t run_membership_campaign(std::uint64_t engine_seed) {
  auto config = small_pfs();
  config.durability.track_contents = true;
  config.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(128.0);
  config.mds.default_layout.replicas = 2;
  config.cluster.enabled = true;
  config.cluster.placement = pfs::PlacementMode::kRendezvousHash;
  config.cluster.heartbeat_interval = SimTime::from_ms(2.0);
  config.cluster.heartbeat_grace = 2;
  config.cluster.horizon = SimTime::from_ms(80.0);
  config.cluster.drain(3, SimTime::from_ms(10.0));
  config.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0));
  config.retry.max_attempts = 4;
  config.retry.base_backoff = SimTime::from_ms(1.0);

  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, config};
  // Detection, stale-map and migration events carry heartbeat-jittered
  // timestamps; mixing them makes the digest sensitive to the whole
  // membership machinery, not just the foreground traffic.
  Fnv1a h;
  model.set_resilience_observer([&h](const pfs::ResilienceRecord& r) {
    h.mix(static_cast<std::uint64_t>(r.kind));
    h.mix(static_cast<std::uint64_t>(r.at.ns()));
    h.mix(static_cast<std::uint64_t>(r.ost));
    h.mix(r.bytes.count());
  });
  driver::SimRunConfig run_config;
  run_config.layout.replicas = 2;  // the driver's create layout wins over the MDS default
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  trace::Tracer tracer;
  const auto result = sim.run(*workload::ior_like(ior), &tracer);
  engine.run();  // drain migration resync passes past the workload
  engine.assert_drained();
  model.assert_quiescent();
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(model.resilience_stats().stale_map_retries);
  h.mix(model.resilience_stats().map_refreshes);
  h.mix(model.resilience_stats().down_detections);
  h.mix(model.resilience_stats().up_detections);
  h.mix(model.resilience_stats().migration_marked_bytes.count());
  h.mix(model.cluster_map().epoch());
  h.mix(engine.events_executed());
  return h.digest();
}

TEST(DeterminismRegression, SameSeedMembershipCampaignsHashIdentical) {
  const std::uint64_t first = run_membership_campaign(41);
  const std::uint64_t second = run_membership_campaign(41);
  EXPECT_EQ(first, second) << "same-seed membership campaign diverged: heartbeat or "
                              "migration pacing is drawing outside engine streams";
}

TEST(DeterminismRegression, DifferentSeedMembershipCampaignsDiverge) {
  EXPECT_NE(run_membership_campaign(41), run_membership_campaign(42));
}

/// A cached campaign: shuffled DLIO epochs behind the client cache tier
/// (write-back, 2Q replacement, epoch-aware warming on kWarmRngStream). The
/// digest covers the trace — kCache annotations included — plus every cache
/// counter, so a nondeterministic eviction clock or warm order (piolint D1)
/// moves it immediately.
std::uint64_t run_cached_campaign(std::uint64_t engine_seed, std::uint64_t workload_seed) {
  sim::Engine engine{engine_seed};
  pfs::PfsModel model{engine, small_pfs()};
  driver::SimRunConfig run_config;
  run_config.cache.enabled = true;
  run_config.cache.scope = cache::CacheScope::kShared;
  run_config.cache.policy = cache::EvictionPolicy::kTwoQ;
  run_config.cache.prefetch = cache::PrefetchMode::kEpoch;
  run_config.cache.capacity_pages = 96;  // below the dataset: evictions + warming
  run_config.cache.max_dirty_pages = 32;
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::DlioConfig config;
  config.ranks = 4;
  config.samples = 128;
  config.sample_size = Bytes::from_kib(64);
  config.samples_per_file = 32;
  config.batch_size = 8;
  config.epochs = 2;
  config.shuffle = true;
  config.seed = workload_seed;
  config.compute_per_batch = SimTime::zero();
  trace::Tracer tracer;
  const auto result = sim.run(*workload::dlio_like(config), &tracer);
  engine.assert_drained();
  Fnv1a h;
  h.mix(hash_trace(tracer.snapshot()));
  h.mix(static_cast<std::uint64_t>(result.makespan.ns()));
  h.mix(result.cache_hits);
  h.mix(result.cache_misses);
  h.mix(result.cache_evictions);
  h.mix(result.cache_prefetch_issued);
  h.mix(result.cache_prefetch_used);
  h.mix(result.cache_prefetch_wasted);
  h.mix(result.cache_writebacks);
  h.mix(result.cache_absorbed_writes);
  h.mix(result.cache_hit_bytes.count());
  h.mix(result.cache_miss_bytes.count());
  h.mix(result.cache_writeback_bytes.count());
  h.mix(engine.events_executed());
  return h.digest();
}

TEST(DeterminismRegression, SameSeedCachedCampaignsHashIdentical) {
  const std::uint64_t first = run_cached_campaign(31, 42);
  const std::uint64_t second = run_cached_campaign(31, 42);
  EXPECT_EQ(first, second) << "same-seed cached campaign diverged: cache "
                              "recency or warm order is drawing outside engine streams";
}

TEST(DeterminismRegression, DifferentSeedCachedCampaignsDiverge) {
  EXPECT_NE(run_cached_campaign(31, 42), run_cached_campaign(31, 43));
}

TEST(DeterminismRegression, SameSeedFaultCampaignsHashIdentical) {
  const std::uint64_t first = run_fault_campaign(13);
  const std::uint64_t second = run_fault_campaign(13);
  EXPECT_EQ(first, second) << "same-seed fault campaign diverged: injector or "
                              "retry jitter is drawing outside engine streams";
}

TEST(DeterminismRegression, DifferentSeedFaultCampaignsDiverge) {
  EXPECT_NE(run_fault_campaign(13), run_fault_campaign(14));
}

TEST(DeterminismRegression, FullEvaluationLoopIsReproducible) {
  auto run_loop = [] {
    eval::CampaignConfig config;
    config.testbed = small_pfs();
    config.model = small_pfs();
    config.model.disk_kind = pfs::DiskKind::kHdd;  // deliberately mis-calibrated model
    config.iterations = 2;
    config.seed = 11;
    workload::IorConfig ior;
    ior.ranks = 4;
    ior.block_size = Bytes::from_mib(2);
    ior.transfer_size = Bytes::from_mib(1);
    const auto workload = workload::ior_like(ior);
    eval::Campaign campaign{config};
    const auto result = campaign.run({workload.get()});
    Fnv1a h;
    for (const auto& iter : result.iterations) {
      for (const auto& point : iter.points) {
        h.mix(point.workload);
        h.mix(static_cast<std::uint64_t>(point.measured.ns()));
        h.mix(static_cast<std::uint64_t>(point.simulated_raw.ns()));
        h.mix(static_cast<std::uint64_t>(point.predicted.ns()));
      }
    }
    return h.digest();
  };
  EXPECT_EQ(run_loop(), run_loop());
}

}  // namespace
}  // namespace pio
