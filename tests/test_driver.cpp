// Integration tests for the simulation drivers and the measured-execution
// path: workloads land on the PFS model / VFS with correct accounting.
#include <gtest/gtest.h>

#include "driver/measured_runner.hpp"
#include "driver/sim_driver.hpp"
#include "trace/profiler.hpp"
#include "trace/tracer.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

namespace pio::driver {
namespace {

using namespace pio::literals;

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

TEST(ExecutionDrivenTest, IorRunsToCompletionWithFullAccounting) {
  sim::Engine engine;
  pfs::PfsModel model{engine, small_pfs()};
  ExecutionDrivenSimulator sim{engine, model};
  workload::IorConfig config;
  config.ranks = 4;
  config.block_size = 4_MiB;
  config.transfer_size = 1_MiB;
  const auto result = sim.run(*workload::ior_like(config));
  EXPECT_EQ(result.bytes_written, 16_MiB);
  EXPECT_EQ(result.failed_ops, 0u);
  EXPECT_GT(result.makespan, SimTime::zero());
  ASSERT_EQ(result.rank_finish.size(), 4u);
  for (const auto t : result.rank_finish) EXPECT_GT(t, SimTime::zero());
  // Bytes landed on the OSTs.
  Bytes on_osts = Bytes::zero();
  for (std::uint32_t i = 0; i < model.ost_count(); ++i) {
    on_osts += model.ost(i).stats().bytes_written;
  }
  EXPECT_EQ(on_osts, 16_MiB);
}

TEST(ExecutionDrivenTest, EmitsTraceWithVirtualTimestamps) {
  sim::Engine engine;
  pfs::PfsModel model{engine, small_pfs()};
  ExecutionDrivenSimulator sim{engine, model};
  trace::Tracer tracer;
  workload::IorConfig config;
  config.ranks = 2;
  config.block_size = 2_MiB;
  config.transfer_size = 1_MiB;
  const auto result = sim.run(*workload::ior_like(config), &tracer);
  const auto trace = tracer.snapshot();
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(trace.bytes_written(), 4_MiB);
  // Trace timestamps live on the simulated clock, bounded by the makespan.
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.end, e.start);
    EXPECT_LE(e.end.ns(), result.makespan.ns());
  }
}

TEST(ExecutionDrivenTest, ComputePhasesExtendMakespan) {
  auto run_with_compute = [](SimTime compute) {
    sim::Engine engine;
    pfs::PfsModel model{engine, small_pfs()};
    ExecutionDrivenSimulator sim{engine, model};
    workload::CheckpointConfig config;
    config.ranks = 2;
    config.checkpoint_per_rank = 1_MiB;
    config.transfer_size = 1_MiB;
    config.checkpoints = 2;
    config.compute_phase = compute;
    return sim.run(*workload::checkpoint_restart(config)).makespan;
  };
  const SimTime fast = run_with_compute(SimTime::zero());
  const SimTime slow = run_with_compute(1_s);
  // Two checkpoints of 1 s compute each.
  EXPECT_GT(slow - fast, SimTime::from_sec(1.9));
}

TEST(ExecutionDrivenTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine engine{99};
    pfs::PfsModel model{engine, small_pfs()};
    ExecutionDrivenSimulator sim{engine, model};
    workload::DlioConfig config;
    config.ranks = 4;
    config.samples = 64;
    config.samples_per_file = 16;
    config.sample_size = 64_KiB;
    config.compute_per_batch = SimTime::zero();
    return sim.run(*workload::dlio_like(config)).makespan.ns();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ExecutionDrivenTest, MoreRanksThanClientsAreMultiplexed) {
  sim::Engine engine;
  auto pfs_config = small_pfs();
  pfs_config.clients = 2;
  pfs::PfsModel model{engine, pfs_config};
  ExecutionDrivenSimulator sim{engine, model};
  workload::IorConfig config;
  config.ranks = 8;  // 4 ranks per client endpoint
  config.block_size = 1_MiB;
  config.transfer_size = 1_MiB;
  const auto result = sim.run(*workload::ior_like(config));
  EXPECT_EQ(result.bytes_written, 8_MiB);
  EXPECT_EQ(result.failed_ops, 0u);
}

TEST(ExecutionDrivenTest, MismatchedBarriersAreDiagnosed) {
  // Rank 0 hits a barrier; rank 1 exits immediately. The shrinking-
  // communicator rule releases rank 0 instead of deadlocking.
  std::vector<std::vector<workload::Op>> ops(2);
  ops[0].push_back(workload::Op::barrier());
  ops[0].push_back(workload::Op::compute(1_ms));
  const workload::VectorWorkload w{"asym", std::move(ops)};
  sim::Engine engine;
  pfs::PfsModel model{engine, small_pfs()};
  ExecutionDrivenSimulator sim{engine, model};
  const auto result = sim.run(w);
  EXPECT_EQ(result.ops, 2u);
}

TEST(ExecutionDrivenTest, MetadataWorkloadHitsTheMds) {
  sim::Engine engine;
  pfs::PfsModel model{engine, small_pfs()};
  ExecutionDrivenSimulator sim{engine, model};
  workload::MdtestConfig config;
  config.ranks = 4;
  config.files_per_rank = 8;
  const auto result = sim.run(*workload::mdtest_like(config));
  EXPECT_EQ(result.failed_ops, 0u);
  EXPECT_GT(model.mds().stats().ops_total, 4u * 8u * 3u);
  // All files were unlinked again: only the directories remain.
  EXPECT_EQ(model.mds().namespace_size(), 1u /*root*/ + 1u /*base*/ + 4u /*rank dirs*/);
}

TEST(MeasuredRunnerTest, WritesRealBytesAndTraces) {
  vfs::FileSystem fs;
  trace::Profiler profiler;
  workload::IorConfig config;
  config.ranks = 4;
  config.block_size = 1_MiB;
  config.transfer_size = 256_KiB;
  config.read_phase = true;
  const auto result = run_measured(fs, *workload::ior_like(config), &profiler);
  EXPECT_EQ(result.failed_ops, 0u);
  EXPECT_EQ(result.bytes_written, 4_MiB);
  EXPECT_EQ(result.bytes_read, 4_MiB);
  EXPECT_GT(result.wall_time, SimTime::zero());
  // The shared file really exists with the full size.
  EXPECT_EQ(fs.stat("/ior/testfile").value().size, 4_MiB);
  // The profiler observed the same volumes.
  const auto summary = profiler.snapshot().summarize();
  EXPECT_EQ(summary.bytes_written, 4_MiB);
  EXPECT_EQ(summary.bytes_read, 4_MiB);
  EXPECT_EQ(summary.ranks, 4u);
}

TEST(MeasuredRunnerTest, WrittenDataIsTheDeterministicPattern) {
  vfs::FileSystem fs;
  workload::IorConfig config;
  config.ranks = 1;
  config.block_size = 64_KiB;
  config.transfer_size = 64_KiB;
  (void)run_measured(fs, *workload::ior_like(config), nullptr);
  std::vector<std::byte> out(64 * 1024);
  ASSERT_TRUE(fs.pread("/ior/testfile", out, 0).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::byte>(i & 0xFF)) << "at " << i;
  }
}

TEST(MeasuredRunnerTest, MdtestLeavesCleanNamespace) {
  vfs::FileSystem fs;
  workload::MdtestConfig config;
  config.ranks = 4;
  config.files_per_rank = 16;
  const auto result = run_measured(fs, *workload::mdtest_like(config), nullptr);
  EXPECT_EQ(result.failed_ops, 0u);
  EXPECT_EQ(fs.file_count(), 0u);  // everything unlinked again
}

TEST(MeasuredRunnerTest, TraceTimesAreMonotonePerRank) {
  vfs::FileSystem fs;
  trace::Tracer tracer;
  workload::MdtestConfig config;
  config.ranks = 2;
  config.files_per_rank = 8;
  (void)run_measured(fs, *workload::mdtest_like(config), &tracer);
  const auto trace = tracer.snapshot();
  for (const auto rank : trace.ranks()) {
    const auto rank_trace = trace.rank(rank);
    for (std::size_t i = 1; i < rank_trace.size(); ++i) {
      EXPECT_GE(rank_trace.events()[i].start, rank_trace.events()[i - 1].start);
    }
  }
}

}  // namespace
}  // namespace pio::driver
