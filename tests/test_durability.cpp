// Durability & recovery layer tests: TokenMap/ledger bookkeeping, stripe
// replication fan-out, degraded reads, the R=1 acknowledged-data-loss hole
// (kDataLost + invariant F3), online OST rebuild under fault injection, and
// MDS journal/standby failover. Registered under the `durability` ctest
// label so CI runs the group in both the Release and sanitizer legs.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine/model and drain it in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "pfs/durability.hpp"
#include "pfs/mds.hpp"
#include "pfs/pfs.hpp"
#include "pfs/resilience.hpp"
#include "pfs/stripe.hpp"
#include "sim/engine.hpp"
#include "trace/server_stats.hpp"

namespace pio {
namespace {

using namespace pio::literals;
using fault::FaultPlan;
using pfs::DurabilityLedger;
using pfs::TokenMap;

SimTime ms(double v) { return SimTime::from_ms(v); }

// ----------------------------------------------------------------- TokenMap

TEST(TokenMapTest, AssignOverwriteAndSegments) {
  TokenMap map;
  EXPECT_TRUE(map.empty());
  map.assign(0, 100, 1);
  map.assign(40, 60, 2);  // punch a newer token into the middle
  const auto segs = map.segments(0, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].lo, 0u);
  EXPECT_EQ(segs[0].hi, 40u);
  EXPECT_EQ(segs[0].token, 1u);
  EXPECT_EQ(segs[1].lo, 40u);
  EXPECT_EQ(segs[1].hi, 60u);
  EXPECT_EQ(segs[1].token, 2u);
  EXPECT_EQ(segs[2].lo, 60u);
  EXPECT_EQ(segs[2].hi, 100u);
  EXPECT_EQ(segs[2].token, 1u);
  // Clipping.
  const auto clipped = map.segments(50, 70);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0].lo, 50u);
  EXPECT_EQ(clipped[0].hi, 60u);
}

TEST(TokenMapTest, HoldsRequiresContiguousExactCover) {
  TokenMap map;
  map.assign(0, 50, 3);
  map.assign(60, 100, 3);  // hole at [50, 60)
  EXPECT_TRUE(map.holds(0, 50, 3));
  EXPECT_TRUE(map.holds(60, 100, 3));
  EXPECT_FALSE(map.holds(0, 100, 3));  // hole breaks contiguity
  EXPECT_FALSE(map.holds(0, 50, 4));   // wrong token
  map.assign(50, 60, 3);
  EXPECT_TRUE(map.holds(0, 100, 3));
}

TEST(TokenMapTest, CoalescesAdjacentEqualTokenRuns) {
  TokenMap map;
  map.assign(0, 10, 5);
  map.assign(10, 20, 5);
  map.assign(20, 30, 5);
  const auto segs = map.segments(0, 100);
  ASSERT_EQ(segs.size(), 1u);  // one coalesced run, not three
  EXPECT_EQ(segs[0].lo, 0u);
  EXPECT_EQ(segs[0].hi, 30u);
}

// ---------------------------------------------------------- DurabilityLedger

TEST(DurabilityLedgerTest, ReadOkTracksAckedVsStored) {
  DurabilityLedger ledger;
  const auto token = ledger.next_token();
  EXPECT_NE(token, 0u);
  // Nothing acknowledged: every replica trivially serves (holes never
  // disqualify).
  EXPECT_TRUE(ledger.read_ok(1, 0, 0, 100));
  ledger.ack(1, 0, 100, token);
  EXPECT_FALSE(ledger.read_ok(1, 0, 0, 100));  // acked but never stored
  ledger.apply(1, 0, 0, 100, token);
  EXPECT_TRUE(ledger.read_ok(1, 0, 0, 100));
  EXPECT_FALSE(ledger.read_ok(1, 1, 0, 100));  // the other replica missed it
  // A newer acknowledged write makes the old copy stale.
  const auto newer = ledger.next_token();
  ledger.ack(1, 0, 100, newer);
  EXPECT_FALSE(ledger.read_ok(1, 0, 0, 100));
}

TEST(DurabilityLedgerTest, MissedRangesAreOwedUntilCopied) {
  DurabilityLedger ledger;
  const auto token = ledger.next_token();
  ledger.ack(7, 0, 1000, token);
  ledger.apply(7, 0, 0, 1000, token);
  ledger.mark_missed(1, 7, 0, 1000);
  EXPECT_EQ(ledger.dirty_bytes(1), Bytes{1000});
  const auto owed = ledger.dirty_snapshot(1);
  ASSERT_EQ(owed.size(), 1u);
  EXPECT_EQ(owed[0].file, 7u);
  EXPECT_EQ(owed[0].lo, 0u);
  EXPECT_EQ(owed[0].hi, 1000u);
  ledger.copy(7, 0, 1, 0, 1000);
  EXPECT_EQ(ledger.dirty_bytes(1), Bytes::zero());
  EXPECT_TRUE(ledger.read_ok(7, 1, 0, 1000));
}

// --------------------------------------------------------------- validation

TEST(DurabilityValidationTest, StripeLayoutRejectsBadReplicaCounts) {
  pfs::StripeLayout zero{1_MiB, 1, 0, 0};
  EXPECT_THROW((void)pfs::decompose(zero, 4, 0, 1_MiB), std::invalid_argument);
  pfs::StripeLayout too_many{1_MiB, 1, 0, 5};
  EXPECT_THROW((void)pfs::decompose(too_many, 4, 0, 1_MiB), std::invalid_argument);
}

TEST(DurabilityValidationTest, ReplicatedDefaultLayoutRequiresTracking) {
  sim::Engine engine;
  pfs::PfsConfig config;
  config.mds.default_layout.replicas = 2;
  EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
}

TEST(DurabilityValidationTest, TrackingIsIncompatibleWithBurstBuffers) {
  sim::Engine engine;
  pfs::PfsConfig config;
  config.durability.track_contents = true;
  config.bb_placement = pfs::BbPlacement::kPerIoNode;
  EXPECT_THROW(pfs::PfsModel(engine, config), std::invalid_argument);
}

TEST(DurabilityValidationTest, IoRejectsReplicatedLayoutWithoutTracking) {
  sim::Engine engine;
  pfs::PfsConfig config;
  pfs::PfsModel model{engine, config};
  pfs::StripeLayout replicated{1_MiB, 1, 0, 2};
  EXPECT_THROW(
      model.io(0, "/f", replicated, 0, 1_MiB, true, [](pfs::IoResult) {}),
      std::invalid_argument);
}

// --------------------------------------------------- replicated PFS fixture

/// 2 clients / 1 ION / `osts` OSTs on SSDs, durability tracking on, every
/// file striped over one OST (home 0) with `replicas` copies.
pfs::PfsConfig durable_pfs(std::uint32_t osts, std::uint32_t replicas) {
  pfs::PfsConfig config;
  config.clients = 2;
  config.io_nodes = 1;
  config.osts = osts;
  config.disk_kind = pfs::DiskKind::kSsd;
  config.mds.default_layout = pfs::StripeLayout{1_MiB, 1, 0, replicas};
  config.durability.track_contents = true;
  config.durability.rebuild_jitter_fraction = 0.0;
  return config;
}

/// Schedule a create at `t` (layout comes from the MDS default).
void create_at(pfs::PfsModel& model, SimTime t, const std::string& path) {
  model.engine().schedule_at(t, [&model, path] {
    model.meta(0, pfs::MetaOp::kCreate, path, [](pfs::MetaResult r) {
      if (!r.ok()) throw std::runtime_error("test create failed");
    });
  });
}

/// Schedule an io() at `t`, recording the result.
void io_at(pfs::PfsModel& model, SimTime t, const std::string& path, std::uint64_t offset,
           Bytes size, bool is_write, pfs::IoResult& out) {
  model.engine().schedule_at(t, [&model, &out, path, offset, size, is_write] {
    const auto* inode = model.mds().find_inode(path);
    ASSERT_NE(inode, nullptr);
    model.io(0, path, inode->layout, offset, size, is_write,
             [&out](pfs::IoResult r) { out = r; });
  });
}

TEST(ReplicatedPfsTest, WriteFansOutToEveryReplica) {
  sim::Engine engine;
  pfs::PfsModel model{engine, durable_pfs(2, 2)};
  pfs::IoResult wrote;
  create_at(model, SimTime::zero(), "/f");
  io_at(model, ms(1), "/f", 0, 1_MiB, true, wrote);
  engine.run();
  EXPECT_TRUE(wrote.ok);
  EXPECT_EQ(model.ost(0).stats().bytes_written, 1_MiB);
  EXPECT_EQ(model.ost(1).stats().bytes_written, 1_MiB);
  const auto report = model.durability_report();
  EXPECT_EQ(report.acked, 1_MiB);
  EXPECT_EQ(report.lost, Bytes::zero());
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(ReplicatedPfsTest, DegradedReadMasksPrimaryOutage) {
  sim::Engine engine;
  auto config = durable_pfs(2, 2);
  // The primary (home) OST crashes after the write completes.
  config.faults.ost_down(0, ms(100), ms(400));
  pfs::PfsModel model{engine, config};
  pfs::IoResult wrote;
  pfs::IoResult read;
  create_at(model, SimTime::zero(), "/f");
  io_at(model, ms(1), "/f", 0, 1_MiB, true, wrote);
  io_at(model, ms(200), "/f", 0, 1_MiB, false, read);  // inside the outage
  engine.run();
  EXPECT_TRUE(wrote.ok);
  EXPECT_TRUE(read.ok);  // replica absorbed the fault
  const auto& stats = model.resilience_stats();
  EXPECT_GE(stats.degraded_reads, 1u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(stats.data_lost_ops, 0u);
  engine.assert_drained();
  model.assert_quiescent();
}

// The classic unreplicated durability hole: degraded-mode failover ships an
// acknowledged write to a substitute OST, the primary recovers (stale), and
// the read path — which only consults the replica set — cannot find the
// data. The op fails with kDataLost and invariant F3 trips.
TEST(ReplicatedPfsTest, UnreplicatedFailoverLosesAckedData) {
  sim::Engine engine;
  auto config = durable_pfs(2, 1);
  config.retry.failover = true;
  config.retry.max_attempts = 3;  // retries must NOT resurrect lost data
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(1.0));
  pfs::PfsModel model{engine, config};
  pfs::IoResult wrote;
  pfs::IoResult read;
  create_at(model, SimTime::zero(), "/f");
  io_at(model, ms(10), "/f", 0, 1_MiB, true, wrote);  // fails over to OST 1
  io_at(model, SimTime::from_sec(2.0), "/f", 0, 1_MiB, false, read);  // primary is back
  engine.run();
  EXPECT_TRUE(wrote.ok);  // acknowledged!
  EXPECT_GT(model.resilience_stats().failovers, 0u);
  EXPECT_FALSE(read.ok);
  EXPECT_EQ(read.error, pfs::IoError::kDataLost);
  EXPECT_EQ(read.attempts, 1u);  // kDataLost settles immediately, no retries
  EXPECT_EQ(model.resilience_stats().data_lost_ops, 1u);
  const auto report = model.durability_report();
  EXPECT_GT(report.lost.count(), 0u);
  EXPECT_GT(report.lost_ranges, 0u);
  engine.assert_drained();
  EXPECT_THROW(model.assert_quiescent(), std::logic_error);  // F3
}

// The replicated counterpart: a crash that takes out one replica is masked
// end to end — the write completes, the read-back verifies, rebuild re-copies
// the missed bytes onto the recovered OST, and F3 holds.
TEST(ReplicatedPfsTest, ReplicaMaskedCrashCompletesAndRebuilds) {
  sim::Engine engine;
  auto config = durable_pfs(2, 2);
  config.faults.ost_down(1, SimTime::zero(), SimTime::from_sec(2.0));
  config.faults.ost_down(0, SimTime::from_sec(4.0), SimTime::from_sec(6.0));
  pfs::PfsModel model{engine, config};
  pfs::IoResult wrote;
  pfs::IoResult read_during;
  pfs::IoResult read_after;
  create_at(model, SimTime::zero(), "/f");
  // Replica OST 1 is down: the write is acked with one live copy.
  io_at(model, ms(10), "/f", 0, 1_MiB, true, wrote);
  io_at(model, SimTime::from_sec(1.0), "/f", 0, 1_MiB, false, read_during);
  // After OST 1's rebuild, the *primary* crashes; this read can only succeed
  // if the resync actually made OST 1 current.
  io_at(model, SimTime::from_sec(5.0), "/f", 0, 1_MiB, false, read_after);
  engine.run();
  EXPECT_TRUE(wrote.ok);
  EXPECT_TRUE(read_during.ok);
  EXPECT_TRUE(read_after.ok);
  const auto& stats = model.resilience_stats();
  EXPECT_EQ(stats.rebuilds_started, 1u);
  EXPECT_EQ(stats.rebuilds_completed, 1u);
  EXPECT_EQ(stats.rebuilt_bytes, 1_MiB);
  EXPECT_GE(stats.degraded_reads, 1u);  // read_after came from OST 1
  EXPECT_EQ(stats.data_lost_ops, 0u);
  const auto status = model.rebuild_status(1);
  EXPECT_FALSE(status.active);
  EXPECT_EQ(status.total, 1_MiB);
  EXPECT_EQ(status.done, 1_MiB);
  const auto report = model.durability_report();
  EXPECT_EQ(report.acked, 1_MiB);
  EXPECT_EQ(report.lost, Bytes::zero());
  engine.assert_drained();
  model.assert_quiescent();  // F3 holds
}

TEST(RebuildTest, StatusReportsProgressAndEtaMidRebuild) {
  sim::Engine engine;
  auto config = durable_pfs(2, 2);
  config.faults.ost_down(1, SimTime::zero(), SimTime::from_sec(2.0));
  config.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(64.0);
  pfs::PfsModel model{engine, config};
  pfs::IoResult wrote;
  create_at(model, SimTime::zero(), "/f");
  io_at(model, ms(10), "/f", 0, 8_MiB, true, wrote);
  // Stop the clock shortly after the rebuild began: 8 MiB at 64 MiB/s takes
  // ~125 ms, so at +20 ms the resync must still be in flight.
  engine.run(SimTime::from_sec(2.0) + ms(20));
  const auto mid = model.rebuild_status(1);
  EXPECT_TRUE(mid.active);
  EXPECT_EQ(mid.total, 8_MiB);
  EXPECT_LT(mid.done.count(), mid.total.count());
  EXPECT_GT(mid.eta, SimTime::zero());
  engine.run();
  const auto final_status = model.rebuild_status(1);
  EXPECT_FALSE(final_status.active);
  EXPECT_EQ(final_status.done, 8_MiB);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(RebuildTest, BandwidthCapPacesTheResync) {
  // Same crash schedule under two rebuild caps: the slower cap must take
  // strictly longer between kRebuildStart and kRebuildDone.
  auto rebuild_duration = [](double cap_mib_per_sec) {
    sim::Engine engine;
    auto config = durable_pfs(2, 2);
    config.faults.ost_down(1, SimTime::zero(), SimTime::from_sec(2.0));
    config.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(cap_mib_per_sec);
    pfs::PfsModel model{engine, config};
    SimTime started = SimTime::zero();
    SimTime finished = SimTime::zero();
    model.set_resilience_observer([&](const pfs::ResilienceRecord& r) {
      if (r.kind == pfs::ResilienceEventKind::kRebuildStart) started = r.at;
      if (r.kind == pfs::ResilienceEventKind::kRebuildDone) finished = r.at;
    });
    pfs::IoResult wrote;
    create_at(model, SimTime::zero(), "/f");
    io_at(model, ms(10), "/f", 0, 8_MiB, true, wrote);
    engine.run();
    EXPECT_TRUE(wrote.ok);
    EXPECT_GT(finished, started);
    model.assert_quiescent();
    return finished - started;
  };
  const SimTime slow = rebuild_duration(64.0);
  const SimTime fast = rebuild_duration(1024.0);
  EXPECT_GT(slow, fast);
  // The slow resync is dominated by pacing: 8 MiB / 64 MiB/s = 125 ms.
  EXPECT_GE(slow, ms(100));
}

TEST(RebuildTest, RecoveryWithNothingOwedStartsNoRebuild) {
  sim::Engine engine;
  auto config = durable_pfs(2, 2);
  // The outage ends before any write happens: nothing to resync.
  config.faults.ost_down(1, SimTime::zero(), ms(5));
  pfs::PfsModel model{engine, config};
  pfs::IoResult wrote;
  create_at(model, ms(10), "/f");
  io_at(model, ms(20), "/f", 0, 1_MiB, true, wrote);
  engine.run();
  EXPECT_TRUE(wrote.ok);
  EXPECT_EQ(model.resilience_stats().rebuilds_started, 0u);
  EXPECT_FALSE(model.rebuild_status(1).active);
  engine.assert_drained();
  model.assert_quiescent();
}

// ------------------------------------------------------- MDS standby failover

TEST(MdsStandbyTest, StandbyBoundsTheOutageToDetectionPlusReplay) {
  sim::Engine engine;
  pfs::MdsConfig config;
  config.standby_failover = true;
  config.failover_detection = ms(5);
  config.replay_per_entry = SimTime::from_us(20.0);
  pfs::MetadataServer mds{engine, config};
  FaultPlan plan;
  plan.mds_down(ms(100), SimTime::from_sec(10.0));  // 9.9 s primary outage
  const fault::Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  // Build up a journal before the crash.
  for (int i = 0; i < 10; ++i) {
    mds.request(pfs::MetaOp::kCreate, "/f" + std::to_string(i), [](pfs::MetaResult) {});
  }
  engine.run();
  EXPECT_EQ(mds.journal_entries(), 10u);
  // A request that arrives after the crash but before the standby is ready
  // stalls for the takeover, then succeeds — it does NOT wait 9.9 s for the
  // primary.
  pfs::MetaResult result;
  SimTime completed = SimTime::zero();
  engine.schedule_at(ms(101), [&] {
    mds.request(pfs::MetaOp::kStat, "/f0", [&](pfs::MetaResult r) {
      result = std::move(r);
      completed = engine.now();
    });
  });
  engine.run();
  EXPECT_TRUE(result.ok());
  const SimTime ready = ms(100) + ms(5) + SimTime::from_us(20.0) * 10;
  EXPECT_GE(completed, ready);
  EXPECT_LT(completed, SimTime::from_sec(1.0));  // bounded stall, not an outage
  EXPECT_EQ(mds.stats().failover_stalls, 1u);
  EXPECT_EQ(mds.stats().standby_takeovers, 1u);
  EXPECT_EQ(mds.standby_ready(ms(200)), ready);
}

TEST(MdsStandbyTest, ReplayCostGrowsWithJournalSize) {
  auto ready_after = [](int creates) {
    sim::Engine engine;
    pfs::MdsConfig config;
    config.standby_failover = true;
    config.replay_per_entry = SimTime::from_us(50.0);
    pfs::MetadataServer mds{engine, config};
    FaultPlan plan;
    plan.mds_down(SimTime::from_sec(1.0), SimTime::from_sec(100.0));
    const fault::Timeline timeline{plan.events};
    mds.set_fault_timeline(&timeline);
    for (int i = 0; i < creates; ++i) {
      mds.request(pfs::MetaOp::kCreate, "/f" + std::to_string(i), [](pfs::MetaResult) {});
    }
    engine.run();
    return mds.standby_ready(SimTime::from_sec(2.0));
  };
  EXPECT_GT(ready_after(100), ready_after(5));
}

TEST(MdsStandbyTest, InterruptedMutationIsReplayedNotLost) {
  sim::Engine engine;
  pfs::MdsConfig config;
  config.standby_failover = true;
  config.failover_detection = ms(5);
  pfs::MetadataServer mds{engine, config};
  // create_cost is 250 us: a crash at 100 us catches the op in service.
  FaultPlan plan;
  plan.mds_down(SimTime::from_us(100.0), SimTime::from_sec(50.0));
  const fault::Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  pfs::MetaResult result;
  SimTime completed = SimTime::zero();
  mds.request(pfs::MetaOp::kCreate, "/f", [&](pfs::MetaResult r) {
    result = std::move(r);
    completed = engine.now();
  });
  engine.run();
  // Without a standby this op fails with kUnavailable at recovery (see
  // MdsFaultTest); with one, the RPC is replayed and succeeds at takeover.
  EXPECT_TRUE(result.ok());
  EXPECT_NE(mds.find_inode("/f"), nullptr);
  EXPECT_GE(completed, SimTime::from_us(100.0) + ms(5));
  EXPECT_LT(completed, SimTime::from_sec(1.0));
  EXPECT_EQ(mds.stats().failover_stalls, 1u);
}

TEST(MdsStandbyTest, FastPrimaryRecoveryClampsTheReplayStall) {
  sim::Engine engine;
  pfs::MdsConfig config;
  config.standby_failover = true;
  config.failover_detection = ms(50);  // slow standby...
  pfs::MetadataServer mds{engine, config};
  FaultPlan plan;
  plan.mds_down(SimTime::zero(), ms(10));  // ...but the primary is back in 10 ms
  const fault::Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  EXPECT_EQ(mds.standby_ready(ms(1)), ms(10));  // clamped to recovery
}

// --------------------------------------------------------------- monitoring

TEST(DurabilityMonitoringTest, CollectorBinsDegradedReadsAndRebuilds) {
  sim::Engine engine;
  auto config = durable_pfs(2, 2);
  config.faults.ost_down(1, SimTime::zero(), SimTime::from_sec(2.0));
  config.faults.ost_down(0, SimTime::from_sec(4.0), SimTime::from_sec(6.0));
  pfs::PfsModel model{engine, config};
  trace::ServerStatsCollector collector{ms(100)};
  collector.attach(model);
  pfs::IoResult wrote;
  pfs::IoResult read;
  create_at(model, SimTime::zero(), "/f");
  io_at(model, ms(10), "/f", 0, 1_MiB, true, wrote);
  io_at(model, SimTime::from_sec(5.0), "/f", 0, 1_MiB, false, read);
  engine.run();
  EXPECT_TRUE(read.ok);
  std::uint64_t degraded = 0;
  for (const auto& [window, sample] : collector.resilience_series()) {
    degraded += sample.degraded_reads;
  }
  EXPECT_GE(degraded, 1u);
  ASSERT_TRUE(collector.rebuild_series().contains(1));
  std::uint64_t started = 0, completed = 0;
  Bytes rebuilt = Bytes::zero();
  for (const auto& [window, sample] : collector.rebuild_series().at(1)) {
    started += sample.started;
    completed += sample.completed;
    rebuilt += sample.rebuilt;
  }
  EXPECT_EQ(started, 1u);
  EXPECT_EQ(completed, 1u);
  EXPECT_EQ(rebuilt, 1_MiB);
}

}  // namespace
}  // namespace pio
