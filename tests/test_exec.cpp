// pio::exec: the deterministic parallel-sweep layer (DESIGN.md §11).
//
// Two families of guarantees under test. First, the pool's own contract:
// results merge in submission order, exceptions propagate lowest-index
// first after every task has run, and nested submission is rejected at any
// thread count. Second, the campaign-level determinism requirement the
// whole layer exists to preserve: a Campaign's FNV digest — across plain,
// faulted, durability, and cached configurations — must be byte-identical
// at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "eval/campaign.hpp"
#include "exec/pool.hpp"
#include "fault/injector.hpp"
#include "pfs/pfs.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

namespace pio {
namespace {

// -------------------------------------------------------------- FNV-1a 64
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffULL;
      hash_ *= kFnvPrime;
    }
  }
  void mix(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kFnvPrime;
    }
    mix(s.size());
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

// ----------------------------------------------------------- pool contract

TEST(ExecPool, ResolveThreadsPrecedence) {
  ASSERT_EQ(::setenv("PIO_THREADS", "6", 1), 0);
  EXPECT_EQ(exec::resolve_threads(3), 3) << "explicit request beats the environment";
  EXPECT_EQ(exec::resolve_threads(0), 6) << "PIO_THREADS applies when unset";
  ASSERT_EQ(::setenv("PIO_THREADS", "garbage", 1), 0);
  EXPECT_EQ(exec::resolve_threads(0), 1) << "unparseable PIO_THREADS falls back to serial";
  ASSERT_EQ(::setenv("PIO_THREADS", "auto", 1), 0);
  EXPECT_GE(exec::resolve_threads(0), 1);
  ASSERT_EQ(::setenv("PIO_THREADS", "9999", 1), 0);
  EXPECT_EQ(exec::resolve_threads(0), 256) << "clamped to the sanity ceiling";
  ASSERT_EQ(::unsetenv("PIO_THREADS"), 0);
  EXPECT_EQ(exec::resolve_threads(0), 1) << "no knob at all means serial";
}

TEST(ExecPool, MapOrderedReturnsResultsInSubmissionOrder) {
  exec::Pool pool{4};
  // Later tasks are cheaper, so under real parallelism completion order is
  // roughly reversed — the merge order must not care.
  const auto results = pool.map_ordered(64, [](std::size_t i) {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t k = 0; k < (64 - i) * 1000; ++k) sink = sink + k;
    return i * i;
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ExecPool, EveryTaskRunsExactlyOnce) {
  exec::Pool pool{8};
  std::vector<std::atomic<int>> hits(100);
  pool.for_all(100, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ExecPool, LowestIndexExceptionWinsAfterAllTasksRan) {
  exec::Pool pool{4};
  std::atomic<int> ran{0};
  try {
    pool.for_all(16, [&ran](std::size_t i) {
      ++ran;
      if (i == 11) throw std::runtime_error("boom11");
      if (i == 3) throw std::runtime_error("boom3");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom3") << "propagation must pick the lowest submission index";
  }
  EXPECT_EQ(ran.load(), 16) << "an exception must not abandon the remaining tasks";
}

TEST(ExecPool, NestedSubmissionIsRejectedInParallel) {
  exec::Pool pool{4};
  EXPECT_THROW(pool.for_all(8, [&pool](std::size_t) { pool.for_all(1, [](std::size_t) {}); }),
               std::logic_error);
}

TEST(ExecPool, NestedSubmissionIsRejectedInSerialToo) {
  // The rejection must not depend on the thread count, or a sweep that
  // "works" serially would deadlock the moment PIO_THREADS goes up.
  exec::Pool pool{1};
  EXPECT_THROW(pool.for_all(2, [&pool](std::size_t) { pool.for_all(1, [](std::size_t) {}); }),
               std::logic_error);
  EXPECT_FALSE(exec::Pool::in_task());
}

TEST(ExecPool, RapidTinyJobsSurviveLateWakingWorkers) {
  // Regression: a worker slow to wake could observe the epoch bump *after*
  // the submitter (plus faster workers) had drained the job and for_all had
  // already reset the shared pointer — it then dereferenced a null Job.
  // Tiny jobs on a wide pool make that window common; pre-fix this loop
  // crashed within a few hundred rounds on a loaded machine.
  exec::Pool pool{8};
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.for_all(2, [&total](std::size_t i) { total += i + 1; });
  }
  EXPECT_EQ(total.load(), 2000u * 3u);
}

TEST(ExecPool, ZeroTasksIsANoOp) {
  exec::Pool pool{4};
  const auto results = pool.map_ordered(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(results.empty());
}

TEST(ExecPool, PoolIsReusableAcrossJobs) {
  exec::Pool pool{3};
  for (int round = 0; round < 20; ++round) {
    const auto results = pool.map_ordered(7, [round](std::size_t i) {
      return static_cast<std::uint64_t>(round) * 100 + i;
    });
    for (std::size_t i = 0; i < 7; ++i) {
      EXPECT_EQ(results[i], static_cast<std::uint64_t>(round) * 100 + i);
    }
  }
}

// ----------------------------------------------------------- seed splitting

TEST(SeedDerivation, PinnedValues) {
  // Golden values: these are the streams every campaign run draws from, so
  // a silent change to the split function shows up here, not as a vague
  // determinism-hash diff three layers up.
  EXPECT_EQ(derive_seed(1, 1, 0, 0), 0x2d770759bba40ff2ULL);
  EXPECT_EQ(derive_seed(1, 2, 0, 0), 0x02e7165f18d57327ULL);
  EXPECT_EQ(derive_seed(11, 1, 1, 0), 0x8427fdd9e3e3b86bULL);
  EXPECT_EQ(derive_seed(11, 2, 0, 1000), 0xd2acf6b323e5c776ULL);
  EXPECT_EQ(derive_seed(42, 1, 3, 2), 0xb6373dc1cacf4c1cULL);
}

TEST(SeedDerivation, NoPhaseCollisionAtThousandIterations) {
  // The footgun this replaces: testbed runs used `seed + iter` and model
  // runs `seed + 1000 + iter`, so (measure, iter=1000) == (simulate,
  // iter=0). The split keys must stay pairwise distinct across phases and
  // deep iteration counts.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t phase = 1; phase <= 2; ++phase) {
    for (std::uint64_t iter = 0; iter <= 2000; iter += 100) {
      for (std::uint64_t w = 0; w < 4; ++w) {
        seen.push_back(derive_seed(7, phase, iter, w));
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "derived seeds collided";
}

// --------------------------------------- campaign determinism vs threads

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

/// Hash everything a CampaignResult carries: one eval::point_digest per
/// point (the public per-point determinism digest the service cache keys
/// byte-identity on), plus the calibration trajectory and the merged final
/// profile.
std::uint64_t hash_campaign(const eval::CampaignConfig& config,
                            const eval::CampaignResult& result) {
  Fnv1a h;
  for (const auto& iteration : result.iterations) {
    h.mix(iteration.index);
    h.mix(static_cast<std::uint64_t>(iteration.calibration_in_use * 1e12));
    for (const auto& p : iteration.points) {
      h.mix(eval::point_digest(config, p));
    }
  }
  h.mix(static_cast<std::uint64_t>(result.final_calibration * 1e12));
  for (const auto& record : result.profile.records()) {
    h.mix(static_cast<std::uint64_t>(record.rank));
    h.mix(record.path);
    h.mix(record.opens);
    h.mix(record.reads);
    h.mix(record.writes);
    h.mix(record.metadata_ops);
    h.mix(record.bytes_read.count());
    h.mix(record.bytes_written.count());
    h.mix(record.sequential_reads);
    h.mix(record.sequential_writes);
  }
  return h.digest();
}

/// Build a 4-workload sweep (two IOR geometries, shuffled DLIO, a DAG
/// workflow) and run the closed loop at the given thread count.
std::uint64_t run_campaign_at(std::uint32_t threads, eval::CampaignConfig config) {
  config.threads = threads;
  config.iterations = 2;

  workload::IorConfig ior_a;
  ior_a.ranks = 4;
  ior_a.block_size = Bytes::from_mib(4);
  ior_a.transfer_size = Bytes::from_mib(1);
  workload::IorConfig ior_b = ior_a;
  ior_b.transfer_size = Bytes::from_kib(256);
  const auto wa = workload::ior_like(ior_a);
  const auto wb = workload::ior_like(ior_b);

  workload::DlioConfig dlio;
  dlio.ranks = 4;
  dlio.samples = 128;
  dlio.samples_per_file = 32;
  dlio.batch_size = 8;
  dlio.shuffle = true;
  dlio.seed = 5;
  const auto wc = workload::dlio_like(dlio);

  workload::WorkflowConfig wf;
  wf.workers = 4;
  wf.stages = 2;
  wf.tasks_per_stage = 8;
  wf.files_per_task = 2;
  const auto wd = workload::workflow_dag(wf);

  eval::Campaign campaign{config};
  return hash_campaign(config, campaign.run({wa.get(), wb.get(), wc.get(), wd.get()}));
}

TEST(CampaignThreadDeterminism, PlainCampaignHashesIdenticalAt1_2_8Threads) {
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.model = small_pfs();
  config.model.disk_kind = pfs::DiskKind::kHdd;  // mis-calibrated on purpose
  config.seed = 11;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, FaultCampaignHashesIdenticalAt1_2_8Threads) {
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.testbed.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0))
      .ost_straggler(2, SimTime::from_ms(1.0), SimTime::from_ms(30.0), 5.0);
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 40.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  config.testbed.fault_injector = injector;
  config.testbed.retry.max_attempts = 3;
  config.testbed.retry.op_timeout = SimTime::from_ms(40.0);
  config.testbed.retry.failover = true;
  config.model = small_pfs();
  config.seed = 13;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, DurabilityCampaignHashesIdenticalAt1_2_8Threads) {
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.testbed.durability.track_contents = true;
  config.testbed.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(128.0);
  config.layout.replicas = 2;  // the driver's create layout wins over the MDS default
  config.testbed.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0));
  config.testbed.retry.max_attempts = 2;
  config.testbed.retry.failover = true;
  config.model = small_pfs();
  // The replicated create layout applies to the model replay too, and
  // replicated layouts require contents tracking on whichever system runs
  // them.
  config.model.durability.track_contents = true;
  config.seed = 21;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, MembershipCampaignHashesIdenticalAt1_2_8Threads) {
  // Membership churn on the testbed: epoch-versioned cluster map, jittered
  // heartbeats, a scripted drain and a crash detected (not observed
  // omnisciently) mid-sweep. Every stale-map bounce, refresh and migration
  // mark flows into the digest, which must not move with the thread count.
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.testbed.durability.track_contents = true;
  config.testbed.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(128.0);
  config.layout.replicas = 2;  // the driver's create layout wins over the MDS default
  config.testbed.cluster.enabled = true;
  config.testbed.cluster.placement = pfs::PlacementMode::kRendezvousHash;
  config.testbed.cluster.heartbeat_interval = SimTime::from_ms(2.0);
  config.testbed.cluster.heartbeat_grace = 2;
  config.testbed.cluster.horizon = SimTime::from_ms(80.0);
  config.testbed.cluster.drain(2, SimTime::from_ms(10.0));
  config.testbed.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0));
  config.testbed.retry.max_attempts = 4;
  config.testbed.retry.base_backoff = SimTime::from_ms(1.0);
  config.model = small_pfs();
  // The replicated create layout applies to the model replay too (same
  // tracking requirement as the durability campaign above).
  config.model.durability.track_contents = true;
  config.seed = 41;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, OverloadCampaignHashesIdenticalAt1_2_8Threads) {
  // Full overload-control stack on the testbed: bounded server queues with
  // CoDel shedding, retry budget, per-OST circuit breakers with jittered
  // open windows (kBreakerRngStream), adaptive timeouts and an end-to-end
  // deadline — under injector weather so the knobs actually fire. Every
  // rejection, shed, budget denial and breaker transition flows into the
  // digest, which must not move with the thread count.
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 40.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  config.testbed.fault_injector = injector;
  config.testbed.admission.policy = pfs::AdmissionPolicy::kCodelShed;
  config.testbed.admission.shed_target = SimTime::from_ms(2.0);
  config.testbed.retry.max_attempts = 4;
  config.testbed.retry.adaptive_timeout = true;
  config.testbed.retry.initial_timeout = SimTime::from_ms(20.0);
  config.testbed.retry.op_deadline = SimTime::from_ms(120.0);
  config.testbed.retry.retry_budget = true;
  config.testbed.retry.budget_ratio = 0.5;
  config.testbed.retry.breaker = true;
  config.testbed.retry.breaker_threshold = 3;
  config.testbed.retry.breaker_open_base = SimTime::from_ms(10.0);
  config.model = small_pfs();
  config.seed = 17;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, CachedCampaignHashesIdenticalAt1_2_8Threads) {
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  config.model = small_pfs();
  config.cache.enabled = true;
  config.cache.scope = cache::CacheScope::kShared;
  config.cache.policy = cache::EvictionPolicy::kTwoQ;
  config.cache.prefetch = cache::PrefetchMode::kEpoch;
  config.cache.capacity_pages = 96;
  config.cache.max_dirty_pages = 32;
  config.seed = 31;
  const auto serial = run_campaign_at(1, config);
  EXPECT_EQ(serial, run_campaign_at(2, config));
  EXPECT_EQ(serial, run_campaign_at(8, config));
}

TEST(CampaignThreadDeterminism, DifferentSeedsStillDiverge) {
  // Needs a seed-sensitive system: a fault-free run draws nothing from the
  // engine streams, so only an injector-driven config can prove the campaign
  // seed actually reaches the per-task engines.
  eval::CampaignConfig config;
  config.testbed = small_pfs();
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 40.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  config.testbed.fault_injector = injector;
  config.testbed.retry.max_attempts = 3;
  config.testbed.retry.op_timeout = SimTime::from_ms(40.0);
  config.testbed.retry.failover = true;
  config.model = small_pfs();
  config.seed = 11;
  auto other = config;
  other.seed = 12;
  EXPECT_NE(run_campaign_at(2, config), run_campaign_at(2, other))
      << "seed change must move the campaign digest (dead seed plumbing otherwise)";
}

}  // namespace
}  // namespace pio
