// pio::fault unit + integration tests: timeline queries, injector
// determinism, retry backoff schedules, and the end-to-end behaviour of a
// faulted PFS (down OSTs, stragglers, MDS outages, fabric brownouts,
// burst-buffer stalls) with and without client-side resilience.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine/model and drain it in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/sim_driver.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "pfs/resilience.hpp"
#include "sim/engine.hpp"
#include "trace/server_stats.hpp"
#include "workload/kernels.hpp"

namespace pio {
namespace {

using namespace pio::literals;
using fault::ComponentId;
using fault::ComponentKind;
using fault::FaultPlan;
using fault::Timeline;

constexpr ComponentId kOst0{ComponentKind::kOst, 0};

SimTime ms(double v) { return SimTime::from_ms(v); }

// ------------------------------------------------------------------ timeline

TEST(FaultTimelineTest, EmptyTimelineReportsHealthy) {
  const Timeline timeline;
  EXPECT_TRUE(timeline.empty());
  EXPECT_FALSE(timeline.down(kOst0, SimTime::zero()));
  EXPECT_EQ(timeline.slowdown(kOst0, ms(5)), 1.0);
  EXPECT_EQ(timeline.scaled(kOst0, ms(5), ms(3)), ms(3));
}

TEST(FaultTimelineTest, DownIntervalsAreHalfOpenAndMerged) {
  FaultPlan plan;
  plan.ost_down(0, ms(10), ms(20)).ost_down(0, ms(15), ms(30)).ost_down(0, ms(50), ms(60));
  const Timeline timeline{plan.events};
  EXPECT_EQ(timeline.event_count(), 3u);
  EXPECT_FALSE(timeline.down(kOst0, ms(9)));
  EXPECT_TRUE(timeline.down(kOst0, ms(10)));   // closed at start
  EXPECT_TRUE(timeline.down(kOst0, ms(25)));   // inside the merged [10, 30)
  EXPECT_FALSE(timeline.down(kOst0, ms(30)));  // open at end
  EXPECT_EQ(timeline.down_until(kOst0, ms(12)), ms(30));  // merged end, not 20
  EXPECT_TRUE(timeline.down(kOst0, ms(55)));
  EXPECT_EQ(timeline.down_until(kOst0, ms(55)), ms(60));
  // Other components are untouched.
  EXPECT_FALSE(timeline.down({ComponentKind::kOst, 1}, ms(15)));
  EXPECT_FALSE(timeline.down({ComponentKind::kMds, 0}, ms(15)));
}

TEST(FaultTimelineTest, DownUntilThrowsWhenNotDown) {
  FaultPlan plan;
  plan.ost_down(0, ms(10), ms(20));
  const Timeline timeline{plan.events};
  EXPECT_THROW((void)timeline.down_until(kOst0, ms(5)), std::logic_error);
  EXPECT_THROW((void)timeline.down_until(kOst0, ms(20)), std::logic_error);
  EXPECT_THROW((void)timeline.down_until({ComponentKind::kOst, 7}, ms(15)), std::logic_error);
}

TEST(FaultTimelineTest, OverlappingSlowdownsMultiply) {
  FaultPlan plan;
  plan.ost_straggler(0, ms(0), ms(100), 2.0).ost_straggler(0, ms(50), ms(200), 3.0);
  const Timeline timeline{plan.events};
  EXPECT_EQ(timeline.slowdown(kOst0, ms(10)), 2.0);
  EXPECT_EQ(timeline.slowdown(kOst0, ms(60)), 6.0);   // overlap composes
  EXPECT_EQ(timeline.slowdown(kOst0, ms(150)), 3.0);
  EXPECT_EQ(timeline.slowdown(kOst0, ms(300)), 1.0);
  EXPECT_EQ(timeline.scaled(kOst0, ms(60), ms(2)), ms(12));
}

TEST(FaultTimelineTest, MalformedEventsThrow) {
  FaultPlan backwards;
  backwards.ost_down(0, ms(20), ms(10));
  EXPECT_THROW(Timeline{backwards.events}, std::invalid_argument);
  FaultPlan zero_factor;
  zero_factor.ost_straggler(0, ms(0), ms(10), 0.0);
  EXPECT_THROW(Timeline{zero_factor.events}, std::invalid_argument);
  FaultPlan bad_fabric;
  EXPECT_THROW(bad_fabric.fabric_brownout(ComponentKind::kOst, ms(0), ms(1), 2.0),
               std::invalid_argument);
}

TEST(FaultTimelineTest, HandlerDuringDownIntervalTripsInvariantF1) {
  FaultPlan plan;
  plan.ost_down(0, ms(10), ms(20));
  const Timeline timeline{plan.events};
  EXPECT_NO_THROW(timeline.check_handler_allowed(kOst0, ms(5)));
  EXPECT_NO_THROW(timeline.check_handler_allowed(kOst0, ms(20)));  // recovery edge is legal
  EXPECT_THROW(timeline.check_handler_allowed(kOst0, ms(15)), std::logic_error);
}

// ------------------------------------------------------------------ injector

fault::InjectorConfig busy_injector(std::uint32_t osts) {
  fault::InjectorConfig config;
  config.horizon = SimTime::from_sec(30.0);
  config.osts = osts;
  config.ost_crash_rate_hz = 0.5;
  config.ost_straggler_rate_hz = 0.5;
  config.storage_brownout_rate_hz = 0.2;
  config.mds_slowdown_rate_hz = 0.2;
  return config;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  const auto a = fault::inject(busy_injector(4), Rng{42, fault::kFaultRngStream});
  const auto b = fault::inject(busy_injector(4), Rng{42, fault::kFaultRngStream});
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].component, b[i].component);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].factor, b[i].factor);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  const auto a = fault::inject(busy_injector(4), Rng{42, fault::kFaultRngStream});
  const auto b = fault::inject(busy_injector(4), Rng{43, fault::kFaultRngStream});
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  bool identical = a.size() == b.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].component == b[i].component && a[i].start == b[i].start;
  }
  EXPECT_FALSE(identical);
}

TEST(FaultInjectorTest, EventsRespectHorizonAndValidate) {
  const auto events = fault::inject(busy_injector(4), Rng{7, fault::kFaultRngStream});
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_GE(e.start, SimTime::zero());
    EXPECT_GT(e.end, e.start);
    EXPECT_LE(e.end, SimTime::from_sec(30.0));
  }
  // The whole batch must be Timeline-constructible.
  EXPECT_NO_THROW(Timeline{events});
}

TEST(FaultInjectorTest, ZeroRatesProduceNoEvents) {
  fault::InjectorConfig config;
  config.osts = 8;
  EXPECT_TRUE(fault::inject(config, Rng{42, fault::kFaultRngStream}).empty());
}

TEST(FaultInjectorTest, PerComponentSubstreamsAreIndependentOfPoolSize) {
  // OST 0's weather must not change when the pool grows: per-component
  // substreams, not one shared draw sequence.
  auto events_for_ost0 = [](std::uint32_t osts) {
    std::vector<fault::FaultEvent> out;
    for (const auto& e : fault::inject(busy_injector(osts), Rng{42, fault::kFaultRngStream})) {
      if (e.component == ComponentId{ComponentKind::kOst, 0}) out.push_back(e);
    }
    return out;
  };
  const auto small_pool = events_for_ost0(2);
  const auto big_pool = events_for_ost0(16);
  ASSERT_EQ(small_pool.size(), big_pool.size());
  for (std::size_t i = 0; i < small_pool.size(); ++i) {
    EXPECT_EQ(small_pool[i].start, big_pool[i].start);
    EXPECT_EQ(small_pool[i].end, big_pool[i].end);
    EXPECT_EQ(small_pool[i].factor, big_pool[i].factor);
  }
}

// ------------------------------------------------------------------- backoff

TEST(RetryBackoffTest, ExponentialScheduleWithCap) {
  pfs::RetryPolicy policy;
  policy.base_backoff = ms(1);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = ms(6);
  policy.jitter_fraction = 0.0;
  Rng rng{1, pfs::kRetryRngStream};
  EXPECT_EQ(pfs::backoff_delay(policy, 1, rng), ms(1));
  EXPECT_EQ(pfs::backoff_delay(policy, 2, rng), ms(2));
  EXPECT_EQ(pfs::backoff_delay(policy, 3, rng), ms(4));
  EXPECT_EQ(pfs::backoff_delay(policy, 4, rng), ms(6));  // capped
  EXPECT_EQ(pfs::backoff_delay(policy, 9, rng), ms(6));  // stays capped
}

TEST(RetryBackoffTest, JitterIsBoundedAndDeterministic) {
  pfs::RetryPolicy policy;
  policy.base_backoff = ms(10);
  policy.jitter_fraction = 0.25;
  Rng a{5, pfs::kRetryRngStream};
  Rng b{5, pfs::kRetryRngStream};
  for (int i = 0; i < 32; ++i) {
    const SimTime da = pfs::backoff_delay(policy, 1, a);
    const SimTime db = pfs::backoff_delay(policy, 1, b);
    EXPECT_EQ(da, db);  // same stream, same schedule
    EXPECT_GE(da, ms(7.5));
    EXPECT_LE(da, ms(12.5));
  }
}

// ---------------------------------------------------------------- OST faults

TEST(OstFaultTest, RequestDuringDownIsRejected) {
  sim::Engine engine;
  pfs::OstServer ost{engine, 0, pfs::make_ssd(pfs::SsdConfig{})};
  FaultPlan plan;
  plan.ost_down(0, ms(1), ms(5));
  const Timeline timeline{plan.events};
  ost.set_fault_timeline(&timeline);
  std::vector<pfs::OstOpRecord> records;
  ost.set_op_observer([&](const pfs::OstOpRecord& r) { records.push_back(r); });
  bool result = true;
  engine.schedule_at(ms(2), [&] {
    ost.submit(0, 1_MiB, true, [&](pfs::OstCompletion c) { result = c.ok(); });
  });
  engine.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(ost.stats().rejected_ops, 1u);
  EXPECT_EQ(ost.stats().write_ops, 0u);  // never reached the device
  EXPECT_EQ(ost.stats().bytes_written, Bytes::zero());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].ok);
  EXPECT_EQ(records[0].completed, ms(2));  // rejected at the door
}

TEST(OstFaultTest, InServiceOpInterruptedByCrashFailsAtRecovery) {
  sim::Engine engine;
  pfs::OstServer ost{engine, 0, pfs::make_ssd(pfs::SsdConfig{})};
  // 1 MiB SSD write takes ~520us; the crash at 200us catches it in service.
  FaultPlan plan;
  plan.ost_down(0, SimTime::from_us(200.0), ms(5));
  const Timeline timeline{plan.events};
  ost.set_fault_timeline(&timeline);
  bool ok = true;
  SimTime completed = SimTime::zero();
  ost.submit(0, 1_MiB, true, [&](pfs::OstCompletion c) {
    ok = c.ok();
    completed = engine.now();
  });
  engine.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(ost.stats().interrupted_ops, 1u);
  // Invariant F1: the failure surfaces exactly at recovery, never inside
  // the down interval.
  EXPECT_EQ(completed, ms(5));
}

TEST(OstFaultTest, StragglerSlowdownStretchesServiceTime) {
  auto run_write = [](double factor) {
    sim::Engine engine;
    pfs::OstServer ost{engine, 0, pfs::make_ssd(pfs::SsdConfig{})};
    FaultPlan plan;
    Timeline timeline;
    if (factor > 1.0) {
      plan.ost_straggler(0, SimTime::zero(), SimTime::from_sec(1.0), factor);
      timeline = Timeline{plan.events};
    }
    ost.set_fault_timeline(&timeline);
    SimTime completed = SimTime::zero();
    ost.submit(0, 4_MiB, true, [&](pfs::OstCompletion) { completed = engine.now(); });
    engine.run();
    return completed;
  };
  const SimTime healthy = run_write(1.0);
  const SimTime straggling = run_write(8.0);
  EXPECT_GT(healthy, SimTime::zero());
  // from_sec_ceil rounding makes exact 8x slightly conservative.
  EXPECT_GE(straggling, healthy * 7);
}

// ------------------------------------------------------- PFS data-path faults

pfs::PfsConfig tiny_pfs(std::uint32_t osts) {
  pfs::PfsConfig config;
  config.clients = 2;
  config.io_nodes = 1;
  config.osts = osts;
  config.disk_kind = pfs::DiskKind::kSsd;
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), osts, 0};
  return config;
}

pfs::MetaResult sync_meta(pfs::PfsModel& model, pfs::ClientId c, pfs::MetaOp op,
                          const std::string& path) {
  pfs::MetaResult out;
  model.meta(c, op, path, [&](pfs::MetaResult r) { out = std::move(r); });
  model.engine().run();
  return out;
}

pfs::IoResult sync_io(pfs::PfsModel& model, pfs::ClientId c, const std::string& path,
                      const pfs::StripeLayout& layout, std::uint64_t offset, Bytes size,
                      bool is_write) {
  pfs::IoResult out;
  model.io(c, path, layout, offset, size, is_write, [&](pfs::IoResult r) { out = r; });
  model.engine().run();
  return out;
}

TEST(PfsFaultTest, WriteToDownOstFailsWithoutRetries) {
  sim::Engine engine;
  auto config = tiny_pfs(1);
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 1_MiB, true);
  EXPECT_FALSE(wrote.ok);
  EXPECT_EQ(wrote.error, pfs::IoError::kOstDown);
  EXPECT_EQ(wrote.attempts, 1u);  // fail-fast default policy
  EXPECT_EQ(model.resilience_stats().failed_ops, 1u);
  EXPECT_EQ(model.resilience_stats().retries, 0u);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(PfsFaultTest, FailoverRoutesAroundDownOst) {
  sim::Engine engine;
  auto config = tiny_pfs(2);
  // File lives entirely on OST 0, which is down for the whole run.
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  config.retry.failover = true;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 2_MiB, true);
  EXPECT_TRUE(wrote.ok);
  EXPECT_GT(model.resilience_stats().failovers, 0u);
  EXPECT_EQ(model.ost(0).stats().bytes_written, Bytes::zero());
  EXPECT_EQ(model.ost(1).stats().bytes_written, 2_MiB);  // the substitute OST
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(PfsFaultTest, RetriesRecoverAfterOutage) {
  sim::Engine engine;
  auto config = tiny_pfs(1);
  config.faults.ost_down(0, SimTime::zero(), ms(10));
  config.retry.max_attempts = 6;
  config.retry.base_backoff = ms(4);
  config.retry.backoff_multiplier = 2.0;
  config.retry.jitter_fraction = 0.0;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 256_KiB, true);
  EXPECT_TRUE(wrote.ok);
  EXPECT_GE(wrote.attempts, 2u);  // at least one attempt hit the outage
  EXPECT_GT(wrote.completed, ms(10));  // success only after recovery
  const auto& stats = model.resilience_stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.giveups, 0u);
  EXPECT_EQ(stats.failed_ops, 0u);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(PfsFaultTest, TimeoutAbandonsAttemptAndOrphansDrain) {
  sim::Engine engine;
  auto config = tiny_pfs(1);
  // Crash catches the (large) write in service; its deferred failure would
  // arrive at t=1s, far beyond the client's 5ms patience.
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(16), 1, 0};
  config.faults.ost_down(0, ms(1), SimTime::from_sec(1.0));
  config.retry.op_timeout = ms(5);
  config.retry.max_attempts = 2;
  config.retry.base_backoff = ms(1);
  config.retry.jitter_fraction = 0.0;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 8_MiB, true);
  EXPECT_FALSE(wrote.ok);
  const auto& stats = model.resilience_stats();
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_EQ(stats.giveups, 1u);
  EXPECT_EQ(stats.failed_ops, 1u);
  // The engine has fully drained (sync_io ran it dry), so every abandoned
  // attempt's in-flight events must have drained as orphans — invariant F2.
  engine.assert_drained();
  model.assert_quiescent();
}

// ---------------------------------------------------------------- MDS faults

TEST(MdsFaultTest, RequestDuringDownReturnsUnavailable) {
  sim::Engine engine;
  pfs::MetadataServer mds{engine, pfs::MdsConfig{}};
  FaultPlan plan;
  plan.mds_down(SimTime::zero(), ms(10));
  const Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  pfs::MetaResult result;
  mds.request(pfs::MetaOp::kCreate, "/f", [&](pfs::MetaResult r) { result = std::move(r); });
  engine.run();
  EXPECT_EQ(result.status, pfs::MetaStatus::kUnavailable);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(mds.find_inode("/f"), nullptr);  // mutation was not applied
  EXPECT_EQ(mds.stats().errors, 1u);
}

TEST(MdsFaultTest, SlowdownStretchesServiceCost) {
  sim::Engine engine;
  pfs::MetadataServer mds{engine, pfs::MdsConfig{}};
  FaultPlan plan;
  plan.mds_slowdown(SimTime::zero(), SimTime::from_sec(1.0), 10.0);
  const Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  SimTime completed = SimTime::zero();
  mds.request(pfs::MetaOp::kStat, "/", [&](pfs::MetaResult) { completed = engine.now(); });
  engine.run();
  // stat_cost is 40us; the storm makes it 400us.
  EXPECT_EQ(completed, SimTime::from_us(400.0));
}

TEST(MdsFaultTest, InServiceRequestInterruptedByCrashDefersToRecovery) {
  sim::Engine engine;
  pfs::MetadataServer mds{engine, pfs::MdsConfig{}};
  // create_cost is 250us; the crash at 100us catches it mid-service.
  FaultPlan plan;
  plan.mds_down(SimTime::from_us(100.0), ms(50));
  const Timeline timeline{plan.events};
  mds.set_fault_timeline(&timeline);
  pfs::MetaResult result;
  SimTime completed = SimTime::zero();
  mds.request(pfs::MetaOp::kCreate, "/f", [&](pfs::MetaResult r) {
    result = std::move(r);
    completed = engine.now();
  });
  engine.run();
  EXPECT_EQ(result.status, pfs::MetaStatus::kUnavailable);
  EXPECT_EQ(completed, ms(50));              // failure surfaces at recovery (F1)
  EXPECT_EQ(mds.find_inode("/f"), nullptr);  // the create was lost, not applied
}

// --------------------------------------------------------------- net faults

TEST(FabricFaultTest, BrownoutInflatesTransferTime) {
  auto run_send = [](bool browned_out) {
    sim::Engine engine;
    net::FabricConfig config;
    net::Fabric fabric{engine, config, 2};
    FaultPlan plan;
    Timeline timeline;
    if (browned_out) {
      plan.fabric_brownout(ComponentKind::kStorageFabric, SimTime::zero(),
                           SimTime::from_sec(1.0), 4.0);
      timeline = Timeline{plan.events};
    }
    fabric.set_fault_timeline(&timeline, {ComponentKind::kStorageFabric, 0});
    SimTime delivered = SimTime::zero();
    std::uint64_t degraded = 0;
    fabric.send(0, 1, 4_MiB, [&] { delivered = engine.now(); });
    engine.run();
    degraded = fabric.stats().degraded_messages;
    EXPECT_EQ(fabric.stats().bytes, 4_MiB);  // stats record the true payload
    return std::pair{delivered, degraded};
  };
  const auto [healthy, healthy_degraded] = run_send(false);
  const auto [browned, browned_degraded] = run_send(true);
  EXPECT_EQ(healthy_degraded, 0u);
  EXPECT_EQ(browned_degraded, 1u);
  EXPECT_GT(browned, healthy * 3);  // ~4x wire volume through every stage
}

// ------------------------------------------------------------- burst buffer

TEST(BurstBufferFaultTest, StalledBufferForcesWriteThrough) {
  auto run_write = [](bool stalled) {
    sim::Engine engine;
    auto config = tiny_pfs(2);
    config.bb_placement = pfs::BbPlacement::kPerIoNode;
    if (stalled) config.faults.bb_stall(0, SimTime::zero(), SimTime::from_sec(3600.0));
    pfs::PfsModel model{engine, config};
    (void)sync_meta(model, 0, pfs::MetaOp::kCreate, "/ckpt");
    (void)sync_io(model, 0, "/ckpt", model.mds().config().default_layout, 0, 4_MiB, true);
    return std::pair{model.burst_buffers().at(0)->stats().absorbed,
                     model.burst_buffers().at(0)->stats().bypassed};
  };
  const auto [absorbed_ok, bypassed_ok] = run_write(false);
  EXPECT_EQ(absorbed_ok, 4_MiB);
  EXPECT_EQ(bypassed_ok, Bytes::zero());
  const auto [absorbed_stalled, bypassed_stalled] = run_write(true);
  EXPECT_EQ(absorbed_stalled, Bytes::zero());
  EXPECT_EQ(bypassed_stalled, 4_MiB);  // stall forces the write-through path
}

// ----------------------------------------------------- monitoring + campaign

TEST(FaultMonitoringTest, ServerStatsSeeFailedOpsAndResilienceEvents) {
  sim::Engine engine;
  auto config = tiny_pfs(2);
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), 1, 0};
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  config.retry.max_attempts = 2;
  config.retry.jitter_fraction = 0.0;
  pfs::PfsModel model{engine, config};
  trace::ServerStatsCollector collector{ms(10)};
  collector.attach(model);
  (void)sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  const auto wrote = sync_io(model, 0, "/f", model.mds().config().default_layout, 0, 1_MiB, true);
  EXPECT_FALSE(wrote.ok);  // no failover: both attempts hit the down OST
  std::uint64_t server_failed = 0;
  for (const auto& [ost, series] : collector.ost_series()) {
    for (const auto& [window, sample] : series) server_failed += sample.failed_ops;
  }
  EXPECT_GE(server_failed, 2u);  // one rejection per attempt
  std::uint64_t retries = 0, giveups = 0;
  for (const auto& [window, sample] : collector.resilience_series()) {
    retries += sample.retries;
    giveups += sample.giveups;
  }
  EXPECT_EQ(retries, 1u);
  EXPECT_EQ(giveups, 1u);
}

TEST(FaultCampaignTest, DownOstFailsFailFastButRecoversWithResilience) {
  workload::IorConfig ior;
  ior.ranks = 2;
  ior.block_size = Bytes::from_mib(2);
  ior.transfer_size = Bytes::from_mib(1);
  const auto workload = workload::ior_like(ior);
  auto faulted = tiny_pfs(2);
  faulted.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  driver::SimRunConfig run_config;
  run_config.layout = pfs::StripeLayout{Bytes::from_mib(1), 2, 0};

  // Fail-fast policy: the down OST surfaces as failed ops, zero retries.
  {
    sim::Engine engine{5};
    pfs::PfsModel model{engine, faulted};
    driver::ExecutionDrivenSimulator sim{engine, model, run_config};
    const auto result = sim.run(*workload);
    engine.assert_drained();
    model.assert_quiescent();
    EXPECT_GT(result.failed_ops, 0u);
    EXPECT_EQ(result.retries, 0u);
    EXPECT_EQ(result.failovers, 0u);
  }

  // Resilient policy: failover routes around the dead OST; everything
  // completes, and the counters record the work it took.
  {
    auto resilient = faulted;
    resilient.retry.max_attempts = 4;
    resilient.retry.failover = true;
    resilient.retry.jitter_fraction = 0.0;
    sim::Engine engine{5};
    pfs::PfsModel model{engine, resilient};
    driver::ExecutionDrivenSimulator sim{engine, model, run_config};
    const auto result = sim.run(*workload);
    engine.assert_drained();
    model.assert_quiescent();
    EXPECT_EQ(result.failed_ops, 0u);
    EXPECT_GT(result.failovers, 0u);
  }
}

}  // namespace
}  // namespace pio
