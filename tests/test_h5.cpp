// Tests for the HDF5-lite layer: dataspaces, hyperslab extent mapping,
// chunked layout, attributes, header round-trip, and multi-level tracing.
#include <gtest/gtest.h>

#include <cstring>

#include "h5/h5.hpp"
#include "trace/backend_shim.hpp"
#include "trace/tracer.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

namespace pio::h5 {
namespace {

std::vector<std::byte> iota_bytes(std::size_t n, unsigned seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::byte>((i + seed) & 0xFF);
  return data;
}

TEST(DataspaceTest, Elements) {
  EXPECT_EQ((Dataspace{{4, 5, 6}}).elements(), 120u);
  EXPECT_EQ((Dataspace{{}}).elements(), 0u);
  EXPECT_EQ((Hyperslab{{0, 0}, {3, 4}}).elements(), 12u);
}

class H5Fixture : public ::testing::Test {
 protected:
  vfs::FileSystem fs_;
};

TEST_F(H5Fixture, ContiguousHyperslabExtents) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    // 4x8 dataset of 8-byte elements, contiguous.
    auto ds = file.value()->create_dataset("/grid", 8, Dataspace{{4, 8}});
    ASSERT_TRUE(ds.ok());
    // Full rows are contiguous: selecting rows 1-2, all columns -> ONE
    // coalesced extent of 2*8*8 bytes.
    auto extents = ds.value().extents_of(Hyperslab{{1, 0}, {2, 8}});
    ASSERT_TRUE(extents.ok());
    ASSERT_EQ(extents.value().size(), 1u);
    // Row 1 starts at element 8 (one full row) -> byte 64.
    EXPECT_EQ(extents.value()[0].offset, H5File::kHeaderSize + 8u * 8u);
    EXPECT_EQ(extents.value()[0].length.count(), 2u * 8u * 8u);
    // A column selection is strided: 4 extents of one element.
    auto column = ds.value().extents_of(Hyperslab{{0, 3}, {4, 1}});
    ASSERT_TRUE(column.ok());
    ASSERT_EQ(column.value().size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(column.value()[r].offset, H5File::kHeaderSize + (r * 8 + 3) * 8);
      EXPECT_EQ(column.value()[r].length.count(), 8u);
    }
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, HyperslabValidation) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    auto ds = file.value()->create_dataset("/d", 4, Dataspace{{10, 10}});
    ASSERT_TRUE(ds.ok());
    EXPECT_FALSE(ds.value().extents_of(Hyperslab{{0}, {5}}).ok());          // rank mismatch
    EXPECT_FALSE(ds.value().extents_of(Hyperslab{{5, 5}, {6, 1}}).ok());    // out of bounds
    EXPECT_FALSE(ds.value().extents_of(Hyperslab{{0, 0}, {0, 1}}).ok());    // zero count
    std::vector<std::byte> tiny(3);
    EXPECT_FALSE(ds.value().write(Hyperslab{{0, 0}, {1, 1}}, tiny, false).ok());
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, WriteReadRoundTripContiguous) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    auto ds = file.value()->create_dataset("/m", 4, Dataspace{{16, 16}});
    ASSERT_TRUE(ds.ok());
    const auto data = iota_bytes(4 * 4 * 4, 7);
    // Write a 4x4 block at (2, 3).
    ASSERT_TRUE(ds.value().write(Hyperslab{{2, 3}, {4, 4}}, data, false).ok());
    std::vector<std::byte> out(data.size());
    ASSERT_TRUE(ds.value().read(Hyperslab{{2, 3}, {4, 4}}, out, false).ok());
    EXPECT_EQ(out, data);
    // A disjoint region reads back zeros (eager allocation, sparse file).
    std::vector<std::byte> zeros(4 * 4 * 4);
    ASSERT_TRUE(ds.value().read(Hyperslab{{10, 10}, {4, 4}}, zeros, false).ok());
    for (const auto b : zeros) EXPECT_EQ(b, std::byte{0});
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, ChunkedLayoutMapsIntoChunks) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    // 8x8 dataset, 4x4 chunks -> 2x2 chunk grid, elem 1 byte.
    auto ds = file.value()->create_dataset("/c", 1, Dataspace{{8, 8}}, {4, 4});
    ASSERT_TRUE(ds.ok());
    EXPECT_EQ(ds.value().info().chunk_grid(), (std::vector<std::uint64_t>{2, 2}));
    EXPECT_EQ(ds.value().info().chunk_bytes(), 16u);
    // Row 0, columns 0-7 crosses two chunks: two extents.
    auto extents = ds.value().extents_of(Hyperslab{{0, 0}, {1, 8}});
    ASSERT_TRUE(extents.ok());
    ASSERT_EQ(extents.value().size(), 2u);
    const std::uint64_t base = H5File::kHeaderSize;
    EXPECT_EQ(extents.value()[0].offset, base + 0);        // chunk (0,0) row 0
    EXPECT_EQ(extents.value()[1].offset, base + 16);       // chunk (0,1) row 0
    EXPECT_EQ(extents.value()[0].length.count(), 4u);
    // Chunk-aligned full chunk is one extent of 16 bytes.
    auto chunk = ds.value().extents_of(Hyperslab{{4, 4}, {4, 4}});
    ASSERT_TRUE(chunk.ok());
    ASSERT_EQ(chunk.value().size(), 1u);
    EXPECT_EQ(chunk.value()[0].offset, base + 3u * 16u);   // chunk (1,1)
    EXPECT_EQ(chunk.value()[0].length.count(), 16u);
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, ChunkedRoundTripWithUnalignedSlab) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    auto ds = file.value()->create_dataset("/c3", 2, Dataspace{{9, 7, 5}}, {4, 3, 2});
    ASSERT_TRUE(ds.ok());
    const Hyperslab slab{{1, 2, 1}, {6, 4, 3}};
    const auto data = iota_bytes(slab.elements() * 2, 3);
    ASSERT_TRUE(ds.value().write(slab, data, false).ok());
    std::vector<std::byte> out(data.size());
    ASSERT_TRUE(ds.value().read(slab, out, false).ok());
    EXPECT_EQ(out, data);
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, HeaderRoundTripAcrossReopen) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->create_group("/fields").ok());
    auto ds = file.value()->create_dataset("/fields/rho", 8, Dataspace{{32, 32}}, {8, 8});
    ASSERT_TRUE(ds.ok());
    ASSERT_TRUE(file.value()->set_attribute("/fields/rho", "units", "g / cm^3").ok());
    ASSERT_TRUE(file.value()->set_attribute("/", "creator", "pioeval test").ok());
    const auto data = iota_bytes(8 * 8 * 8, 1);
    if (comm.rank() == 0) {
      ASSERT_TRUE(ds.value().write(Hyperslab{{0, 0}, {8, 8}}, data, false).ok());
    }
    (void)file.value()->close_all();
    comm.barrier();
    // Reopen and verify everything survived the header round-trip.
    auto reopened = H5File::open_all(comm, backend, "/h5");
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.value()->group_names(), (std::vector<std::string>{"/fields"}));
    EXPECT_EQ(reopened.value()->dataset_names(),
              (std::vector<std::string>{"/fields/rho"}));
    EXPECT_EQ(reopened.value()->attribute("/fields/rho", "units"), "g / cm^3");
    EXPECT_EQ(reopened.value()->attribute("/", "creator"), "pioeval test");
    EXPECT_EQ(reopened.value()->attribute("/", "missing"), std::nullopt);
    auto rho = reopened.value()->open_dataset("/fields/rho");
    ASSERT_TRUE(rho.ok());
    EXPECT_EQ(rho.value().info().chunk_dims, (std::vector<std::uint64_t>{8, 8}));
    std::vector<std::byte> out(data.size());
    ASSERT_TRUE(rho.value().read(Hyperslab{{0, 0}, {8, 8}}, out, false).ok());
    EXPECT_EQ(out, data);
    (void)reopened.value()->close_all();
  });
}

TEST_F(H5Fixture, CollectiveDatasetWriteAcrossRanks) {
  vfs::LocalBackend backend{fs_};
  constexpr int kRanks = 4;
  par::Runtime runtime{kRanks};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    // 16x16 of 8-byte elements; each rank owns 4 interleaved rows.
    auto ds = file.value()->create_dataset("/u", 8, Dataspace{{16, 16}});
    ASSERT_TRUE(ds.ok());
    for (int row = comm.rank(); row < 16; row += kRanks) {
      const auto data = iota_bytes(16 * 8, static_cast<unsigned>(row));
      ASSERT_TRUE(ds.value()
                      .write(Hyperslab{{static_cast<std::uint64_t>(row), 0}, {1, 16}}, data,
                             /*collective=*/false)
                      .ok());
    }
    comm.barrier();
    // Collective read of the whole dataset on every rank.
    std::vector<std::byte> out(16 * 16 * 8);
    ASSERT_TRUE(ds.value().read(Hyperslab{{0, 0}, {16, 16}}, out, /*collective=*/true).ok());
    for (int row = 0; row < 16; ++row) {
      const auto expected = iota_bytes(16 * 8, static_cast<unsigned>(row));
      ASSERT_EQ(std::memcmp(out.data() + row * 16 * 8, expected.data(), expected.size()), 0)
          << "row " << row;
    }
    (void)file.value()->close_all();
  });
}

TEST_F(H5Fixture, InvalidCreations) {
  vfs::LocalBackend backend{fs_};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/h5");
    ASSERT_TRUE(file.ok());
    EXPECT_FALSE(file.value()->create_dataset("bad name", 4, Dataspace{{4}}).ok());
    EXPECT_FALSE(file.value()->create_dataset("/zero", 0, Dataspace{{4}}).ok());
    EXPECT_FALSE(file.value()->create_dataset("/zdim", 4, Dataspace{{0}}).ok());
    EXPECT_FALSE(file.value()->create_dataset("/badchunk", 4, Dataspace{{4, 4}}, {8, 1}).ok());
    ASSERT_TRUE(file.value()->create_dataset("/ok", 4, Dataspace{{4}}).ok());
    EXPECT_FALSE(file.value()->create_dataset("/ok", 4, Dataspace{{4}}).ok());  // duplicate
    EXPECT_FALSE(file.value()->open_dataset("/missing").ok());
    EXPECT_FALSE(file.value()->set_attribute("/missing", "k", "v").ok());
    EXPECT_FALSE(file.value()->set_attribute("/ok", "bad key", "v").ok());
    (void)file.value()->close_all();
  });
}

// Property sweep: for arbitrary dataset/chunk/slab geometry, the extent
// decomposition exactly tiles the slab's byte volume, stays within the
// dataset's allocation, and never overlaps itself.
struct SlabCase {
  std::vector<std::uint64_t> dims;
  std::vector<std::uint64_t> chunks;  // empty = contiguous
  std::vector<std::uint64_t> start;
  std::vector<std::uint64_t> count;
  std::uint32_t elem;
};

class HyperslabPropertyTest : public ::testing::TestWithParam<SlabCase> {};

TEST_P(HyperslabPropertyTest, ExtentsExactlyTileTheSlab) {
  const auto& p = GetParam();
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = H5File::create_all(comm, backend, "/prop.h5");
    ASSERT_TRUE(file.ok());
    auto ds = file.value()->create_dataset("/d", p.elem, Dataspace{p.dims}, p.chunks);
    ASSERT_TRUE(ds.ok());
    const Hyperslab slab{p.start, p.count};
    auto extents = ds.value().extents_of(slab);
    ASSERT_TRUE(extents.ok());
    std::uint64_t total = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    for (const auto& e : extents.value()) {
      EXPECT_GT(e.length.count(), 0u);
      EXPECT_GE(e.offset, H5File::kHeaderSize);
      total += e.length.count();
      ranges.emplace_back(e.offset, e.offset + e.length.count());
    }
    EXPECT_EQ(total, slab.elements() * p.elem);
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_LE(ranges[i - 1].second, ranges[i].first) << "overlapping extents";
    }
    // And the data round-trips through those extents.
    const auto data = iota_bytes(slab.elements() * p.elem, 9);
    ASSERT_TRUE(ds.value().write(slab, data, false).ok());
    std::vector<std::byte> out(data.size());
    ASSERT_TRUE(ds.value().read(slab, out, false).ok());
    EXPECT_EQ(out, data);
    (void)file.value()->close_all();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, HyperslabPropertyTest,
    ::testing::Values(
        SlabCase{{64}, {}, {5}, {50}, 4},
        SlabCase{{64}, {16}, {5}, {50}, 4},
        SlabCase{{16, 16}, {}, {3, 2}, {10, 13}, 8},
        SlabCase{{16, 16}, {5, 7}, {3, 2}, {10, 13}, 8},
        SlabCase{{7, 9, 11}, {}, {1, 2, 3}, {5, 6, 7}, 2},
        SlabCase{{7, 9, 11}, {3, 4, 5}, {1, 2, 3}, {5, 6, 7}, 2},
        SlabCase{{4, 4, 4, 4}, {2, 2, 2, 2}, {1, 1, 1, 1}, {3, 2, 3, 2}, 1},
        SlabCase{{100}, {1}, {0}, {100}, 16},
        SlabCase{{8, 8}, {8, 8}, {0, 0}, {8, 8}, 8}));

TEST_F(H5Fixture, MultiLevelTraceShowsTheFigure2Stack) {
  vfs::LocalBackend inner{fs_};
  trace::Tracer tracer;
  trace::WallClock clock;
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    trace::TracingBackend posix{inner, tracer, clock, comm.rank()};
    auto file = H5File::create_all(comm, posix, "/h5", mio::Hints{}, &tracer, &clock);
    ASSERT_TRUE(file.ok());
    auto ds = file.value()->create_dataset("/d", 8, Dataspace{{8, 64}});
    ASSERT_TRUE(ds.ok());
    // Each rank writes interleaved rows -> strided extents under one
    // HDF5-level call.
    std::vector<mio::Extent> unused;
    const auto data = iota_bytes(4 * 64 * 8, static_cast<unsigned>(comm.rank()));
    ASSERT_TRUE(ds.value()
                    .write(Hyperslab{{static_cast<std::uint64_t>(comm.rank()) * 4, 0}, {4, 64}},
                           data, false)
                    .ok());
    (void)file.value()->close_all();
  });
  const auto trace = tracer.snapshot();
  const auto hdf5 = trace.layer(trace::Layer::kHdf5);
  const auto mpiio = trace.layer(trace::Layer::kMpiIo);
  const auto posix_events = trace.layer(trace::Layer::kPosix);
  EXPECT_GT(hdf5.size(), 0u);
  EXPECT_GT(mpiio.size(), 0u);
  EXPECT_GT(posix_events.size(), 0u);
  // The same data write is visible at every layer; POSIX sees at least as
  // many ops as MPI-IO, which sees at least as many as HDF5.
  EXPECT_GE(posix_events.size(), mpiio.size());
  std::size_t hdf5_writes = 0;
  for (const auto& e : hdf5.events()) {
    if (e.op == trace::OpKind::kWrite) ++hdf5_writes;
  }
  EXPECT_EQ(hdf5_writes, 2u);  // one logical write per rank
}

}  // namespace
}  // namespace pio::h5
