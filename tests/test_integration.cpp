// Cross-module integration and property tests: conservation invariants
// across the whole stack, determinism under configuration sweeps, fault
// injection, and the trace/profile consistency contract.
#include <gtest/gtest.h>

#include "analysis/job_analysis.hpp"
#include "analysis/system_analysis.hpp"
#include "driver/measured_runner.hpp"
#include "par/comm.hpp"
#include "driver/sim_driver.hpp"
#include "trace/backend_shim.hpp"
#include "trace/profiler.hpp"
#include "trace/server_stats.hpp"
#include "trace/tracer.hpp"
#include "vfs/fault_injection.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

namespace pio {
namespace {

using namespace pio::literals;

// ----------------------------------------------------------- property sweep

struct SystemCase {
  std::string name;
  pfs::DiskKind disk;
  pfs::BbPlacement bb;
  std::uint32_t osts;
  std::uint32_t stripe_count;
};

class PfsInvariantTest : public ::testing::TestWithParam<SystemCase> {};

/// Conservation invariant: every byte a write-workload issues is eventually
/// on the OSTs (possibly via the burst buffer), regardless of system
/// configuration — and two runs of the same seed are identical.
TEST_P(PfsInvariantTest, BytesAreConservedAndRunsAreDeterministic) {
  const auto& p = GetParam();
  auto run_once = [&] {
    sim::Engine engine{42};
    pfs::PfsConfig system;
    system.clients = 8;
    system.io_nodes = 2;
    system.osts = p.osts;
    system.disk_kind = p.disk;
    system.bb_placement = p.bb;
    pfs::PfsModel model{engine, system};
    driver::SimRunConfig run_config;
    run_config.layout = pfs::StripeLayout{1_MiB, p.stripe_count, 0};
    driver::ExecutionDrivenSimulator sim{engine, model, run_config};
    workload::IorConfig ior;
    ior.ranks = 8;
    ior.block_size = 4_MiB;
    ior.transfer_size = 1_MiB;
    const auto result = sim.run(*workload::ior_like(ior));
    engine.run();  // drain burst buffers
    EXPECT_EQ(result.failed_ops, 0u) << p.name;
    EXPECT_TRUE(model.buffers_quiescent()) << p.name;
    Bytes on_osts = Bytes::zero();
    for (std::uint32_t i = 0; i < model.ost_count(); ++i) {
      on_osts += model.ost(i).stats().bytes_written;
    }
    EXPECT_EQ(on_osts, result.bytes_written) << p.name;
    EXPECT_EQ(result.bytes_written, 32_MiB) << p.name;
    return result.makespan.ns();
  };
  EXPECT_EQ(run_once(), run_once()) << "non-deterministic: " << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Systems, PfsInvariantTest,
    ::testing::Values(
        SystemCase{"hdd-direct", pfs::DiskKind::kHdd, pfs::BbPlacement::kNone, 8, 4},
        SystemCase{"ssd-direct", pfs::DiskKind::kSsd, pfs::BbPlacement::kNone, 8, 4},
        SystemCase{"hdd-bb-node", pfs::DiskKind::kHdd, pfs::BbPlacement::kPerIoNode, 8, 4},
        SystemCase{"hdd-bb-shared", pfs::DiskKind::kHdd, pfs::BbPlacement::kShared, 8, 4},
        SystemCase{"single-ost", pfs::DiskKind::kSsd, pfs::BbPlacement::kNone, 1, 1},
        SystemCase{"wide-stripe", pfs::DiskKind::kSsd, pfs::BbPlacement::kNone, 16, 16},
        SystemCase{"narrow-stripe", pfs::DiskKind::kHdd, pfs::BbPlacement::kNone, 16, 1}),
    [](const auto& param_info) {
      std::string name = param_info.param.name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------- measured vs simulated parity

/// The same workload must move the same bytes on the measured path (real
/// VFS) and the simulated path (PFS model) — the two halves of the
/// toolkit agree on semantics.
TEST(PathParityTest, MeasuredAndSimulatedAgreeOnVolumes) {
  workload::WorkflowConfig wf;
  wf.workers = 4;
  wf.stages = 2;
  wf.tasks_per_stage = 8;
  wf.compute_per_task = SimTime::zero();
  const auto w = workload::workflow_dag(wf);

  vfs::FileSystem fs;
  const auto measured = driver::run_measured(fs, *w, nullptr);

  sim::Engine engine{5};
  pfs::PfsConfig system;
  system.clients = 4;
  system.io_nodes = 2;
  system.osts = 4;
  system.disk_kind = pfs::DiskKind::kSsd;
  pfs::PfsModel model{engine, system};
  driver::ExecutionDrivenSimulator sim{engine, model};
  const auto simulated = sim.run(*w);

  EXPECT_EQ(measured.bytes_written, simulated.bytes_written);
  EXPECT_EQ(measured.bytes_read, simulated.bytes_read);
  EXPECT_EQ(measured.failed_ops, 0u);
  EXPECT_EQ(simulated.failed_ops, 0u);
}

/// Profiles computed from the measured and the simulated trace of the same
/// workload agree on every volume counter.
TEST(PathParityTest, ProfilesAgreeAcrossPaths) {
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = 2_MiB;
  ior.transfer_size = 512_KiB;
  ior.read_phase = true;
  const auto w = workload::ior_like(ior);

  trace::Profiler measured_profiler;
  vfs::FileSystem fs;
  (void)driver::run_measured(fs, *w, &measured_profiler);

  trace::Profiler sim_profiler;
  sim::Engine engine{5};
  pfs::PfsConfig system;
  system.clients = 4;
  system.io_nodes = 2;
  system.osts = 4;
  system.disk_kind = pfs::DiskKind::kSsd;
  pfs::PfsModel model{engine, system};
  driver::ExecutionDrivenSimulator sim{engine, model};
  (void)sim.run(*w, &sim_profiler);

  const auto a = measured_profiler.snapshot().summarize();
  const auto b = sim_profiler.snapshot().summarize();
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.files, b.files);
  EXPECT_EQ(a.ranks, b.ranks);
}

// ----------------------------------------------------------- fault injection

TEST(FaultInjectionTest, DeterministicAndCounted) {
  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  vfs::FaultPlan plan;
  plan.write_failure = 0.3;
  plan.seed = 7;
  auto run_once = [&] {
    vfs::FaultInjectionBackend flaky{inner, plan};
    std::vector<bool> outcomes;
    auto fd = flaky.open("/f", {vfs::OpenMode::kReadWrite, true, true});
    EXPECT_TRUE(fd.ok());
    std::vector<std::byte> buf(128);
    for (int i = 0; i < 100; ++i) {
      outcomes.push_back(flaky.pwrite(fd.value(), buf, 0).ok());
    }
    flaky.close(fd.value());
    return outcomes;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << "fault injection must be deterministic";
  const auto failures = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), false));
  EXPECT_GT(failures, 15u);
  EXPECT_LT(failures, 45u);
}

TEST(FaultInjectionTest, GracePeriodProtectsSetup) {
  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  vfs::FaultPlan plan;
  plan.open_failure = 1.0;  // every open would fail...
  plan.grace_ops = 5;       // ...after the first five operations
  vfs::FaultInjectionBackend flaky{inner, plan};
  for (int i = 0; i < 5; ++i) {
    auto fd = flaky.open("/f" + std::to_string(i), {vfs::OpenMode::kReadWrite, true, false});
    EXPECT_TRUE(fd.ok()) << i;
  }
  EXPECT_FALSE(flaky.open("/late", {vfs::OpenMode::kReadWrite, true, false}).ok());
  EXPECT_EQ(flaky.injected_faults(), 1u);
}

TEST(FaultInjectionTest, TracersRecordInjectedFailures) {
  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  vfs::FaultPlan plan;
  plan.read_failure = 1.0;
  plan.grace_ops = 2;  // open + write succeed
  vfs::FaultInjectionBackend flaky{inner, plan};
  trace::Tracer tracer;
  trace::ManualClock clock;
  trace::TracingBackend traced{flaky, tracer, clock, 0};
  auto fd = traced.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(64);
  ASSERT_TRUE(traced.pwrite(fd.value(), buf, 0).ok());
  EXPECT_FALSE(traced.pread(fd.value(), buf, 0).ok());
  const auto trace = tracer.snapshot();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_TRUE(trace.events()[0].ok);
  EXPECT_TRUE(trace.events()[1].ok);
  EXPECT_FALSE(trace.events()[2].ok);  // the injected read failure
  EXPECT_EQ(trace.events()[2].op, trace::OpKind::kRead);
}

TEST(FaultInjectionTest, MeasuredRunnerSurvivesAndReportsFaults) {
  // A DL job on a file system with a 10% read failure rate: the runner must
  // finish (no hangs, no crashes) and report the failures honestly.
  workload::DlioConfig dl;
  dl.ranks = 4;
  dl.samples = 256;
  dl.samples_per_file = 64;
  dl.sample_size = 4_KiB;
  dl.compute_per_batch = SimTime::zero();
  const auto w = workload::dlio_like(dl);

  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  vfs::FaultPlan plan;
  plan.read_failure = 0.1;
  plan.grace_ops = 50;  // let rank 0 write the dataset
  vfs::FaultInjectionBackend flaky{inner, plan};

  // run_measured builds its own LocalBackend; drive the workload manually
  // through the flaky backend using the public pieces instead.
  trace::Profiler profiler;
  trace::WallClock clock;
  par::Runtime runtime{dl.ranks};
  std::atomic<std::uint64_t> failed{0};
  runtime.run([&](par::Comm& comm) {
    trace::TracingBackend backend{flaky, profiler, clock, comm.rank()};
    auto stream = w->stream(comm.rank());
    std::map<std::string, vfs::Fd> fds;
    std::vector<std::byte> buf;
    while (auto op = stream->next()) {
      using K = workload::OpKind;
      switch (op->kind) {
        case K::kCreate:
        case K::kOpen: {
          auto fd = backend.open(op->path,
                                 {vfs::OpenMode::kReadWrite, op->kind == K::kCreate, false});
          if (fd.ok()) fds[op->path] = fd.value();
          else ++failed;
          break;
        }
        case K::kClose:
          if (auto it = fds.find(op->path); it != fds.end()) {
            backend.close(it->second);
            fds.erase(it);
          }
          break;
        case K::kRead:
        case K::kWrite: {
          const auto it = fds.find(op->path);
          if (it == fds.end()) {
            ++failed;
            break;
          }
          buf.resize(static_cast<std::size_t>(op->size.count()));
          const bool ok = op->kind == K::kWrite
                              ? backend.pwrite(it->second, buf, op->offset).ok()
                              : backend.pread(it->second, buf, op->offset).ok();
          if (!ok) ++failed;
          break;
        }
        case K::kMkdir:
          (void)backend.mkdir(op->path);
          break;
        case K::kBarrier: comm.barrier(); break;
        default: break;
      }
    }
  });
  EXPECT_GT(failed.load(), 0u);
  EXPECT_GT(flaky.injected_faults(), 0u);
  // The profiler counted errors on the affected files.
  std::uint64_t profiled_errors = 0;
  const auto snapshot = profiler.snapshot();
  for (const auto& r : snapshot.records()) profiled_errors += r.errors;
  EXPECT_EQ(profiled_errors, failed.load());
}

// ---------------------------------------------------- end-to-end analysis

TEST(EndToEndTest, AnalysisPipelineOnSimulatedWorkflow) {
  // workload -> simulation -> trace + server stats -> both analyzers, all
  // in one pass; sanity-check every report field is populated coherently.
  workload::WorkflowConfig wf;
  wf.workers = 8;
  wf.stages = 3;
  wf.tasks_per_stage = 16;
  wf.compute_per_task = SimTime::from_ms(10.0);
  sim::Engine engine{9};
  pfs::PfsConfig system;
  system.clients = 8;
  system.io_nodes = 2;
  system.osts = 8;
  system.disk_kind = pfs::DiskKind::kSsd;
  pfs::PfsModel model{engine, system};
  trace::Tracer tracer;
  trace::ServerStatsCollector servers{SimTime::from_ms(10.0)};
  servers.attach(model);
  driver::ExecutionDrivenSimulator sim{engine, model};
  const auto result = sim.run(*workload::workflow_dag(wf), &tracer);
  engine.run();

  const auto job = analysis::analyze_job(tracer.take(),
                                         {SimTime::from_ms(10.0), 128, 0.3});
  EXPECT_EQ(job.bytes_written, result.bytes_written);
  EXPECT_EQ(job.bytes_read, result.bytes_read);
  EXPECT_GT(job.metadata_fraction(), 0.15);
  EXPECT_GE(job.phases.size(), 1u);

  const auto sys = analysis::analyze_system(servers);
  EXPECT_GT(sys.temporal.windows, 0u);
  EXPECT_EQ(sys.temporal.total_read + sys.temporal.total_written,
            result.bytes_read + result.bytes_written);
  EXPECT_GT(sys.spatial.servers, 0u);
  EXPECT_GE(sys.spatial.mean_imbalance, 1.0);
}

}  // namespace
}  // namespace pio
