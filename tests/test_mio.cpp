// Tests for the MPI-IO-lite layer: independent I/O, data sieving, and
// two-phase collective buffering (the experiment-C8 machinery).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>

#include "mio/mio.hpp"
#include "par/comm.hpp"
#include "trace/backend_shim.hpp"
#include "trace/tracer.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

namespace pio::mio {
namespace {

using namespace pio::literals;

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::byte>((i * 13 + seed) & 0xFF);
  return data;
}

TEST(MioTest, TotalLength) {
  const std::vector<Extent> extents{{0, Bytes{10}}, {100, Bytes{20}}};
  EXPECT_EQ(total_length(extents), Bytes{30});
}

TEST(MioTest, IndependentWriteReadRoundTrip) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/shared", true);
    ASSERT_TRUE(file.ok());
    const auto data = pattern(4096, static_cast<unsigned>(comm.rank()));
    const std::uint64_t offset = static_cast<std::uint64_t>(comm.rank()) * 4096;
    ASSERT_TRUE(file.value()->write_at(offset, data).ok());
    comm.barrier();
    // Each rank reads the other's region.
    const std::uint64_t other = static_cast<std::uint64_t>(1 - comm.rank()) * 4096;
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(file.value()->read_at(other, out).ok());
    EXPECT_EQ(out, pattern(4096, static_cast<unsigned>(1 - comm.rank())));
    EXPECT_EQ(file.value()->close_all(), vfs::FsStatus::kOk);
  });
}

TEST(MioTest, OpenMissingFileFailsOnAllRanks) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/absent", false);
    EXPECT_FALSE(file.ok());
  });
}

TEST(MioTest, DataSievingUsesOneBigRead) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    Hints hints;
    hints.ds_max_hole_fraction = 0.6;
    auto file = File::open_all(comm, backend, "/f", true, hints);
    ASSERT_TRUE(file.ok());
    const auto data = pattern(64 * 1024, 1);
    ASSERT_TRUE(file.value()->write_at(0, data).ok());
    const auto before = file.value()->posix_counters();
    // 8 strided extents of 4 KiB every 8 KiB: hole fraction ~0.5 < 0.6.
    std::vector<Extent> extents;
    for (int i = 0; i < 8; ++i) {
      extents.push_back(Extent{static_cast<std::uint64_t>(i) * 8192, Bytes{4096}});
    }
    std::vector<std::byte> out(8 * 4096);
    auto r = file.value()->read_strided(extents, out);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), out.size());
    // One sieved read, not eight.
    EXPECT_EQ(file.value()->posix_counters().reads - before.reads, 1u);
    // Contents match the strided pieces.
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 4096; ++j) {
        const std::size_t src = static_cast<std::size_t>(i) * 8192 + static_cast<std::size_t>(j);
        ASSERT_EQ(out[static_cast<std::size_t>(i * 4096 + j)], data[src]);
      }
    }
    (void)file.value()->close_all();
  });
}

TEST(MioTest, SievingDisabledFallsBackToPerExtentReads) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    Hints hints;
    hints.ds_max_hole_fraction = 0.0;  // sieving off
    auto file = File::open_all(comm, backend, "/f", true, hints);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->write_at(0, pattern(64 * 1024, 1)).ok());
    std::vector<Extent> extents;
    for (int i = 0; i < 8; ++i) {
      extents.push_back(Extent{static_cast<std::uint64_t>(i) * 8192, Bytes{4096}});
    }
    std::vector<std::byte> out(8 * 4096);
    const auto before = file.value()->posix_counters().reads;
    ASSERT_TRUE(file.value()->read_strided(extents, out).ok());
    EXPECT_EQ(file.value()->posix_counters().reads - before, 8u);
    (void)file.value()->close_all();
  });
}

TEST(MioTest, ReadStridedRejectsUnsortedExtents) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{1};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/f", true);
    ASSERT_TRUE(file.ok());
    const std::vector<Extent> extents{{100, Bytes{50}}, {0, Bytes{50}}};
    std::vector<std::byte> out(100);
    EXPECT_FALSE(file.value()->read_strided(extents, out).ok());
    (void)file.value()->close_all();
  });
}

class CollectiveWriteTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectiveWriteTest, InterleavedPatternLandsCorrectly) {
  // 4 ranks write an interleaved pattern: rank r owns every 4th block of
  // 1 KiB. Collective buffering must produce the same file contents as
  // independent writes, with far fewer POSIX writes.
  const std::uint32_t cb_nodes = GetParam();
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  constexpr int kRanks = 4;
  constexpr std::uint64_t kBlock = 1024;
  constexpr std::uint64_t kBlocksPerRank = 16;
  std::atomic<std::uint64_t> posix_writes{0};
  par::Runtime runtime{kRanks};
  runtime.run([&](par::Comm& comm) {
    Hints hints;
    hints.cb_nodes = cb_nodes;
    auto file = File::open_all(comm, backend, "/cb", true, hints);
    ASSERT_TRUE(file.ok());
    std::vector<Extent> extents;
    std::vector<std::byte> payload;
    for (std::uint64_t b = 0; b < kBlocksPerRank; ++b) {
      const std::uint64_t offset =
          (b * kRanks + static_cast<std::uint64_t>(comm.rank())) * kBlock;
      extents.push_back(Extent{offset, Bytes{kBlock}});
      const auto piece = pattern(kBlock, static_cast<unsigned>(offset / kBlock));
      payload.insert(payload.end(), piece.begin(), piece.end());
    }
    auto r = file.value()->write_at_all(extents, payload);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), payload.size());
    posix_writes += file.value()->posix_counters().writes;
    EXPECT_EQ(file.value()->close_all(), vfs::FsStatus::kOk);
  });
  // Verify the full interleaved file.
  const std::uint64_t total = kBlock * kBlocksPerRank * kRanks;
  std::vector<std::byte> out(total);
  ASSERT_TRUE(fs.pread("/cb", out, 0).ok());
  for (std::uint64_t block = 0; block < kBlocksPerRank * kRanks; ++block) {
    const auto expected = pattern(kBlock, static_cast<unsigned>(block));
    ASSERT_EQ(std::memcmp(out.data() + block * kBlock, expected.data(), kBlock), 0)
        << "block " << block;
  }
  if (cb_nodes > 0) {
    // The whole range is contiguous once assembled: one POSIX write per
    // aggregator (the range fits in one cb buffer).
    EXPECT_LE(posix_writes.load(), cb_nodes);
  } else {
    EXPECT_EQ(posix_writes.load(), kBlocksPerRank * kRanks);
  }
}

INSTANTIATE_TEST_SUITE_P(CbNodes, CollectiveWriteTest, ::testing::Values(0u, 1u, 2u, 4u));

TEST(MioTest, CollectiveReadRoundTrip) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  constexpr int kRanks = 4;
  constexpr std::uint64_t kBlock = 2048;
  par::Runtime runtime{kRanks};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/cr", true);
    ASSERT_TRUE(file.ok());
    // Rank 0 writes the whole file; then everyone collectively reads its
    // interleaved slice.
    const std::uint64_t total = kBlock * 4 * kRanks;
    if (comm.rank() == 0) {
      ASSERT_TRUE(file.value()->write_at(0, pattern(total, 9)).ok());
    }
    comm.barrier();
    std::vector<Extent> extents;
    for (std::uint64_t b = 0; b < 4; ++b) {
      extents.push_back(
          Extent{(b * kRanks + static_cast<std::uint64_t>(comm.rank())) * kBlock,
                 Bytes{kBlock}});
    }
    std::vector<std::byte> out(4 * kBlock);
    auto r = file.value()->read_at_all(extents, out);
    ASSERT_TRUE(r.ok());
    const auto whole = pattern(total, 9);
    std::size_t pos = 0;
    for (const auto& e : extents) {
      ASSERT_EQ(std::memcmp(out.data() + pos, whole.data() + e.offset, e.length.count()), 0);
      pos += static_cast<std::size_t>(e.length.count());
    }
    EXPECT_EQ(file.value()->close_all(), vfs::FsStatus::kOk);
  });
}

TEST(MioTest, EmptyCollectiveParticipationIsFine) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{3};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/sparsecb", true);
    ASSERT_TRUE(file.ok());
    // Only rank 1 contributes.
    std::vector<Extent> extents;
    std::vector<std::byte> payload;
    if (comm.rank() == 1) {
      extents.push_back(Extent{100, Bytes{50}});
      payload = pattern(50, 3);
    }
    auto r = file.value()->write_at_all(extents, payload);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), comm.rank() == 1 ? 50u : 0u);
    EXPECT_EQ(file.value()->close_all(), vfs::FsStatus::kOk);
  });
  std::vector<std::byte> out(50);
  ASSERT_TRUE(fs.pread("/sparsecb", out, 100).ok());
  EXPECT_EQ(out, pattern(50, 3));
}

TEST(MioTest, AllEmptyCollectiveCompletes) {
  vfs::FileSystem fs;
  vfs::LocalBackend backend{fs};
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    auto file = File::open_all(comm, backend, "/empty", true);
    ASSERT_TRUE(file.ok());
    auto r = file.value()->write_at_all({}, {});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 0u);
    (void)file.value()->close_all();
  });
}

TEST(MioTest, EmitsMpiIoLayerEvents) {
  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  trace::Tracer tracer;
  trace::ManualClock clock;
  par::Runtime runtime{2};
  runtime.run([&](par::Comm& comm) {
    trace::TracingBackend posix{inner, tracer, clock, comm.rank()};
    auto file = File::open_all(comm, posix, "/traced", true, Hints{}, &tracer, &clock);
    ASSERT_TRUE(file.ok());
    const auto data = pattern(1024, 0);
    ASSERT_TRUE(
        file.value()->write_at(static_cast<std::uint64_t>(comm.rank()) * 1024, data).ok());
    (void)file.value()->close_all();
  });
  const auto trace = tracer.snapshot();
  EXPECT_GT(trace.layer(trace::Layer::kMpiIo).size(), 0u);
  EXPECT_GT(trace.layer(trace::Layer::kPosix).size(), 0u);
  // MPI-IO layer recorded exactly 2 user writes; POSIX saw the same bytes.
  std::size_t mio_writes = 0;
  const auto mio_layer = trace.layer(trace::Layer::kMpiIo);
  for (const auto& e : mio_layer.events()) {
    if (e.op == trace::OpKind::kWrite) ++mio_writes;
  }
  EXPECT_EQ(mio_writes, 2u);
}

}  // namespace
}  // namespace pio::mio
