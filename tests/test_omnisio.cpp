// Tests for the Omnisc'IO-style next-op predictor and the fabric model
// (grouped: both are small, structural modules).
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "predict/omnisio.hpp"
#include "sim/engine.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"

namespace pio {
namespace {

using namespace pio::literals;
using workload::Op;

TEST(NextOpPredictorTest, LearnsASimpleLoop) {
  predict::NextOpPredictor predictor;
  // A perfectly regular stream: write, write, fsync, repeated.
  std::uint64_t offset = 0;
  int late_hits = 0;
  int late_total = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    const bool warm = cycle >= 10;
    for (int i = 0; i < 2; ++i) {
      const bool hit = predictor.observe(Op::write("/f", offset, 1_MiB));
      offset += (1_MiB).count();
      if (warm) {
        ++late_total;
        late_hits += hit ? 1 : 0;
      }
    }
    const bool hit = predictor.observe(Op::fsync("/f"));
    if (warm) {
      ++late_total;
      late_hits += hit ? 1 : 0;
    }
  }
  // After warm-up, the alternating pattern is fully predictable.
  EXPECT_EQ(late_hits, late_total);
  EXPECT_GT(predictor.accuracy(), 0.8);
  EXPECT_LE(predictor.alphabet_size(), 4u);
}

TEST(NextOpPredictorTest, PredictsResolvedNextOp) {
  predict::NextOpPredictor predictor;
  for (int i = 0; i < 20; ++i) {
    (void)predictor.observe(Op::write("/f", static_cast<std::uint64_t>(i) << 20, 1_MiB));
  }
  const auto next = predictor.predict_next();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, workload::OpKind::kWrite);
  EXPECT_EQ(next->path, "/f");
  EXPECT_EQ(next->size, 1_MiB);
  // The predicted offset continues the sequential cursor.
  EXPECT_EQ(next->offset, 20ull << 20);
}

TEST(NextOpPredictorTest, NoPredictionBeforeData) {
  predict::NextOpPredictor predictor;
  EXPECT_FALSE(predictor.predict_next().has_value());
  EXPECT_FALSE(predictor.observe(Op::stat("/x")));  // first op: no prediction
  EXPECT_EQ(predictor.accuracy(), 0.0);
}

TEST(PredictabilityTest, RegularKernelsBeatShuffledDl) {
  workload::IorConfig ior;
  ior.ranks = 2;
  ior.block_size = 64_MiB;
  ior.transfer_size = 1_MiB;
  ior.read_phase = true;
  const auto ior_traj = predict::evaluate_predictability(*workload::ior_like(ior), 0);

  workload::DlioConfig dl;
  dl.ranks = 2;
  dl.samples = 2048;
  dl.samples_per_file = 2048;
  dl.include_preparation = false;
  const auto dl_traj = predict::evaluate_predictability(*workload::dlio_like(dl), 0);

  // The paper's §V/§VI point in one inequality: structured HPC I/O is
  // highly predictable; shuffled DL input is not.
  EXPECT_GT(ior_traj.overall_accuracy, 0.9);
  EXPECT_LT(dl_traj.overall_accuracy, 0.5);
  EXPECT_GT(ior_traj.overall_accuracy, dl_traj.overall_accuracy + 0.4);
  // And DL's alphabet (distinct behaviours) is far larger.
  EXPECT_GT(dl_traj.alphabet_size, ior_traj.alphabet_size * 10);
}

TEST(PredictabilityTest, AccuracyImprovesOverWindows) {
  workload::CheckpointConfig ckpt;
  ckpt.ranks = 1;
  ckpt.checkpoint_per_rank = 32_MiB;
  ckpt.transfer_size = 1_MiB;
  ckpt.checkpoints = 8;
  const auto traj =
      predict::evaluate_predictability(*workload::checkpoint_restart(ckpt), 0, 32);
  ASSERT_GE(traj.per_window_accuracy.size(), 3u);
  // Later windows (pattern learned) beat the first window (cold start).
  // Each checkpoint cycle still introduces brand-new file names, whose
  // create ops are inherently unpredictable, so the ceiling is below 1.0.
  EXPECT_GT(traj.per_window_accuracy.back(), traj.per_window_accuracy.front());
  EXPECT_GT(traj.per_window_accuracy.back(), 0.85);
}

TEST(PredictabilityTest, ArgumentValidation) {
  workload::IorConfig ior;
  ior.ranks = 2;
  const auto w = workload::ior_like(ior);
  EXPECT_THROW((void)predict::evaluate_predictability(*w, 5), std::invalid_argument);
  EXPECT_THROW((void)predict::evaluate_predictability(*w, 0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- fabric

TEST(FabricTest, LatencyFloorForTinyMessages) {
  sim::Engine engine;
  net::FabricConfig config;
  config.endpoint_latency = 2_us;
  config.core_latency = 3_us;
  net::Fabric fabric{engine, config, 4};
  SimTime delivered = SimTime::zero();
  fabric.send(0, 1, Bytes::zero(), [&] { delivered = engine.now(); });
  engine.run();
  EXPECT_EQ(delivered, fabric.base_latency());
  EXPECT_EQ(delivered, 7_us);
}

TEST(FabricTest, EndpointLinkBoundsSingleFlow) {
  sim::Engine engine;
  net::FabricConfig config;
  config.endpoint_bandwidth = Bandwidth::from_mib_per_sec(100.0);
  config.endpoint_latency = SimTime::zero();
  config.core_latency = SimTime::zero();
  config.core_links = 8.0;
  net::Fabric fabric{engine, config, 4};
  SimTime delivered = SimTime::zero();
  fabric.send(0, 1, 100_MiB, [&] { delivered = engine.now(); });
  engine.run();
  // Three store-and-forward stages at >= link rate: between 1x and 3x the
  // single-link serialization time.
  EXPECT_GE(delivered.sec(), 1.0);
  EXPECT_LE(delivered.sec(), 3.1);
  EXPECT_EQ(fabric.stats().messages, 1u);
  EXPECT_EQ(fabric.stats().bytes, 100_MiB);
}

TEST(FabricTest, OversubscribedCoreThrottlesManySenders) {
  auto run_with_core = [](double core_links) {
    sim::Engine engine;
    net::FabricConfig config;
    config.endpoint_bandwidth = Bandwidth::from_mib_per_sec(100.0);
    config.endpoint_latency = SimTime::zero();
    config.core_latency = SimTime::zero();
    config.core_links = core_links;
    net::Fabric fabric{engine, config, 16};
    // 8 senders to 8 distinct receivers: endpoint links are not shared,
    // only the core is.
    int done = 0;
    for (net::EndpointId s = 0; s < 8; ++s) {
      fabric.send(s, static_cast<net::EndpointId>(8 + s), 100_MiB, [&] { ++done; });
    }
    engine.run();
    EXPECT_EQ(done, 8);
    return engine.now().sec();
  };
  const double full = run_with_core(8.0);   // core matches aggregate demand
  const double tapered = run_with_core(2.0);  // 4x oversubscribed
  // Store-and-forward pipeline: only the core stage stretches (1 s -> 4 s
  // of a 3-stage, ~3 s pipeline), so ~2x end to end.
  EXPECT_GT(tapered, full * 1.8);
}

TEST(FabricTest, BadEndpointThrows) {
  sim::Engine engine;
  net::Fabric fabric{engine, net::FabricConfig{}, 2};
  EXPECT_THROW(fabric.send(0, 9, Bytes{1}, [] {}), std::out_of_range);
  EXPECT_THROW(net::Fabric(engine, net::FabricConfig{}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pio
