// Overload-control tests (DESIGN.md §14): server-side admission control
// (bounded queues, reject-at-door, CoDel-style shedding), client-side retry
// budgets, per-server circuit breakers, adaptive timeouts and end-to-end
// deadlines — plus the F5 accounting invariants and the counter fold from
// ServerStats through SimRunResult into CampaignPoint.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine/model and drain it in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "driver/sim_driver.hpp"
#include "eval/campaign.hpp"
#include "pfs/disk.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/pfs.hpp"
#include "pfs/resilience.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "workload/kernels.hpp"

namespace pio {
namespace {

using namespace pio::literals;

SimTime ms(double v) { return SimTime::from_ms(v); }
SimTime us(double v) { return SimTime::from_us(v); }

// ------------------------------------------------- backoff overflow (fixed)

TEST(BackoffDelayTest, LargeAttemptCountsSaturateAtMaxBackoff) {
  // Regression: the closed form base * multiplier^(attempt-1) overflows to
  // inf around attempt ~1100 (double), and 0 * inf is NaN — from_sec_ceil
  // on either is undefined behaviour. The fix grows the delay in the
  // clamped domain, so any attempt count lands exactly on max_backoff.
  pfs::RetryPolicy policy;
  policy.base_backoff = ms(1.0);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = ms(200.0);
  policy.jitter_fraction = 0.0;
  sim::Engine engine{1};
  Rng rng = engine.rng_stream(pfs::kRetryRngStream);
  for (const std::uint32_t attempt : {64u, 1000u, 1u << 20, 0xffffffffu}) {
    const SimTime delay = pfs::backoff_delay(policy, attempt, rng);
    EXPECT_EQ(delay, ms(200.0)) << "attempt " << attempt;
  }
}

TEST(BackoffDelayTest, ZeroBaseStaysZeroAtHugeAttempts) {
  // 0 * inf == NaN in the old closed form; must stay exactly zero now.
  pfs::RetryPolicy policy;
  policy.base_backoff = SimTime::zero();
  policy.backoff_multiplier = 10.0;
  policy.max_backoff = ms(200.0);
  policy.jitter_fraction = 0.0;
  sim::Engine engine{1};
  Rng rng = engine.rng_stream(pfs::kRetryRngStream);
  EXPECT_EQ(pfs::backoff_delay(policy, 0xffffffffu, rng), SimTime::zero());
}

TEST(BackoffDelayTest, ScheduleIsMonotoneUntilTheCap) {
  pfs::RetryPolicy policy;
  policy.base_backoff = ms(1.0);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = ms(50.0);
  policy.jitter_fraction = 0.0;
  sim::Engine engine{1};
  Rng rng = engine.rng_stream(pfs::kRetryRngStream);
  SimTime prev = SimTime::zero();
  for (std::uint32_t attempt = 1; attempt <= 128; ++attempt) {
    const SimTime delay = pfs::backoff_delay(policy, attempt, rng);
    EXPECT_GE(delay, prev);
    EXPECT_LE(delay, ms(50.0));
    prev = delay;
  }
  EXPECT_EQ(prev, ms(50.0));
}

TEST(BackoffDelayTest, DecayingMultiplierShrinksWithoutUnderflow) {
  pfs::RetryPolicy policy;
  policy.base_backoff = ms(8.0);
  policy.backoff_multiplier = 0.5;
  policy.max_backoff = ms(200.0);
  policy.jitter_fraction = 0.0;
  sim::Engine engine{1};
  Rng rng = engine.rng_stream(pfs::kRetryRngStream);
  EXPECT_EQ(pfs::backoff_delay(policy, 1, rng), ms(8.0));
  EXPECT_EQ(pfs::backoff_delay(policy, 2, rng), ms(4.0));
  const SimTime tiny = pfs::backoff_delay(policy, 100'000, rng);
  EXPECT_GE(tiny, SimTime::zero());
  EXPECT_LE(tiny, ms(8.0));
}

// ------------------------------------------------- to_string exhaustiveness

template <typename Enum>
void expect_distinct_names(const std::vector<Enum>& values) {
  std::set<std::string> seen;
  for (const Enum v : values) {
    const char* name = pfs::to_string(v);
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name: " << name;
  }
}

TEST(OverloadToStringTest, IoErrorNamesAreExhaustiveAndDistinct) {
  using pfs::IoError;
  expect_distinct_names<IoError>(
      {IoError::kNone, IoError::kNoEntry, IoError::kOstDown, IoError::kMdsDown,
       IoError::kTimeout, IoError::kDataLost, IoError::kStaleMap, IoError::kOverloaded,
       IoError::kCircuitOpen, IoError::kDeadlineExceeded});
}

TEST(OverloadToStringTest, ResilienceEventKindNamesAreExhaustiveAndDistinct) {
  using pfs::ResilienceEventKind;
  expect_distinct_names<ResilienceEventKind>(
      {ResilienceEventKind::kRetry, ResilienceEventKind::kTimeout,
       ResilienceEventKind::kGiveUp, ResilienceEventKind::kFailover,
       ResilienceEventKind::kDegradedRead, ResilienceEventKind::kRebuildStart,
       ResilienceEventKind::kRebuildDone, ResilienceEventKind::kStaleMapRetry,
       ResilienceEventKind::kDetectedDown, ResilienceEventKind::kDetectedUp,
       ResilienceEventKind::kBudgetExhausted, ResilienceEventKind::kBreakerOpen,
       ResilienceEventKind::kBreakerProbe, ResilienceEventKind::kBreakerClose,
       ResilienceEventKind::kDeadlineGiveUp});
}

TEST(OverloadToStringTest, AdmissionPolicyAndOstOutcomeNamesAreDistinct) {
  using pfs::AdmissionPolicy;
  using pfs::OstOutcome;
  expect_distinct_names<AdmissionPolicy>(
      {AdmissionPolicy::kUnbounded, AdmissionPolicy::kRejectAtDoor,
       AdmissionPolicy::kCodelShed});
  expect_distinct_names<OstOutcome>(
      {OstOutcome::kOk, OstOutcome::kRejectedDown, OstOutcome::kRejectedOverload,
       OstOutcome::kShed, OstOutcome::kInterrupted});
}

// --------------------------------------------------- FifoServer CoDel shed

TEST(FifoShedTest, JobsPastTheSojournTargetAreShedAtDequeue) {
  sim::Engine engine{1};
  sim::FifoServer server{engine, "disk"};
  server.set_shed_target(ms(1.0));
  int served = 0, shed = 0;
  // Head job holds the server for 10 ms; both followers wait far past the
  // 1 ms target and must be dropped at dequeue, not served.
  server.submit(ms(10.0), [&] { ++served; });
  for (int i = 0; i < 2; ++i) {
    server.submit(ms(10.0), [&] { ++served; }, [&] { ++shed; });
  }
  engine.run();
  EXPECT_EQ(served, 1);
  EXPECT_EQ(shed, 2);
  EXPECT_EQ(server.stats().shed_jobs, 2u);
  // Sojourn histogram saw every dequeue: the served head plus both sheds.
  EXPECT_EQ(server.stats().sojourn_us.total(), 3u);
  engine.assert_drained();
}

TEST(FifoShedTest, JobsWithoutShedCallbackAreNeverShed) {
  sim::Engine engine{1};
  sim::FifoServer server{engine, "disk"};
  server.set_shed_target(us(1.0));
  int served = 0;
  server.submit(ms(5.0), [&] { ++served; });
  server.submit(ms(5.0), [&] { ++served; });  // waits 5 ms, still served
  engine.run();
  EXPECT_EQ(served, 2);
  EXPECT_EQ(server.stats().shed_jobs, 0u);
  engine.assert_drained();
}

// ------------------------------------------------------- client primitives

TEST(LatencyEstimatorTest, UnseededUsesInitialThenTracksSamples) {
  pfs::RetryPolicy policy;
  policy.initial_timeout = ms(10.0);
  policy.min_timeout = ms(1.0);
  policy.max_timeout = ms(500.0);
  pfs::LatencyEstimator est{policy};
  EXPECT_FALSE(est.seeded());
  EXPECT_EQ(est.timeout(), ms(10.0));
  // First sample: srtt = s, rttvar = s/2, so timeout = s + 4 * s/2 = 3s.
  est.observe(ms(2.0));
  EXPECT_TRUE(est.seeded());
  EXPECT_EQ(est.timeout(), ms(6.0));
  // Identical samples collapse the variance; timeout converges toward srtt
  // (clamped below by min_timeout).
  for (int i = 0; i < 200; ++i) est.observe(ms(2.0));
  EXPECT_LT(est.timeout(), ms(3.0));
  EXPECT_GE(est.timeout(), ms(1.0));
}

TEST(LatencyEstimatorTest, TimeoutClampsToConfiguredBounds) {
  pfs::RetryPolicy policy;
  policy.min_timeout = ms(5.0);
  policy.max_timeout = ms(20.0);
  pfs::LatencyEstimator est{policy};
  est.observe(us(1.0));
  EXPECT_EQ(est.timeout(), ms(5.0));  // floor
  for (int i = 0; i < 50; ++i) est.observe(ms(400.0));
  EXPECT_EQ(est.timeout(), ms(20.0));  // ceiling
}

TEST(RetryBudgetTest, BurstIsCappedAndSuccessesEarnFractions) {
  pfs::RetryBudget budget{0.5, 2.0};
  // Initial burst: exactly `cap` whole retries.
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  // Two successes earn one retry at ratio 0.5.
  budget.deposit();
  EXPECT_FALSE(budget.try_spend());
  budget.deposit();
  EXPECT_TRUE(budget.try_spend());
  // Deposits never exceed the cap.
  for (int i = 0; i < 100; ++i) budget.deposit();
  EXPECT_EQ(budget.tokens(), 2.0);
}

TEST(CircuitBreakerTest, OpensAfterThresholdAndProbeCloses) {
  sim::Engine engine{7};
  Rng rng = engine.rng_stream(pfs::kBreakerRngStream);
  pfs::CircuitBreaker breaker{2, ms(10.0), 0.0};
  EXPECT_TRUE(breaker.admit(SimTime::zero()).allowed);
  EXPECT_FALSE(breaker.record_failure(SimTime::zero(), rng));  // 1 of 2
  EXPECT_TRUE(breaker.record_failure(SimTime::zero(), rng));   // opens
  EXPECT_EQ(breaker.state(), pfs::CircuitBreaker::State::kOpen);
  // Fast-fail inside the open window.
  EXPECT_FALSE(breaker.admit(ms(5.0)).allowed);
  // Window elapsed: exactly one probe is admitted; followers fast-fail
  // until the probe resolves.
  const auto gate = breaker.admit(ms(10.0));
  EXPECT_TRUE(gate.allowed);
  EXPECT_TRUE(gate.probe);
  EXPECT_EQ(breaker.state(), pfs::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.admit(ms(10.0)).allowed);
  // Probe success closes the breaker and traffic flows again.
  EXPECT_TRUE(breaker.record_success());
  EXPECT_EQ(breaker.state(), pfs::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.admit(ms(11.0)).allowed);
}

TEST(CircuitBreakerTest, FailedProbeReopensTheWindow) {
  sim::Engine engine{7};
  Rng rng = engine.rng_stream(pfs::kBreakerRngStream);
  pfs::CircuitBreaker breaker{1, ms(10.0), 0.0};
  EXPECT_TRUE(breaker.record_failure(SimTime::zero(), rng));
  const auto gate = breaker.admit(ms(10.0));
  ASSERT_TRUE(gate.probe);
  EXPECT_TRUE(breaker.record_failure(ms(10.0), rng));  // probe failed: re-open
  EXPECT_EQ(breaker.state(), pfs::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.admit(ms(15.0)).allowed);
}

// --------------------------------------------------- OST admission control

std::unique_ptr<pfs::DiskModel> ssd() { return pfs::make_ssd(pfs::SsdConfig{}); }

TEST(OstAdmissionTest, RejectAtDoorBouncesWithRetryAfterAndAccountsExactly) {
  sim::Engine engine{1};
  pfs::OstServer ost{engine, 0, ssd()};
  pfs::AdmissionConfig admission;
  admission.policy = pfs::AdmissionPolicy::kRejectAtDoor;
  admission.max_queue_depth = 1;
  admission.retry_after_floor = us(100.0);
  ost.set_admission(admission);
  std::uint64_t completed = 0, rejected = 0;
  SimTime max_hint = SimTime::zero();
  for (int i = 0; i < 6; ++i) {
    ost.submit(0, 1_MiB, true, [&](pfs::OstCompletion c) {
      if (c.ok()) {
        ++completed;
      } else {
        ASSERT_EQ(c.outcome, pfs::OstOutcome::kRejectedOverload);
        ++rejected;
        if (c.retry_after > max_hint) max_hint = c.retry_after;
      }
    });
  }
  engine.run();
  EXPECT_GT(completed, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_GE(max_hint, us(100.0));  // hint never below the floor
  const auto& s = ost.stats();
  EXPECT_EQ(s.submitted_ops, 6u);
  EXPECT_EQ(s.overload_rejected_ops, rejected);
  // F5a: every submit resolved exactly one way.
  EXPECT_EQ(s.submitted_ops,
            s.completed_ops + s.rejected_ops + s.overload_rejected_ops + s.shed_ops +
                s.interrupted_ops);
  engine.assert_drained();
}

TEST(OstAdmissionTest, CodelShedDropsStaleQueueEntriesAtDequeue) {
  sim::Engine engine{1};
  pfs::OstServer ost{engine, 0, ssd()};
  pfs::AdmissionConfig admission;
  admission.policy = pfs::AdmissionPolicy::kCodelShed;
  admission.shed_target = us(10.0);
  ost.set_admission(admission);
  std::uint64_t completed = 0, shed = 0;
  // 16 MiB on a ~2 GiB/s SSD holds the head for ~8 ms; everything queued
  // behind waits far past the 10 µs target and is dropped at dequeue.
  for (int i = 0; i < 4; ++i) {
    ost.submit(0, 16_MiB, true, [&](pfs::OstCompletion c) {
      if (c.ok()) {
        ++completed;
      } else {
        ASSERT_EQ(c.outcome, pfs::OstOutcome::kShed);
        EXPECT_GT(c.retry_after, SimTime::zero());
        ++shed;
      }
    });
  }
  engine.run();
  EXPECT_EQ(completed, 1u);
  EXPECT_EQ(shed, 3u);
  const auto& s = ost.stats();
  EXPECT_EQ(s.shed_ops, 3u);
  EXPECT_EQ(s.submitted_ops,
            s.completed_ops + s.rejected_ops + s.overload_rejected_ops + s.shed_ops +
                s.interrupted_ops);
  // The queue's sojourn histogram saw every dequeue.
  EXPECT_EQ(ost.queue_stats().sojourn_us.total(), 4u);
  engine.assert_drained();
}

// --------------------------------------------------- MDS admission control

pfs::PfsConfig tiny_pfs(std::uint32_t osts) {
  pfs::PfsConfig config;
  config.clients = 2;
  config.io_nodes = 1;
  config.osts = osts;
  config.disk_kind = pfs::DiskKind::kSsd;
  config.mds.default_layout = pfs::StripeLayout{Bytes::from_mib(1), osts, 0};
  return config;
}

TEST(MdsAdmissionTest, MetadataStormIsBouncedAndAccountsExactly) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.mds.service_threads = 1;
  config.admission.policy = pfs::AdmissionPolicy::kRejectAtDoor;
  config.admission.max_queue_depth = 1;
  pfs::PfsModel model{engine, config};
  std::uint64_t ok = 0, overloaded = 0;
  for (int i = 0; i < 16; ++i) {
    model.meta(0, pfs::MetaOp::kCreate, "/f" + std::to_string(i), [&](pfs::MetaResult r) {
      if (r.ok()) {
        ++ok;
      } else {
        ASSERT_EQ(r.status, pfs::MetaStatus::kOverloaded);
        ++overloaded;
      }
    });
  }
  engine.run();
  EXPECT_GT(ok, 0u);
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(ok + overloaded, 16u);
  const auto& m = model.mds().stats();
  EXPECT_EQ(m.overload_rejected, overloaded);
  EXPECT_EQ(m.requests, m.ops_total);  // F5a on the MDS
  // Bounced creates must not have mutated the namespace.
  EXPECT_EQ(model.mds().namespace_size(), ok + 1);  // +1 for the root dir
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(MdsAdmissionTest, CodelShedDropsAtThreadGrant) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.mds.service_threads = 1;
  config.admission.policy = pfs::AdmissionPolicy::kCodelShed;
  config.admission.shed_target = us(10.0);
  pfs::PfsModel model{engine, config};
  std::uint64_t ok = 0, overloaded = 0;
  for (int i = 0; i < 16; ++i) {
    model.meta(0, pfs::MetaOp::kCreate, "/f" + std::to_string(i), [&](pfs::MetaResult r) {
      r.ok() ? ++ok : ++overloaded;
    });
  }
  engine.run();
  EXPECT_GT(ok, 0u);
  EXPECT_GT(overloaded, 0u);
  const auto& m = model.mds().stats();
  EXPECT_EQ(m.shed_ops, overloaded);
  EXPECT_EQ(m.requests, m.ops_total);
  EXPECT_EQ(m.sojourn_us.total(), 16u);  // every grant recorded its wait
  engine.assert_drained();
  model.assert_quiescent();
}

// ------------------------------------------------------- end-to-end client

pfs::MetaResult sync_meta(pfs::PfsModel& model, pfs::ClientId c, pfs::MetaOp op,
                          const std::string& path) {
  pfs::MetaResult out;
  model.meta(c, op, path, [&](pfs::MetaResult r) { out = std::move(r); });
  model.engine().run();
  return out;
}

pfs::IoResult sync_io(pfs::PfsModel& model, pfs::ClientId c, const std::string& path,
                      const pfs::StripeLayout& layout, std::uint64_t offset, Bytes size,
                      bool is_write) {
  pfs::IoResult out;
  model.io(c, path, layout, offset, size, is_write, [&](pfs::IoResult r) { out = r; });
  model.engine().run();
  return out;
}

TEST(OverloadEndToEndTest, RejectedOpsRetryAfterTheHintAndSucceed) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.admission.policy = pfs::AdmissionPolicy::kRejectAtDoor;
  config.admission.max_queue_depth = 1;
  config.retry.max_attempts = 8;
  config.retry.base_backoff = us(50.0);
  config.retry.jitter_fraction = 0.0;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  std::uint64_t ok = 0;
  std::vector<pfs::IoResult> results(8);
  for (int i = 0; i < 8; ++i) {
    model.io(0, "/f", created.inode->layout, static_cast<std::uint64_t>(i) << 20, 1_MiB,
             true, [&results, &ok, i](pfs::IoResult r) {
               results[static_cast<std::size_t>(i)] = r;
               if (r.ok) ++ok;
             });
  }
  engine.run();
  const auto& stats = model.resilience_stats();
  EXPECT_GT(stats.overload_rejections, 0u);  // the storm hit the door
  EXPECT_GT(stats.retries, 0u);              // and was absorbed by retries
  EXPECT_EQ(ok, 8u);                         // every op eventually landed
  engine.assert_drained();
  model.assert_quiescent();  // F5a across MDS + OSTs
}

TEST(OverloadEndToEndTest, RetryBudgetBoundsAmplificationUnderPersistentFailure) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  config.retry.max_attempts = 10;
  config.retry.base_backoff = us(50.0);
  config.retry.jitter_fraction = 0.0;
  config.retry.retry_budget = true;
  config.retry.budget_ratio = 0.0;  // nothing earns tokens: burst only
  config.retry.budget_cap = 2.0;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  for (int i = 0; i < 4; ++i) {
    const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 256_KiB, true);
    EXPECT_FALSE(wrote.ok);
  }
  const auto& stats = model.resilience_stats();
  // Without the budget this run would spend 4 * 9 = 36 retries; the bucket
  // allows exactly the burst of 2 (F5b, audited by assert_quiescent).
  EXPECT_EQ(stats.budget_spent, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GT(stats.budget_denied, 0u);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(OverloadEndToEndTest, BreakerFastFailsDuringOutageAndProbeRecloses) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.faults.ost_down(0, SimTime::zero(), ms(10.0));
  config.retry.breaker = true;
  config.retry.breaker_threshold = 2;
  config.retry.breaker_open_base = ms(5.0);
  config.retry.breaker_open_jitter = 0.0;
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  // Two shipment failures trip the threshold-2 breaker...
  EXPECT_EQ(sync_io(model, 0, "/f", created.inode->layout, 0, 64_KiB, true).error,
            pfs::IoError::kOstDown);
  EXPECT_EQ(sync_io(model, 0, "/f", created.inode->layout, 0, 64_KiB, true).error,
            pfs::IoError::kOstDown);
  EXPECT_EQ(model.resilience_stats().breaker_opens, 1u);
  // ...and the next op never reaches the server: it fast-fails client-side.
  EXPECT_EQ(sync_io(model, 0, "/f", created.inode->layout, 0, 64_KiB, true).error,
            pfs::IoError::kCircuitOpen);
  EXPECT_GT(model.resilience_stats().breaker_fast_fails, 0u);
  // Advance past both the open window and the outage; the half-open probe
  // is admitted, succeeds, and closes the breaker.
  engine.schedule_at(ms(20.0), [] {});
  engine.run();
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 64_KiB, true);
  EXPECT_TRUE(wrote.ok);
  const auto& stats = model.resilience_stats();
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_closes, 1u);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(OverloadEndToEndTest, DeadlineExpiresAcrossAttemptsInsteadOfResetting) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.faults.ost_down(0, SimTime::zero(), SimTime::from_sec(3600.0));
  config.retry.max_attempts = 100;
  config.retry.base_backoff = ms(2.0);
  config.retry.backoff_multiplier = 1.0;
  config.retry.jitter_fraction = 0.0;
  config.retry.op_deadline = ms(10.0);
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 64_KiB, true);
  EXPECT_FALSE(wrote.ok);
  EXPECT_EQ(wrote.error, pfs::IoError::kDeadlineExceeded);
  // The 100-attempt policy never ran anywhere near 100 attempts: the
  // deadline cut the retry loop after ~10ms / 2ms backoffs.
  EXPECT_LT(wrote.attempts, 10u);
  EXPECT_EQ(model.resilience_stats().deadline_giveups, 1u);
  EXPECT_EQ(model.resilience_stats().giveups, 0u);  // distinct give-up reason
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(OverloadEndToEndTest, AdaptiveTimeoutAbandonsOpsFarBeyondTheEstimate) {
  sim::Engine engine{1};
  auto config = tiny_pfs(1);
  config.retry.max_attempts = 2;
  config.retry.base_backoff = us(50.0);
  config.retry.jitter_fraction = 0.0;
  config.retry.adaptive_timeout = true;
  config.retry.initial_timeout = us(50.0);
  config.retry.min_timeout = us(50.0);
  pfs::PfsModel model{engine, config};
  const auto created = sync_meta(model, 0, pfs::MetaOp::kCreate, "/f");
  ASSERT_TRUE(created.ok());
  // A 16 MiB write takes ~8 ms of SSD service — two orders of magnitude
  // past the 50 µs adaptive timeout, so every attempt is abandoned.
  const auto wrote = sync_io(model, 0, "/f", created.inode->layout, 0, 16_MiB, true);
  EXPECT_FALSE(wrote.ok);
  EXPECT_EQ(wrote.error, pfs::IoError::kTimeout);
  EXPECT_GE(model.resilience_stats().timeouts, 2u);
  engine.assert_drained();
  model.assert_quiescent();
}

// ----------------------------------------------------------- counter folds

TEST(OverloadFoldTest, DriverFoldsServerAndClientOverloadCounters) {
  sim::Engine engine{3};
  auto config = tiny_pfs(2);
  config.clients = 4;
  config.admission.policy = pfs::AdmissionPolicy::kRejectAtDoor;
  config.admission.max_queue_depth = 1;
  config.retry.max_attempts = 8;
  config.retry.base_backoff = us(50.0);
  pfs::PfsModel model{engine, config};
  driver::SimRunConfig run_config;
  run_config.layout = pfs::StripeLayout{Bytes::from_mib(1), 2, 0};
  driver::ExecutionDrivenSimulator sim{engine, model, run_config};
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  const auto result = sim.run(*workload::ior_like(ior));
  EXPECT_GT(result.overload_rejections, 0u);
  EXPECT_GT(result.server_overload_rejected, 0u);
  EXPECT_EQ(result.server_overload_rejected,
            model.server_overload_totals().rejected);
  engine.assert_drained();
  model.assert_quiescent();
}

TEST(OverloadFoldTest, CampaignFoldsOverloadCountersIntoPointsAndReport) {
  eval::CampaignConfig config;
  config.testbed = tiny_pfs(2);
  config.testbed.clients = 4;
  config.testbed.admission.policy = pfs::AdmissionPolicy::kRejectAtDoor;
  config.testbed.admission.max_queue_depth = 1;
  config.testbed.retry.max_attempts = 8;
  config.testbed.retry.base_backoff = us(50.0);
  config.model = tiny_pfs(2);
  config.model.clients = 4;
  config.layout = pfs::StripeLayout{Bytes::from_mib(1), 2, 0};
  config.iterations = 1;
  config.seed = 5;
  workload::IorConfig ior;
  ior.ranks = 4;
  ior.block_size = Bytes::from_mib(4);
  ior.transfer_size = Bytes::from_mib(1);
  const auto w = workload::ior_like(ior);
  eval::Campaign campaign{config};
  const auto result = campaign.run({w.get()});
  std::uint64_t rejections = 0, server_rejected = 0;
  for (const auto& it : result.iterations) {
    for (const auto& p : it.points) {
      rejections += p.overload_rejections;
      server_rejected += p.server_overload_rejected;
    }
  }
  EXPECT_GT(rejections, 0u);
  EXPECT_GT(server_rejected, 0u);
  EXPECT_NE(result.to_string().find("overload (measured runs):"), std::string::npos);
}

}  // namespace
}  // namespace pio
