// Unit tests for the mini message-passing runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "par/comm.hpp"

namespace pio::par {
namespace {

TEST(CodecTest, EncodeDecodeRoundTrip) {
  const double x = 3.25;
  EXPECT_DOUBLE_EQ(decode<double>(encode(x)), x);
  const std::vector<int> v{1, 2, 3};
  EXPECT_EQ(decode_range<int>(encode_range<int>(v)), v);
  EXPECT_THROW((void)decode<int>(Buffer(3)), std::invalid_argument);
  EXPECT_THROW((void)decode_range<int>(Buffer(5)), std::invalid_argument);
}

TEST(RuntimeTest, SendRecvMatchesSourceAndTag) {
  Runtime runtime{2};
  runtime.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 123);
      comm.send_value(1, 8, 456);
    } else {
      // Receive out of send order: tag matching must hold.
      EXPECT_EQ(comm.recv_value<int>(0, 8), 456);
      EXPECT_EQ(comm.recv_value<int>(0, 7), 123);
    }
  });
}

TEST(RuntimeTest, NegativeUserTagRejected) {
  Runtime runtime{2};
  EXPECT_THROW(runtime.run([](Comm& comm) {
                 if (comm.rank() == 0) comm.send(1, -3, Buffer{});
                 else (void)comm.recv(0, 0);
               }),
               std::invalid_argument);
}

TEST(RuntimeTest, BarrierSynchronizesPhases) {
  constexpr int kRanks = 8;
  Runtime runtime{kRanks};
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violation{false};
  runtime.run([&](Comm& comm) {
    for (int phase = 0; phase < 5; ++phase) {
      ++phase_counter;
      comm.barrier();
      // After the barrier, every rank must have incremented this phase.
      if (phase_counter.load() < (phase + 1) * kRanks) violation = true;
      comm.barrier();
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_counter.load(), 5 * kRanks);
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  Runtime runtime{n};
  for (int root = 0; root < n; ++root) {
    runtime.run([root](Comm& comm) {
      Buffer data;
      if (comm.rank() == root) data = encode(root * 1000 + 17);
      const Buffer out = comm.bcast(root, std::move(data));
      EXPECT_EQ(decode<int>(out), root * 1000 + 17);
    });
  }
}

TEST_P(CollectiveTest, ReduceAndAllreduce) {
  const int n = GetParam();
  Runtime runtime{n};
  runtime.run([n](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double total = comm.reduce(0, mine, ReduceOp::kSum);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(total, n * (n + 1) / 2.0);
    }
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kMax), static_cast<double>(n));
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(mine, ReduceOp::kSum), n * (n + 1) / 2.0);
  });
}

TEST_P(CollectiveTest, GatherScatterAlltoall) {
  const int n = GetParam();
  Runtime runtime{n};
  runtime.run([n](Comm& comm) {
    // Gather: root sees every rank's value in order.
    const auto gathered = comm.gather(0, encode(comm.rank() * 2));
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(decode<int>(gathered[static_cast<std::size_t>(r)]), r * 2);
      }
    }
    comm.barrier();
    // Scatter: each rank gets its slot.
    std::vector<Buffer> to_scatter;
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) to_scatter.push_back(encode(100 + r));
    }
    const Buffer mine = comm.scatter(0, std::move(to_scatter));
    EXPECT_EQ(decode<int>(mine), 100 + comm.rank());
    comm.barrier();
    // Alltoall: value (src*100 + dst) travels src -> dst.
    std::vector<Buffer> out;
    for (int dst = 0; dst < n; ++dst) out.push_back(encode(comm.rank() * 100 + dst));
    const auto in = comm.alltoall(std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(decode<int>(in[static_cast<std::size_t>(src)]), src * 100 + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(RuntimeTest, ExceptionsPropagateToCaller) {
  Runtime runtime{4};
  EXPECT_THROW(runtime.run([](Comm& comm) {
                 if (comm.rank() == 2) throw std::runtime_error("rank 2 failed");
               }),
               std::runtime_error);
  // The runtime is reusable after a failed run.
  runtime.run([](Comm& comm) { comm.barrier(); });
}

TEST(RuntimeTest, PingPongManyMessages) {
  Runtime runtime{2};
  runtime.run([](Comm& comm) {
    for (int i = 0; i < 500; ++i) {
      if (comm.rank() == 0) {
        comm.send_value(1, 1, i);
        EXPECT_EQ(comm.recv_value<int>(1, 2), i + 1);
      } else {
        const int v = comm.recv_value<int>(0, 1);
        comm.send_value(0, 2, v + 1);
      }
    }
  });
}

}  // namespace
}  // namespace pio::par
