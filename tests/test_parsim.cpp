// pio::sim sharded parallel core (DESIGN.md §16): payload arenas, the
// calendar queue, and conservative lookahead-sharded execution.
//
// Three families of guarantees under test. First, allocation plumbing:
// PayloadArena recycles drained blocks whole, oversize payloads fall back to
// the plain heap, and every payload is released by engine teardown or fire.
// Second, queue equivalence: the calendar queue pops the identical
// (time, insertion-seq) order as the 4-ary heap on random storms with
// cancellations, across grows, shrinks, and far-future saturation. Third,
// the sharded determinism contract the whole layer exists to preserve: a
// facility's FNV digest — across plain, faulted, durability, overloaded and
// cached cell configurations — must be byte-identical at 1, 2, 4 and 8
// shards, for both queue kinds, with arenas on or off.
//
// piolint: allow-file(C2) — every capture-by-reference handler below is
// drained by an engine or facility run inside the same scope.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/fnv.hpp"
#include "common/rng.hpp"
#include "eval/facility.hpp"
#include "exec/pool.hpp"
#include "fault/injector.hpp"
#include "pfs/pfs.hpp"
#include "sim/arena.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/shard.hpp"
#include "workload/dlio.hpp"
#include "workload/kernels.hpp"
#include "workload/workflow.hpp"

namespace pio {
namespace {

// ------------------------------------------------------------ payload arena

TEST(PayloadArena, RecyclesDrainedBlocksInsteadOfGrowing) {
  // Small blocks so a handful of allocations spans several of them.
  constexpr std::size_t kBlockBytes = 1024;
  constexpr std::size_t kPayloadBytes = 64;  // already max_align_t-rounded
  const std::size_t need = sim::detail::kPayloadHeaderBytes + kPayloadBytes;
  const std::size_t per_block = kBlockBytes / need;
  ASSERT_GE(per_block, 2u);

  sim::PayloadArena arena{kBlockBytes};
  std::vector<void*> live;
  // Three full blocks plus one payload into a fourth.
  for (std::size_t i = 0; i < 3 * per_block + 1; ++i) live.push_back(arena.allocate(kPayloadBytes));
  EXPECT_EQ(arena.live_payloads(), 3 * per_block + 1);
  EXPECT_EQ(arena.blocks(), 4u);

  for (void* p : live) sim::detail::release_payload(p);
  live.clear();
  EXPECT_EQ(arena.live_payloads(), 0u);
  EXPECT_EQ(arena.blocks(), 4u) << "drained blocks are retained for reuse, not freed";

  // A second wave must cycle through the drained blocks, not allocate new ones.
  for (std::size_t i = 0; i < 2 * per_block; ++i) live.push_back(arena.allocate(kPayloadBytes));
  EXPECT_GE(arena.blocks_recycled(), 1u);
  EXPECT_EQ(arena.blocks(), 4u) << "recycling must satisfy the second wave without growth";
  for (void* p : live) sim::detail::release_payload(p);
  EXPECT_EQ(arena.live_payloads(), 0u);
}

TEST(PayloadArena, OversizePayloadBypassesBlocksViaPlainHeap) {
  sim::PayloadArena arena{512};
  void* p = arena.allocate(2048);  // cannot fit in any block
  ASSERT_NE(p, nullptr);
  // Plain-heap payloads are not arena-tracked: no block, no live count.
  EXPECT_EQ(arena.live_payloads(), 0u);
  EXPECT_EQ(arena.blocks(), 0u);
  std::fill_n(static_cast<unsigned char*>(p), 2048, 0xab);  // the storage is real
  sim::detail::release_payload(p);
}

TEST(PayloadArena, TrimKeepsAtMostOneSpareBlock) {
  constexpr std::size_t kBlockBytes = 1024;
  const std::size_t need = sim::detail::kPayloadHeaderBytes + 64;
  const std::size_t per_block = kBlockBytes / need;

  sim::PayloadArena arena{kBlockBytes};
  std::vector<void*> live;
  for (std::size_t i = 0; i < 3 * per_block + 1; ++i) live.push_back(arena.allocate(64));
  ASSERT_EQ(arena.blocks(), 4u);
  for (void* p : live) sim::detail::release_payload(p);

  arena.trim();  // three retired blocks drained: keep one spare, free two
  EXPECT_EQ(arena.blocks(), 2u) << "bump target plus exactly one spare after trim";
  arena.trim();  // idempotent
  EXPECT_EQ(arena.blocks(), 2u);
}

TEST(PayloadArena, EngineReleasesEveryArenaPayloadByRunEnd) {
  for (const auto kind : {sim::QueueKind::kQuadHeap, sim::QueueKind::kCalendar}) {
    sim::PayloadArena arena{4096};
    sim::Engine engine{1, sim::EngineOptions{kind}};
    engine.use_arena(&arena);
    std::uint64_t fired = 0;
    std::vector<sim::EventId> ids;
    for (std::uint64_t i = 0; i < 200; ++i) {
      // Fat capture (> Task::kInlineBytes) forces the oversize/arena path.
      std::array<std::uint64_t, 16> fat{};
      fat[0] = i;
      ids.push_back(engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(i * 7)),
                                       [&fired, fat] { fired += fat[0] != 0 || true; }));
    }
    EXPECT_GT(arena.live_payloads(), 0u) << "fat captures must land in the arena";
    for (std::uint64_t i = 0; i < 200; i += 4) engine.cancel(ids[i]);
    engine.run();
    engine.assert_drained();
    EXPECT_EQ(fired, 150u);
    EXPECT_EQ(arena.live_payloads(), 0u)
        << "every payload — fired or cancelled — must be released by run end";
    EXPECT_GE(arena.blocks(), 1u);
    arena.trim();
    EXPECT_LE(arena.blocks(), 2u);
  }
}

// ----------------------------------------------------------- calendar queue

TEST(CalendarQueue, PopsTrueMinimumAcrossGrowsAndShrinks) {
  sim::detail::CalendarQueue q;
  std::mt19937_64 rng{7};
  // Mirror multiset: every pop_min must match the true (time, seq) minimum,
  // through interleaved push/pop bursts that force both grow and shrink
  // rebuilds with re-estimated bucket widths.
  std::multiset<std::pair<std::int64_t, std::uint64_t>> mirror;
  std::uint64_t seq = 0;
  auto push_random = [&] {
    const auto ns = static_cast<std::int64_t>(rng() % 5'000'000u);
    const SimTime t = SimTime::from_ns(ns);
    q.prepare(t);
    q.push_prepared(t, seq, seq + 1);
    mirror.insert({ns, seq});
    ++seq;
  };
  auto pop_checked = [&] {
    const sim::detail::Entry e = q.pop_min();
    ASSERT_FALSE(mirror.empty());
    EXPECT_EQ(std::make_pair(e.time.ns(), e.seq), *mirror.begin());
    mirror.erase(mirror.begin());
  };
  for (int i = 0; i < 3000; ++i) push_random();
  EXPECT_GT(q.bucket_count(), 8u) << "3000 entries must have grown the calendar";
  for (int i = 0; i < 2900; ++i) pop_checked();
  for (int i = 0; i < 40; ++i) push_random();  // prepare() shrinks the drained calendar
  while (!q.empty()) pop_checked();
  EXPECT_TRUE(mirror.empty());
  EXPECT_GE(q.resizes(), 2u) << "expected at least one grow and one shrink rebuild";
}

TEST(CalendarQueue, EqualTimesPopInInsertionOrder) {
  sim::detail::CalendarQueue q;
  const SimTime t = SimTime::from_ns(777);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    q.prepare(t);
    q.push_prepared(t, seq, seq + 1);
  }
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const sim::detail::Entry e = q.pop_min();
    EXPECT_EQ(e.time.ns(), 777);
    EXPECT_EQ(e.seq, seq) << "equal-time entries must pop in insertion order";
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureEntriesFallBackToDirectScan) {
  // Events near SimTime::max() saturate the lap scan's slice arithmetic; the
  // queue must fall back to the direct bucket-minima scan, not wedge or
  // mis-order.
  sim::detail::CalendarQueue q;
  const std::int64_t far = SimTime::max().ns();
  std::uint64_t seq = 0;
  auto push = [&](std::int64_t ns) {
    const SimTime t = SimTime::from_ns(ns);
    q.prepare(t);
    q.push_prepared(t, seq, seq + 1);
    ++seq;
  };
  push(far);
  push(far - 1);
  push(1000);
  push(10);
  push(far);  // equal far times: seq tie-break must still hold
  std::vector<std::pair<std::int64_t, std::uint64_t>> popped;
  while (!q.empty()) {
    const sim::detail::Entry e = q.pop_min();
    popped.emplace_back(e.time.ns(), e.seq);
  }
  const std::vector<std::pair<std::int64_t, std::uint64_t>> want{
      {10, 3}, {1000, 2}, {far - 1, 1}, {far, 0}, {far, 4}};
  EXPECT_EQ(popped, want);
}

/// Fire order of a dense random storm with cancellations and
/// self-rescheduling cascades, as (now, marker) pairs.
std::vector<std::pair<std::int64_t, std::uint64_t>> storm_fire_log(sim::QueueKind kind) {
  sim::Engine engine{1, sim::EngineOptions{kind}};
  std::vector<std::pair<std::int64_t, std::uint64_t>> log;
  std::mt19937_64 rng{12345};
  std::vector<sim::EventId> ids;
  ids.reserve(4000);
  // Dense range: ~20ns mean gap over 4000 events guarantees many exact ties.
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const auto t = SimTime::from_ns(static_cast<std::int64_t>(rng() % 200'000u));
    ids.push_back(
        engine.schedule_at(t, [&log, &engine, i] { log.emplace_back(engine.now().ns(), i); }));
  }
  // Cancel a random quarter (duplicates hit the already-cancelled path);
  // enough dead entries to trigger eager compaction on both queue kinds.
  std::mt19937_64 crng{777};
  for (int k = 0; k < 1000; ++k) engine.cancel(ids[crng() % ids.size()]);
  // Self-rescheduling cascades walk the cursor forward bucket by bucket and
  // push beyond the initial time range.
  auto chain = std::make_shared<std::function<void(std::uint64_t, int)>>();
  *chain = [&engine, &log, chain](std::uint64_t marker, int hops) {
    log.emplace_back(engine.now().ns(), marker);
    if (hops > 0) {
      engine.schedule_after(SimTime::from_ns(static_cast<std::int64_t>(marker % 977 + 1)),
                            [chain, marker, hops] { (*chain)(marker + 1, hops - 1); });
    }
  };
  for (std::uint64_t c = 0; c < 32; ++c) {
    engine.schedule_at(SimTime::from_ns(static_cast<std::int64_t>(c * 6151)),
                       [chain, c] { (*chain)(100'000 + c * 1000, 40); });
  }
  engine.run();
  engine.assert_drained();
  *chain = {};  // break the self-capturing shared_ptr cycle
  return log;
}

TEST(QueueEquivalence, CalendarMatchesHeapFireOrderOnRandomStorm) {
  // The engine's total order is (time, insertion seq) — the queue choice is
  // a pure performance knob and must never leak into the fire sequence.
  EXPECT_EQ(storm_fire_log(sim::QueueKind::kQuadHeap), storm_fire_log(sim::QueueKind::kCalendar));
}

TEST(QueueEquivalence, PeekNextTimeSkimsCancelledEntries) {
  for (const auto kind : {sim::QueueKind::kQuadHeap, sim::QueueKind::kCalendar}) {
    sim::Engine engine{1, sim::EngineOptions{kind}};
    EXPECT_FALSE(engine.peek_next_time().has_value());
    const sim::EventId a = engine.schedule_at(SimTime::from_us(10.0), [] {});
    engine.schedule_at(SimTime::from_us(20.0), [] {});
    ASSERT_TRUE(engine.peek_next_time().has_value());
    EXPECT_EQ(engine.peek_next_time()->ns(), SimTime::from_us(10.0).ns());
    EXPECT_TRUE(engine.cancel(a));
    EXPECT_EQ(engine.peek_next_time()->ns(), SimTime::from_us(20.0).ns())
        << "peek must skim the cancelled head, not report it";
    engine.schedule_at(SimTime::from_us(5.0), [] {});
    EXPECT_EQ(engine.peek_next_time()->ns(), SimTime::from_us(5.0).ns());
    EXPECT_EQ(engine.run(), 2u);
    engine.assert_drained();
  }
}

// ----------------------------------------------------------- sharded engine

TEST(ShardedEngine, SendContractViolationsThrow) {
  sim::ShardedConfig config;
  config.lookahead = SimTime::from_us(10.0);
  sim::ShardedEngine se{{1, 2}, config};
  EXPECT_THROW(se.send(0, 1, SimTime::from_us(1.0), [] {}), std::logic_error)
      << "delay below lookahead breaks conservative correctness";
  EXPECT_THROW(se.send(0, 2, SimTime::from_us(10.0), [] {}), std::out_of_range);
  EXPECT_THROW(se.send(2, 0, SimTime::from_us(10.0), [] {}), std::out_of_range);
  se.send(0, 1, SimTime::from_us(10.0), [] {});  // exactly lookahead is legal
}

TEST(ShardedEngine, MailboxCapacityOverflows) {
  sim::ShardedConfig config;
  config.mailbox_capacity = 4;
  sim::ShardedEngine se{{1, 2}, config};
  for (int k = 0; k < 4; ++k) se.send(0, 1, config.lookahead, [] {});
  EXPECT_THROW(se.send(0, 1, config.lookahead, [] {}), std::overflow_error);
}

TEST(ShardedEngine, CrossDomainScheduleFailsLoudly) {
  if (!sim::check::kEnabled) GTEST_SKIP() << "confinement guard compiled out";
  sim::ShardedEngine se{{1, 2}, sim::ShardedConfig{}};
  se.domain(0).schedule_at(SimTime::from_us(1.0), [&se] {
    // A handler must never schedule directly into a foreign domain — that is
    // exactly the cross-shard race the mailbox protocol exists to prevent.
    se.domain(1).schedule_after(SimTime::from_us(1.0), [] {});
  });
  exec::Pool pool{1};
  EXPECT_THROW(se.run(pool), std::logic_error);
}

TEST(ShardedEngine, SendFromForeignDomainHandlerFailsLoudly) {
  if (!sim::check::kEnabled) GTEST_SKIP() << "confinement guard compiled out";
  sim::ShardedConfig config;
  sim::ShardedEngine se{{1, 2}, config};
  se.domain(0).schedule_at(SimTime::from_us(1.0), [&se, &config] {
    se.send(1, 0, config.lookahead, [] {});  // claims domain 1 while running domain 0
  });
  exec::Pool pool{1};
  EXPECT_THROW(se.run(pool), std::logic_error);
}

TEST(ShardedEngine, MailboxDrainOrderIsDeliverSrcSeq) {
  sim::ShardedConfig config;
  config.lookahead = SimTime::from_us(10.0);
  sim::ShardedEngine se{{1, 2, 3}, config};
  std::vector<std::uint64_t> order;
  // Enqueue src 1 before src 0, all at the same deliver time: the drain must
  // sort by (deliver, src, per-src seq), not enqueue order.
  for (std::uint64_t k = 0; k < 3; ++k) {
    se.send(1, 2, config.lookahead, [&order, k] { order.push_back(100 + k); });
  }
  for (std::uint64_t k = 0; k < 3; ++k) {
    se.send(0, 2, config.lookahead, [&order, k] { order.push_back(k); });
  }
  exec::Pool pool{1};
  se.run(pool);
  se.assert_drained();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 100, 101, 102}));
  EXPECT_EQ(se.messages_delivered(), 6u);
}

constexpr std::uint32_t kSynthDomains = 4;

/// A synthetic multi-domain workload: local tick trains per domain plus
/// cross-domain relay cascades. Returns an FNV digest over every domain's
/// (time, marker) fire log and the window/message/event counters.
std::uint64_t synthetic_sharded_digest(std::uint32_t shards) {
  sim::ShardedConfig config;
  config.shards = shards;
  config.lookahead = SimTime::from_us(5.0);
  std::vector<std::uint64_t> seeds;
  for (std::uint32_t d = 0; d < kSynthDomains; ++d) seeds.push_back(derive_seed(99, 3, 0, d));
  sim::ShardedEngine se{std::move(seeds), config};
  std::vector<std::vector<std::pair<std::int64_t, std::uint64_t>>> logs(kSynthDomains);

  // Relay: record on arrival, forward to the next domain while hops remain.
  // Each domain's log is written only by that domain's events, so the logs
  // need no synchronisation at any shard count.
  auto relay = std::make_shared<std::function<void(std::uint32_t, std::uint64_t, int)>>();
  *relay = [&se, &logs, relay](std::uint32_t dom, std::uint64_t marker, int hops) {
    logs[dom].emplace_back(se.domain(dom).now().ns(), marker);
    if (hops > 0) {
      const std::uint32_t next = (dom + 1) % kSynthDomains;
      const SimTime delay =
          SimTime::from_us(5.0) + SimTime::from_ns(static_cast<std::int64_t>(marker % 3));
      se.send(dom, next, delay, [relay, next, marker, hops] { (*relay)(next, marker + 1, hops - 1); });
    }
  };
  for (std::uint32_t d = 0; d < kSynthDomains; ++d) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      se.domain(d).schedule_at(SimTime::from_us(static_cast<double>(i * 3 + d)),
                               [&logs, &se, d, i] {
                                 logs[d].emplace_back(se.domain(d).now().ns(), 1000 + i);
                               });
    }
    se.send(d, (d + 1) % kSynthDomains, config.lookahead,
            [relay, d] { (*relay)((d + 1) % kSynthDomains, d * 10'000, 20); });
  }
  exec::Pool pool{static_cast<int>(shards)};
  se.run(pool);
  se.assert_drained();
  *relay = {};  // break the self-capturing shared_ptr cycle

  Fnv64 fnv;
  for (std::uint32_t d = 0; d < kSynthDomains; ++d) {
    fnv.mix(logs[d].size());
    for (const auto& [ns, marker] : logs[d]) {
      fnv.mix(static_cast<std::uint64_t>(ns));
      fnv.mix(marker);
    }
  }
  fnv.mix(se.windows());
  fnv.mix(se.messages_delivered());
  fnv.mix(se.events_executed());
  return fnv.digest();
}

TEST(ShardedEngine, SyntheticDigestIdenticalAt1_2_4_8Shards) {
  // Windows, message order and every domain's fire log must be a pure
  // function of the event structure — never of the shard count (8 clamps to
  // the 4 domains and must still match).
  const auto serial = synthetic_sharded_digest(1);
  EXPECT_EQ(serial, synthetic_sharded_digest(2));
  EXPECT_EQ(serial, synthetic_sharded_digest(4));
  EXPECT_EQ(serial, synthetic_sharded_digest(8));
}

// --------------------------------------------- facility digests vs shards

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

/// Build an `n_cells`-tenant facility cycling three small workload shapes
/// (IOR, shuffled DLIO, a DAG workflow), apply `shape` to every cell, run it
/// and return the facility digest.
std::uint64_t facility_digest(std::uint32_t shards, std::uint64_t seed,
                              const std::function<void(eval::FacilityCell&)>& shape,
                              std::size_t n_cells = 3,
                              sim::QueueKind queue = sim::QueueKind::kQuadHeap,
                              bool arenas = true) {
  workload::IorConfig ior;
  ior.ranks = 2;
  ior.block_size = Bytes::from_mib(1);
  ior.transfer_size = Bytes::from_kib(256);
  const auto wa = workload::ior_like(ior);

  workload::DlioConfig dlio;
  dlio.ranks = 2;
  dlio.samples = 32;
  dlio.samples_per_file = 16;
  dlio.batch_size = 4;
  dlio.shuffle = true;
  dlio.seed = 5;
  const auto wb = workload::dlio_like(dlio);

  workload::WorkflowConfig wf;
  wf.workers = 2;
  wf.stages = 1;
  wf.tasks_per_stage = 4;
  wf.files_per_task = 1;
  const auto wc = workload::workflow_dag(wf);

  const workload::Workload* shapes[] = {wa.get(), wb.get(), wc.get()};
  std::vector<eval::FacilityCell> cells(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    cells[i].system = small_pfs();
    cells[i].workload = shapes[i % 3];
    shape(cells[i]);
  }

  eval::FacilityConfig config;
  config.seed = seed;
  config.shards = shards;
  config.threads = static_cast<int>(shards);
  config.queue = queue;
  config.payload_arenas = arenas;
  return eval::run_facility(config, cells).digest();
}

void shape_plain(eval::FacilityCell&) {}

void shape_fault(eval::FacilityCell& cell) {
  cell.system.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0))
      .ost_straggler(2, SimTime::from_ms(1.0), SimTime::from_ms(30.0), 5.0);
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 40.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  cell.system.fault_injector = injector;
  cell.system.retry.max_attempts = 3;
  cell.system.retry.op_timeout = SimTime::from_ms(40.0);
  cell.system.retry.failover = true;
}

void shape_durability(eval::FacilityCell& cell) {
  cell.system.durability.track_contents = true;
  cell.system.durability.rebuild_bandwidth = Bandwidth::from_mib_per_sec(128.0);
  cell.run.layout.replicas = 2;  // the driver's create layout wins over the MDS default
  cell.system.faults.ost_down(1, SimTime::from_ms(2.0), SimTime::from_ms(12.0));
  cell.system.retry.max_attempts = 2;
  cell.system.retry.failover = true;
}

void shape_overload(eval::FacilityCell& cell) {
  fault::InjectorConfig injector;
  injector.horizon = SimTime::from_ms(100.0);
  injector.ost_crash_rate_hz = 40.0;
  injector.ost_outage_mean = SimTime::from_ms(4.0);
  cell.system.fault_injector = injector;
  cell.system.admission.policy = pfs::AdmissionPolicy::kCodelShed;
  cell.system.admission.shed_target = SimTime::from_ms(2.0);
  cell.system.retry.max_attempts = 4;
  cell.system.retry.adaptive_timeout = true;
  cell.system.retry.initial_timeout = SimTime::from_ms(20.0);
  cell.system.retry.op_deadline = SimTime::from_ms(120.0);
  cell.system.retry.retry_budget = true;
  cell.system.retry.budget_ratio = 0.5;
  cell.system.retry.breaker = true;
  cell.system.retry.breaker_threshold = 3;
  cell.system.retry.breaker_open_base = SimTime::from_ms(10.0);
}

void shape_cached(eval::FacilityCell& cell) {
  cell.run.cache.enabled = true;
  cell.run.cache.scope = cache::CacheScope::kShared;
  cell.run.cache.policy = cache::EvictionPolicy::kTwoQ;
  cell.run.cache.prefetch = cache::PrefetchMode::kEpoch;
  cell.run.cache.capacity_pages = 96;
  cell.run.cache.max_dirty_pages = 32;
}

TEST(FacilityShardDeterminism, PlainDigestIdenticalAt1_2_4_8Shards) {
  // Seven cells plus the coordinator make eight domains, so shards=8 is a
  // real partition, not a clamp.
  const auto serial = facility_digest(1, 11, shape_plain, 7);
  EXPECT_EQ(serial, facility_digest(2, 11, shape_plain, 7));
  EXPECT_EQ(serial, facility_digest(4, 11, shape_plain, 7));
  EXPECT_EQ(serial, facility_digest(8, 11, shape_plain, 7));
}

TEST(FacilityShardDeterminism, FaultDigestIdenticalAt1_2_4_8Shards) {
  const auto serial = facility_digest(1, 13, shape_fault);
  EXPECT_EQ(serial, facility_digest(2, 13, shape_fault));
  EXPECT_EQ(serial, facility_digest(4, 13, shape_fault));
  EXPECT_EQ(serial, facility_digest(8, 13, shape_fault));
}

TEST(FacilityShardDeterminism, DurabilityDigestIdenticalAt1_2_4_8Shards) {
  const auto serial = facility_digest(1, 21, shape_durability);
  EXPECT_EQ(serial, facility_digest(2, 21, shape_durability));
  EXPECT_EQ(serial, facility_digest(4, 21, shape_durability));
  EXPECT_EQ(serial, facility_digest(8, 21, shape_durability));
}

TEST(FacilityShardDeterminism, OverloadDigestIdenticalAt1_2_4_8Shards) {
  const auto serial = facility_digest(1, 17, shape_overload);
  EXPECT_EQ(serial, facility_digest(2, 17, shape_overload));
  EXPECT_EQ(serial, facility_digest(4, 17, shape_overload));
  EXPECT_EQ(serial, facility_digest(8, 17, shape_overload));
}

TEST(FacilityShardDeterminism, CachedDigestIdenticalAt1_2_4_8Shards) {
  const auto serial = facility_digest(1, 31, shape_cached);
  EXPECT_EQ(serial, facility_digest(2, 31, shape_cached));
  EXPECT_EQ(serial, facility_digest(4, 31, shape_cached));
  EXPECT_EQ(serial, facility_digest(8, 31, shape_cached));
}

TEST(FacilityShardDeterminism, QueueKindAndArenasAreDigestNeutral) {
  // The scheduler queue and the payload allocator are performance knobs;
  // neither may move a digest by a single bit.
  const auto baseline = facility_digest(2, 11, shape_plain);
  EXPECT_EQ(baseline, facility_digest(2, 11, shape_plain, 3, sim::QueueKind::kCalendar, true));
  EXPECT_EQ(baseline, facility_digest(2, 11, shape_plain, 3, sim::QueueKind::kQuadHeap, false));
  EXPECT_EQ(baseline, facility_digest(2, 11, shape_plain, 3, sim::QueueKind::kCalendar, false));
}

TEST(FacilityShardDeterminism, DifferentSeedsStillDiverge) {
  // A seed-sensitive (injector-driven) config: a digest that fails to move
  // with the seed means dead seed plumbing into the domain engines.
  EXPECT_NE(facility_digest(2, 13, shape_fault), facility_digest(2, 14, shape_fault));
}

}  // namespace
}  // namespace pio
