// Unit tests for the parallel-file-system model: striping, disks, OST, MDS,
// burst buffer, and the end-to-end facade.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine/model and drain it in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <map>

#include "pfs/burst_buffer.hpp"
#include "pfs/disk.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/pfs.hpp"
#include "pfs/stripe.hpp"
#include "sim/engine.hpp"

namespace pio::pfs {
namespace {

using namespace pio::literals;

// ----------------------------------------------------------------- striping

TEST(StripeTest, SingleChunkWithinOneStripe) {
  const StripeLayout layout{1_MiB, 4, 0};
  const auto chunks = decompose(layout, 8, 100, Bytes{200});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].ost, 0u);
  EXPECT_EQ(chunks[0].object_offset, 100u);
  EXPECT_EQ(chunks[0].length, Bytes{200});
}

TEST(StripeTest, CrossesStripeBoundaries) {
  const StripeLayout layout{Bytes{100}, 2, 0};
  // [150, 350) -> stripe1 [150,200) ost1, stripe2 [200,300) ost0,
  // stripe3 [300,350) ost1.
  const auto chunks = decompose(layout, 4, 150, Bytes{200});
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].ost, 1u);
  EXPECT_EQ(chunks[0].object_offset, 50u);
  EXPECT_EQ(chunks[0].length, Bytes{50});
  EXPECT_EQ(chunks[1].ost, 0u);
  EXPECT_EQ(chunks[1].object_offset, 100u);  // second full cycle for lane 0
  EXPECT_EQ(chunks[1].length, Bytes{100});
  EXPECT_EQ(chunks[2].ost, 1u);
  EXPECT_EQ(chunks[2].object_offset, 100u);
  EXPECT_EQ(chunks[2].length, Bytes{50});
}

TEST(StripeTest, RotationOffsetsOstAssignment) {
  const StripeLayout layout{Bytes{100}, 2, 3};
  EXPECT_EQ(ost_for_offset(layout, 4, 0), 3u);
  EXPECT_EQ(ost_for_offset(layout, 4, 100), 0u);  // wraps 3+1 mod 4
}

TEST(StripeTest, InvalidConfigsThrow) {
  EXPECT_THROW((void)decompose(StripeLayout{Bytes{0}, 1, 0}, 4, 0, Bytes{1}),
               std::invalid_argument);
  EXPECT_THROW((void)decompose(StripeLayout{Bytes{64}, 0, 0}, 4, 0, Bytes{1}),
               std::invalid_argument);
  EXPECT_THROW((void)decompose(StripeLayout{Bytes{64}, 8, 0}, 4, 0, Bytes{1}),
               std::invalid_argument);
}

struct StripeCase {
  std::uint64_t stripe_size;
  std::uint32_t stripe_count;
  std::uint32_t first_ost;
  std::uint32_t total_osts;
  std::uint64_t offset;
  std::uint64_t size;
};

class StripePropertyTest : public ::testing::TestWithParam<StripeCase> {};

/// Property: the chunks exactly tile [offset, offset+size), stay within the
/// declared stripe lanes, and per-OST object offsets are consistent with
/// the round-robin layout.
TEST_P(StripePropertyTest, ChunksExactlyTileTheRequest) {
  const auto& p = GetParam();
  const StripeLayout layout{Bytes{p.stripe_size}, p.stripe_count, p.first_ost};
  const auto chunks = decompose(layout, p.total_osts, p.offset, Bytes{p.size});
  std::uint64_t cursor = p.offset;
  std::uint64_t total = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.file_offset, cursor);
    EXPECT_GT(c.length.count(), 0u);
    EXPECT_LE(c.length.count(), p.stripe_size);
    EXPECT_LT(c.ost, p.total_osts);
    EXPECT_EQ(c.ost, ost_for_offset(layout, p.total_osts, c.file_offset));
    cursor += c.length.count();
    total += c.length.count();
  }
  EXPECT_EQ(total, p.size);
  EXPECT_EQ(cursor, p.offset + p.size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, StripePropertyTest,
    ::testing::Values(StripeCase{64, 1, 0, 1, 0, 1000},
                      StripeCase{64, 4, 0, 4, 0, 1000},
                      StripeCase{100, 3, 1, 7, 55, 1234},
                      StripeCase{1 << 20, 4, 2, 16, (1 << 20) - 1, (1 << 22) + 17},
                      StripeCase{128, 5, 4, 5, 12345, 6789},
                      StripeCase{4096, 2, 0, 3, 4096, 4096},
                      StripeCase{1, 2, 0, 2, 7, 13}));

// -------------------------------------------------------------------- disks

TEST(HddModelTest, SequentialIsFasterThanRandom) {
  const HddConfig config;
  HddModel seq{config, Rng{1, 0}};
  HddModel rnd{config, Rng{1, 0}};
  SimTime seq_total = SimTime::zero();
  SimTime rnd_total = SimTime::zero();
  std::uint64_t offset = 0;
  Rng jump{2, 0};
  for (int i = 0; i < 64; ++i) {
    seq_total += seq.service_time(DiskRequest{offset, 64_KiB, false});
    rnd_total += rnd.service_time(
        DiskRequest{jump.next_below(64ULL << 30), 64_KiB, false});
    offset += 64 * 1024;
  }
  // Seeks dominate: random must be at least 10x slower.
  EXPECT_GT(rnd_total.sec(), seq_total.sec() * 10);
  EXPECT_GT(seq.sequential_hits(), 60u);
  EXPECT_GT(rnd.seeks(), 60u);
}

TEST(SsdModelTest, FlatLatencyProfile) {
  SsdModel ssd{SsdConfig{}};
  const SimTime a = ssd.service_time(DiskRequest{0, 4_KiB, false});
  const SimTime b = ssd.service_time(DiskRequest{77ULL << 30, 4_KiB, false});
  EXPECT_EQ(a, b);  // position-independent
  const SimTime w = ssd.service_time(DiskRequest{0, 4_KiB, true});
  EXPECT_NE(w, a);  // read/write asymmetry
}

// ---------------------------------------------------------------------- OST

TEST(OstServerTest, CountsAndObserver) {
  sim::Engine e;
  OstServer ost{e, 3, make_ssd(SsdConfig{})};
  std::vector<OstOpRecord> records;
  ost.set_op_observer([&](const OstOpRecord& r) { records.push_back(r); });
  int done = 0;
  ost.submit(0, 1_MiB, true, [&](OstCompletion c) { done += c.ok() ? 1 : 0; });
  ost.submit(1 << 20, 1_MiB, false, [&](OstCompletion c) { done += c.ok() ? 1 : 0; });
  e.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(ost.stats().write_ops, 1u);
  EXPECT_EQ(ost.stats().read_ops, 1u);
  EXPECT_EQ(ost.stats().bytes_written, 1_MiB);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ost, 3u);
  EXPECT_TRUE(records[0].is_write);
  EXPECT_GT(records[0].completed, records[0].enqueued);
}

// ---------------------------------------------------------------------- MDS

class MdsTest : public ::testing::Test {
 protected:
  MetaResult request(MetaOp op, const std::string& path,
                     std::optional<StripeLayout> layout = std::nullopt) {
    MetaResult out;
    mds_.request(op, path, [&](MetaResult r) { out = std::move(r); }, layout);
    engine_.run();
    return out;
  }

  sim::Engine engine_;
  MetadataServer mds_{engine_, MdsConfig{}};
};

TEST_F(MdsTest, CreateOpenStatUnlinkLifecycle) {
  EXPECT_EQ(request(MetaOp::kOpen, "/f").status, MetaStatus::kNotFound);
  const auto created = request(MetaOp::kCreate, "/f");
  EXPECT_TRUE(created.ok());
  ASSERT_TRUE(created.inode.has_value());
  EXPECT_FALSE(created.inode->is_dir);
  EXPECT_EQ(request(MetaOp::kCreate, "/f").status, MetaStatus::kExists);
  EXPECT_TRUE(request(MetaOp::kStat, "/f").ok());
  EXPECT_TRUE(request(MetaOp::kUnlink, "/f").ok());
  EXPECT_EQ(request(MetaOp::kStat, "/f").status, MetaStatus::kNotFound);
}

TEST_F(MdsTest, DirectoriesAndReaddir) {
  EXPECT_TRUE(request(MetaOp::kMkdir, "/d").ok());
  EXPECT_TRUE(request(MetaOp::kCreate, "/d/a").ok());
  EXPECT_TRUE(request(MetaOp::kCreate, "/d/b").ok());
  EXPECT_TRUE(request(MetaOp::kMkdir, "/d/sub").ok());
  EXPECT_TRUE(request(MetaOp::kCreate, "/d/sub/deep").ok());
  const auto listing = request(MetaOp::kReaddir, "/d");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.entries.size(), 3u);  // a, b, sub — not deep
  EXPECT_EQ(request(MetaOp::kUnlink, "/d").status, MetaStatus::kNotEmpty);
  EXPECT_EQ(request(MetaOp::kCreate, "/nodir/x").status, MetaStatus::kNotFound);
  EXPECT_EQ(request(MetaOp::kReaddir, "/d/a").status, MetaStatus::kNotDir);
}

TEST_F(MdsTest, CustomLayoutIsStored) {
  const StripeLayout layout{4_MiB, 2, 1};
  const auto created = request(MetaOp::kCreate, "/striped", layout);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.inode->layout.stripe_size, 4_MiB);
  EXPECT_EQ(created.inode->layout.stripe_count, 2u);
}

TEST_F(MdsTest, ConcurrencyIsBoundedByThreads) {
  // 8 stats with 4 threads: completions come in two waves.
  std::vector<std::int64_t> times;
  (void)request(MetaOp::kCreate, "/f");
  for (int i = 0; i < 8; ++i) {
    mds_.request(MetaOp::kStat, "/f", [&](MetaResult) { times.push_back(engine_.now().ns()); });
  }
  engine_.run();
  ASSERT_EQ(times.size(), 8u);
  EXPECT_EQ(times[0], times[3]);      // first wave together
  EXPECT_EQ(times[4], times[7]);      // second wave together
  EXPECT_GT(times[4], times[0]);      // strictly later
  EXPECT_EQ(mds_.stats().ops_total, 9u);
}

TEST_F(MdsTest, StatsTrackErrors) {
  (void)request(MetaOp::kOpen, "/missing");
  EXPECT_EQ(mds_.stats().errors, 1u);
}

// ------------------------------------------------------------- burst buffer

TEST(BurstBufferTest, AbsorbsThenDrains) {
  sim::Engine e;
  Bytes drained_to_backend = Bytes::zero();
  BurstBufferConfig config;
  config.capacity = 8_MiB;
  config.drain_delay = 1_ms;
  BurstBuffer bb{e, config,
                 [&](std::uint64_t, std::uint64_t, Bytes size, std::function<void()> done) {
                   drained_to_backend += size;
                   e.schedule_after(1_ms, std::move(done));
                 }};
  bool absorbed = false;
  ASSERT_TRUE(bb.can_absorb(4_MiB));
  bb.write(1, 0, 4_MiB, [&] { absorbed = true; });
  e.run();
  EXPECT_TRUE(absorbed);
  EXPECT_EQ(drained_to_backend, 4_MiB);
  EXPECT_EQ(bb.occupancy(), Bytes::zero());
  EXPECT_TRUE(bb.quiescent());
  EXPECT_EQ(bb.stats().absorbed, 4_MiB);
  EXPECT_EQ(bb.stats().drained, 4_MiB);
}

TEST(BurstBufferTest, RejectsWhenFull) {
  sim::Engine e;
  BurstBufferConfig config;
  config.capacity = 2_MiB;
  config.drain_delay = 1_s;  // drain far in the future
  BurstBuffer bb{e, config,
                 [&](std::uint64_t, std::uint64_t, Bytes, std::function<void()> done) {
                   done();
                 }};
  bb.write(1, 0, 2_MiB, [] {});
  EXPECT_FALSE(bb.can_absorb(Bytes{1}));
  EXPECT_THROW(bb.write(1, 0, Bytes{1}, [] {}), std::logic_error);
}

TEST(BurstBufferTest, ReadHitsStagedData) {
  sim::Engine e;
  BurstBufferConfig config;
  config.drain_delay = 10_s;  // keep data staged during the test
  BurstBuffer bb{e, config,
                 [&](std::uint64_t, std::uint64_t, Bytes, std::function<void()> done) {
                   done();
                 }};
  bb.write(7, 1024, 1_MiB, [] {});
  e.run(1_s);
  EXPECT_TRUE(bb.resident(7, 1024, 1_MiB));
  EXPECT_TRUE(bb.resident(7, 2048, 1_KiB));
  EXPECT_FALSE(bb.resident(7, 0, Bytes{2048}));
  EXPECT_FALSE(bb.resident(8, 1024, 1_KiB));
  bool read_done = false;
  bb.read(7, 1024, 1_MiB, [&] { read_done = true; });
  e.run(2_s);
  EXPECT_TRUE(read_done);
  EXPECT_EQ(bb.stats().read_hits, 1_MiB);
}

// ------------------------------------------------------------- end-to-end

class PfsModelTest : public ::testing::Test {
 protected:
  static PfsConfig small_config() {
    PfsConfig config;
    config.clients = 4;
    config.io_nodes = 2;
    config.osts = 4;
    config.disk_kind = DiskKind::kSsd;
    return config;
  }

  MetaResult meta(PfsModel& model, ClientId c, MetaOp op, const std::string& path) {
    MetaResult out;
    model.meta(c, op, path, [&](MetaResult r) { out = std::move(r); });
    model.engine().run();
    return out;
  }

  IoResult io(PfsModel& model, ClientId c, const std::string& path, const StripeLayout& layout,
              std::uint64_t offset, Bytes size, bool is_write) {
    IoResult out;
    model.io(c, path, layout, offset, size, is_write, [&](IoResult r) { out = r; });
    model.engine().run();
    return out;
  }
};

TEST_F(PfsModelTest, WriteThenReadCompletesAndLandsOnOsts) {
  sim::Engine e;
  PfsModel model{e, small_config()};
  const auto created = meta(model, 0, MetaOp::kCreate, "/data");
  ASSERT_TRUE(created.ok());
  const StripeLayout layout = created.inode->layout;
  const auto wrote = io(model, 0, "/data", layout, 0, 8_MiB, true);
  EXPECT_TRUE(wrote.ok);
  EXPECT_GT(wrote.latency(), SimTime::zero());
  Bytes on_osts = Bytes::zero();
  for (std::uint32_t i = 0; i < model.ost_count(); ++i) {
    on_osts += model.ost(i).stats().bytes_written;
  }
  EXPECT_EQ(on_osts, 8_MiB);
  const auto read = io(model, 1, "/data", layout, 0, 8_MiB, false);
  EXPECT_TRUE(read.ok);
  // MDS saw the size grow.
  EXPECT_EQ(model.mds().find_inode("/data")->size, 8_MiB);
}

TEST_F(PfsModelTest, StripingSpreadsLoadAcrossOsts) {
  sim::Engine e;
  auto config = small_config();
  config.mds.default_layout = StripeLayout{1_MiB, 4, 0};
  PfsModel model{e, config};
  (void)meta(model, 0, MetaOp::kCreate, "/wide");
  (void)io(model, 0, "/wide", config.mds.default_layout, 0, 16_MiB, true);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(model.ost(i).stats().bytes_written, 4_MiB) << "ost " << i;
  }
}

TEST_F(PfsModelTest, BurstBufferAbsorbsWriteFasterThanHddPath) {
  auto direct_config = small_config();
  direct_config.disk_kind = DiskKind::kHdd;
  sim::Engine e1;
  PfsModel direct{e1, direct_config};
  (void)meta(direct, 0, MetaOp::kCreate, "/ckpt");
  const auto direct_write =
      io(direct, 0, "/ckpt", direct.mds().config().default_layout, 0, 64_MiB, true);

  auto bb_config = direct_config;
  bb_config.bb_placement = BbPlacement::kPerIoNode;
  sim::Engine e2;
  PfsModel buffered{e2, bb_config};
  (void)meta(buffered, 0, MetaOp::kCreate, "/ckpt");
  const auto buffered_write =
      io(buffered, 0, "/ckpt", buffered.mds().config().default_layout, 0, 64_MiB, true);

  EXPECT_TRUE(direct_write.ok);
  EXPECT_TRUE(buffered_write.ok);
  EXPECT_LT(buffered_write.latency().sec(), direct_write.latency().sec());
  // And the drain eventually lands the bytes on the OSTs.
  e2.run();
  EXPECT_TRUE(buffered.buffers_quiescent());
  Bytes on_osts = Bytes::zero();
  for (std::uint32_t i = 0; i < buffered.ost_count(); ++i) {
    on_osts += buffered.ost(i).stats().bytes_written;
  }
  EXPECT_EQ(on_osts, 64_MiB);
}

TEST_F(PfsModelTest, DeterministicAcrossRuns) {
  auto run_once = [this] {
    sim::Engine e{7};
    PfsModel model{e, small_config()};
    (void)meta(model, 0, MetaOp::kCreate, "/d");
    std::vector<std::int64_t> latencies;
    for (int i = 0; i < 8; ++i) {
      model.io(static_cast<ClientId>(i % 4), "/d", model.mds().config().default_layout,
               static_cast<std::uint64_t>(i) << 20, 1_MiB, true,
               [&](IoResult r) { latencies.push_back(r.latency().ns()); });
    }
    e.run();
    return latencies;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(PfsModelTest, IoOnMissingPathFailsWithNoEntry) {
  sim::Engine e;
  PfsModel model{e, small_config()};
  // No create ever happened: both directions fail with a distinct error.
  const auto read = io(model, 0, "/never-created", StripeLayout{}, 0, 1_MiB, false);
  EXPECT_FALSE(read.ok);
  EXPECT_EQ(read.error, IoError::kNoEntry);
  const auto write = io(model, 1, "/never-created", StripeLayout{}, 0, 1_MiB, true);
  EXPECT_FALSE(write.ok);
  EXPECT_EQ(write.error, IoError::kNoEntry);
  EXPECT_EQ(model.resilience_stats().failed_ops, 2u);
  // Directories are not data files either.
  (void)meta(model, 0, MetaOp::kMkdir, "/dir");
  const auto dir_io = io(model, 0, "/dir", StripeLayout{}, 0, 1_MiB, true);
  EXPECT_EQ(dir_io.error, IoError::kNoEntry);
}

TEST_F(PfsModelTest, FailedIoLatencyIsWellDefined) {
  sim::Engine e;
  PfsModel model{e, small_config()};
  IoResult result;
  // Issue at a nonzero sim time so an accidental completed=0 would underflow.
  e.schedule_after(SimTime::from_ms(5.0), [&] {
    model.io(0, "/missing", StripeLayout{}, 0, 1_MiB, false, [&](IoResult r) { result = r; });
  });
  e.run();
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.completed, result.issued);
  EXPECT_GE(result.latency(), SimTime::zero());  // no sim::check trip, no underflow
  EXPECT_GE(result.issued, SimTime::from_ms(5.0));
}

}  // namespace
}  // namespace pio::pfs
