// Unit tests for tools/piolint: each fixture file under tests/lint_fixtures/
// carries exactly one deliberate violation of one rule (or none), so rule
// regressions show up as changed counts, not vague diffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "piolint/lint.hpp"

namespace pio::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(PIO_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> rules;
  rules.reserve(diags.size());
  for (const auto& d : diags) rules.push_back(d.rule);
  return rules;
}

TEST(PiolintRules, D1FlagsBannedNondeterminismSource) {
  const auto diags = lint_file(fixture("d1_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 5);
  EXPECT_NE(diags[0].message.find("std::rand"), std::string::npos);
}

TEST(PiolintRules, D1CatchesWallClockSeededFaultInjector) {
  // pio::fault's determinism contract: injector schedules come from the
  // campaign seed, never the wall clock. The linter is the enforcement.
  const auto diags = lint_file(fixture("d1_wallclock_injector.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 9);
}

TEST(PiolintRules, D1CatchesWallClockPacedRebuildPlanner) {
  // The durability layer's resync pacing draws from kRebuildRngStream; a
  // planner that jitters off the wall clock breaks byte-identical replay of
  // recovery schedules (DESIGN.md §9).
  const auto diags = lint_file(fixture("d1_wallclock_rebuild.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 10);
  EXPECT_NE(diags[0].message.find("time"), std::string::npos);
}

TEST(PiolintRules, D1CatchesWallClockAgedCacheEviction) {
  // pio::cache's determinism contract: page recency is logical list order,
  // never wall-clock age. A steady_clock-aged eviction policy makes cache
  // contents (and so hit counters and makespans) host-dependent, breaking
  // byte-identical replay of cached campaigns (DESIGN.md §10).
  const auto diags = lint_file(fixture("d1_wallclock_cache.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 10);
  EXPECT_NE(diags[0].message.find("steady_clock"), std::string::npos);
}

TEST(PiolintRules, D2FlagsUnorderedIterationFeedingOutput) {
  const auto diags = lint_file(fixture("d2_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_NE(diags[0].message.find("counts"), std::string::npos);
}

TEST(PiolintRules, T1FlagsHandScaledTimeConversion) {
  const auto diags = lint_file(fixture("t1_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "T1");
}

TEST(PiolintRules, T1ExemptsTypesHeaderItself) {
  const auto diags =
      lint_source("src/common/types.hpp",
                  "#pragma once\n"
                  "struct SimTime { double sec() const { return ns_ * 1e9; } };\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, R1FlagsMissingNodiscardOnResultApi) {
  const auto diags = lint_file(fixture("r1_violation.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_NE(diags[0].message.find("parse_count"), std::string::npos);
}

TEST(PiolintRules, R1SkipsOutOfLineMemberDefinitions) {
  const auto diags = lint_source(
      "src/h5/h5.cpp", "#include \"h5/h5.hpp\"\nResult<bool> H5File::create_group() {}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, P1FlagsRawThreadingPrimitives) {
  const auto diags = lint_file(fixture("p1_raw_thread.cpp"));
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].line, 15);
  EXPECT_NE(diags[0].message.find("std::thread"), std::string::npos);
  EXPECT_EQ(diags[1].rule, "P1");
  EXPECT_EQ(diags[1].line, 17);
  EXPECT_NE(diags[1].message.find("std::jthread"), std::string::npos);
  EXPECT_EQ(diags[2].rule, "P1");
  EXPECT_EQ(diags[2].line, 18);
  EXPECT_NE(diags[2].message.find("std::async"), std::string::npos);
}

TEST(PiolintRules, P1SkipsHardwareConcurrencyQuery) {
  // `std::thread::hardware_concurrency()` is a capability query, not a
  // thread spawn — the lookahead must keep it (and any other static member
  // access) out of scope.
  const auto diags = lint_source(
      "x.cpp", "unsigned n() { return std::thread::hardware_concurrency(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, H1FlagsMissingPragmaOnce) {
  const auto diags = lint_file(fixture("h1_missing_pragma.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(PiolintRules, H1FlagsUsingNamespaceInHeader) {
  const auto diags = lint_file(fixture("h1_using_namespace.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 6);
}

TEST(PiolintRules, CleanHeaderHasNoFindings) {
  EXPECT_TRUE(lint_file(fixture("clean.hpp")).empty());
}

TEST(PiolintAllow, DirectivesSuppressSameLinePreviousLineAndFileWide) {
  EXPECT_TRUE(lint_file(fixture("allowed.cpp")).empty());
}

TEST(PiolintAllow, DirectiveDoesNotLeakToUnrelatedLines) {
  const auto diags = lint_source("x.cpp",
                                 "// piolint: allow(D1)\n"
                                 "int a() { return std::rand(); }\n"
                                 "int b() { return std::rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(PiolintScan, CollectFilesFindsAllFixtures) {
  const auto files = collect_files({std::string(PIO_LINT_FIXTURE_DIR)});
  EXPECT_GE(files.size(), 8u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

TEST(PiolintOutput, TextFormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/a.cpp", 12, "D1", "bad"};
  EXPECT_EQ(to_text(d), "src/a.cpp:12:D1: bad");
}

TEST(PiolintOutput, JsonIsWellFormedAndEscaped) {
  const std::vector<Diagnostic> diags = {{"a\"b.cpp", 3, "H1", "line1\nline2"}};
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"file\": \"a\\\"b.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(to_json({}), "[]\n");
}

TEST(PiolintLexer, RawStringsAndCharLiteralsAreBlanked) {
  const auto diags = lint_source("x.cpp",
                                 "const char* s = R\"(std::rand() 1e9 .sec()\n"
                                 "random_device)\";\n"
                                 "char c = '\\'';\n");
  EXPECT_TRUE(rules_of(diags).empty());
}

TEST(PiolintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const auto diags = lint_source("x.cpp",
                                 "constexpr long k = 1'000'000'000;\n"
                                 "int bad() { return std::rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

}  // namespace
}  // namespace pio::lint
