// Unit tests for tools/piolint: each fixture file under tests/lint_fixtures/
// carries exactly one deliberate violation of one rule (or none), so rule
// regressions show up as changed counts, not vague diffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "piolint/index.hpp"
#include "piolint/lint.hpp"

namespace pio::lint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(PIO_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> rules;
  rules.reserve(diags.size());
  for (const auto& d : diags) rules.push_back(d.rule);
  return rules;
}

TEST(PiolintRules, D1FlagsBannedNondeterminismSource) {
  const auto diags = lint_file(fixture("d1_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 5);
  EXPECT_NE(diags[0].message.find("std::rand"), std::string::npos);
}

TEST(PiolintRules, D1CatchesWallClockSeededFaultInjector) {
  // pio::fault's determinism contract: injector schedules come from the
  // campaign seed, never the wall clock. The linter is the enforcement.
  const auto diags = lint_file(fixture("d1_wallclock_injector.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 9);
}

TEST(PiolintRules, D1CatchesWallClockPacedRebuildPlanner) {
  // The durability layer's resync pacing draws from kRebuildRngStream; a
  // planner that jitters off the wall clock breaks byte-identical replay of
  // recovery schedules (DESIGN.md §9).
  const auto diags = lint_file(fixture("d1_wallclock_rebuild.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 10);
  EXPECT_NE(diags[0].message.find("time"), std::string::npos);
}

TEST(PiolintRules, D1CatchesWallClockAgedCacheEviction) {
  // pio::cache's determinism contract: page recency is logical list order,
  // never wall-clock age. A steady_clock-aged eviction policy makes cache
  // contents (and so hit counters and makespans) host-dependent, breaking
  // byte-identical replay of cached campaigns (DESIGN.md §10).
  const auto diags = lint_file(fixture("d1_wallclock_cache.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D1");
  EXPECT_EQ(diags[0].line, 10);
  EXPECT_NE(diags[0].message.find("steady_clock"), std::string::npos);
}

TEST(PiolintRules, D2FlagsUnorderedIterationFeedingOutput) {
  const auto diags = lint_file(fixture("d2_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D2");
  EXPECT_NE(diags[0].message.find("counts"), std::string::npos);
}

TEST(PiolintRules, T1FlagsHandScaledTimeConversion) {
  const auto diags = lint_file(fixture("t1_violation.cpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "T1");
}

TEST(PiolintRules, T1ExemptsTypesHeaderItself) {
  const auto diags =
      lint_source("src/common/types.hpp",
                  "#pragma once\n"
                  "struct SimTime { double sec() const { return ns_ * 1e9; } };\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, R1FlagsMissingNodiscardOnResultApi) {
  const auto diags = lint_file(fixture("r1_violation.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_NE(diags[0].message.find("parse_count"), std::string::npos);
}

TEST(PiolintRules, R1SkipsOutOfLineMemberDefinitions) {
  const auto diags = lint_source(
      "src/h5/h5.cpp", "#include \"h5/h5.hpp\"\nResult<bool> H5File::create_group() {}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, P1FlagsRawThreadingPrimitives) {
  const auto diags = lint_file(fixture("p1_raw_thread.cpp"));
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].rule, "P1");
  EXPECT_EQ(diags[0].line, 15);
  EXPECT_NE(diags[0].message.find("std::thread"), std::string::npos);
  EXPECT_EQ(diags[1].rule, "P1");
  EXPECT_EQ(diags[1].line, 17);
  EXPECT_NE(diags[1].message.find("std::jthread"), std::string::npos);
  EXPECT_EQ(diags[2].rule, "P1");
  EXPECT_EQ(diags[2].line, 18);
  EXPECT_NE(diags[2].message.find("std::async"), std::string::npos);
}

TEST(PiolintRules, P1SkipsHardwareConcurrencyQuery) {
  // `std::thread::hardware_concurrency()` is a capability query, not a
  // thread spawn — the lookahead must keep it (and any other static member
  // access) out of scope.
  const auto diags = lint_source(
      "x.cpp", "unsigned n() { return std::thread::hardware_concurrency(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(PiolintRules, H1FlagsMissingPragmaOnce) {
  const auto diags = lint_file(fixture("h1_missing_pragma.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 1);
}

TEST(PiolintRules, H1FlagsUsingNamespaceInHeader) {
  const auto diags = lint_file(fixture("h1_using_namespace.hpp"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "H1");
  EXPECT_EQ(diags[0].line, 6);
}

TEST(PiolintRules, CleanHeaderHasNoFindings) {
  EXPECT_TRUE(lint_file(fixture("clean.hpp")).empty());
}

TEST(PiolintAllow, DirectivesSuppressSameLinePreviousLineAndFileWide) {
  EXPECT_TRUE(lint_file(fixture("allowed.cpp")).empty());
}

TEST(PiolintAllow, DirectiveDoesNotLeakToUnrelatedLines) {
  const auto diags = lint_source("x.cpp",
                                 "// piolint: allow(D1)\n"
                                 "int a() { return std::rand(); }\n"
                                 "int b() { return std::rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
}

TEST(PiolintScan, CollectFilesFindsAllFixtures) {
  const auto files = collect_files({std::string(PIO_LINT_FIXTURE_DIR)});
  EXPECT_GE(files.size(), 8u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

TEST(PiolintOutput, TextFormatIsFileLineRuleMessage) {
  const Diagnostic d{"src/a.cpp", 12, "D1", "bad"};
  EXPECT_EQ(to_text(d), "src/a.cpp:12:D1: bad");
}

TEST(PiolintOutput, JsonIsWellFormedAndEscaped) {
  const std::vector<Diagnostic> diags = {{"a\"b.cpp", 3, "H1", "line1\nline2"}};
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"file\": \"a\\\"b.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(to_json({}), "[]\n");
}

TEST(PiolintLexer, RawStringsAndCharLiteralsAreBlanked) {
  const auto diags = lint_source("x.cpp",
                                 "const char* s = R\"(std::rand() 1e9 .sec()\n"
                                 "random_device)\";\n"
                                 "char c = '\\'';\n");
  EXPECT_TRUE(rules_of(diags).empty());
}

TEST(PiolintLexer, DigitSeparatorsDoNotOpenCharLiterals) {
  const auto diags = lint_source("x.cpp",
                                 "constexpr long k = 1'000'000'000;\n"
                                 "int bad() { return std::rand(); }\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 2);
}

// ---------------------------------------------------------------------------
// Cross-TU analyzer (S1/D3/R2/C2/L1) over tests/lint_fixtures/xtu/.

std::vector<std::string> xtu(std::initializer_list<const char*> names) {
  std::vector<std::string> files;
  for (const char* n : names) files.push_back(fixture(std::string("xtu/") + n));
  return files;
}

std::vector<Diagnostic> project_diags(std::vector<std::string> files) {
  return lint_project(build_index(std::move(files)));
}

bool any_with(const std::vector<Diagnostic>& diags, const std::string& rule,
              const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.message.find(needle) != std::string::npos;
  });
}

TEST(PiolintXtuS1, RegistryAloneIsClean) {
  EXPECT_TRUE(project_diags(xtu({"seed_streams.hpp"})).empty());
}

TEST(PiolintXtuS1, FlagsCollisionAndOutsideRegistryDefinition) {
  const auto diags = project_diags(xtu({"seed_streams.hpp", "s1_collision.hpp"}));
  // kGammaStream collides with the registry's kBetaStream (reported at both
  // definition sites) and is itself defined outside the registry.
  ASSERT_EQ(diags.size(), 3u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "S1");
  EXPECT_TRUE(any_with(diags, "S1", "collision: 'kGammaStream'"));
  EXPECT_TRUE(any_with(diags, "S1", "collision: 'kBetaStream'"));
  EXPECT_TRUE(any_with(diags, "S1", "outside the seed-stream registry"));
}

TEST(PiolintXtuS1, FlagsRawLiteralOfClaimedStreamOnly) {
  const auto diags = project_diags(xtu({"seed_streams.hpp", "s1_magic.cpp"}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "S1");
  EXPECT_NE(diags[0].file.find("s1_magic.cpp"), std::string::npos);
  EXPECT_NE(diags[0].message.find("kAlphaStream"), std::string::npos);
  // 0xDEADBEEF is not a claimed stream id, so only one finding exists.
}

TEST(PiolintXtuD3, FlagsCrossFileUnorderedIterationOnly) {
  const auto diags = project_diags(xtu({"d3_decl.hpp", "d3_use.cpp"}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "D3");
  EXPECT_NE(diags[0].file.find("d3_use.cpp"), std::string::npos);
  EXPECT_NE(diags[0].message.find("pages_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("d3_decl.hpp"), std::string::npos);
  // rows_ is declared ordered, so its loop stays silent.
}

TEST(PiolintXtuD3, SilentWithoutTheDeclaringFile) {
  EXPECT_TRUE(project_diags(xtu({"d3_use.cpp"})).empty());
}

TEST(PiolintXtuR2, FlagsDiscardedCrossTuResult) {
  const auto diags = project_diags(xtu({"r2_api.hpp", "r2_use.cpp"}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R2");
  EXPECT_NE(diags[0].file.find("r2_use.cpp"), std::string::npos);
  EXPECT_EQ(diags[0].line, 8);
  EXPECT_NE(diags[0].message.find("parse_thing"), std::string::npos);
}

TEST(PiolintXtuR2, SameFileDeclarationIsNotCrossTu) {
  ProjectIndex idx;
  idx.files.push_back(analyze_source("one.cpp",
                                     "template <typename T> struct Result { T v; };\n"
                                     "[[nodiscard]] Result<int> local_thing();\n"
                                     "void drive() { local_thing(); }\n"));
  EXPECT_TRUE(lint_project(idx).empty());
}

TEST(PiolintXtuC2, FlagsByReferenceCapturesIntoDeferringSinks) {
  const auto diags = project_diags(xtu({"c2_capture.cpp"}));
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "C2");
  EXPECT_EQ(diags[0].line, 14);
  EXPECT_NE(diags[0].message.find("schedule_at"), std::string::npos);
  EXPECT_EQ(diags[1].rule, "C2");
  EXPECT_EQ(diags[1].line, 15);
  EXPECT_NE(diags[1].message.find("submit"), std::string::npos);
  // The by-value [x] and [=] lambdas on lines 16-17 stay silent.
}

TEST(PiolintXtuL1, FlagsLockOrderCycleAcrossFiles) {
  const auto diags = project_diags(xtu({"l1_cycle_a.cpp", "l1_cycle_b.cpp"}));
  ASSERT_GE(diags.size(), 1u);
  for (const auto& d : diags) EXPECT_EQ(d.rule, "L1");
  EXPECT_TRUE(any_with(diags, "L1", "m_a"));
  EXPECT_TRUE(any_with(diags, "L1", "m_b"));
}

TEST(PiolintXtuL1, ConsistentOrderAndScopedLockAreSilent) {
  // Either direction alone is a consistent order; the multi-arg scoped_lock
  // in l1_cycle_b.cpp acquires atomically and contributes no edge.
  EXPECT_TRUE(project_diags(xtu({"l1_cycle_a.cpp"})).empty());
  EXPECT_TRUE(project_diags(xtu({"l1_cycle_b.cpp"})).empty());
}

TEST(PiolintXtuAllow, DirectivesSuppressProjectRules) {
  EXPECT_TRUE(project_diags(xtu({"seed_streams.hpp", "xtu_allowed.cpp"})).empty());
}

// ---------------------------------------------------------------------------
// Determinism: the merged index and the diagnostic stream must be
// byte-identical at any --jobs count.

TEST(PiolintXtuIndex, ByteStableAcrossJobCounts) {
  const auto files = collect_files({std::string(PIO_LINT_FIXTURE_DIR)});
  ASSERT_GE(files.size(), 8u);
  const ProjectIndex one = build_index(files, 1);
  const ProjectIndex four = build_index(files, 4);
  const ProjectIndex eight = build_index(files, 8);
  EXPECT_EQ(dump_index(one), dump_index(four));
  EXPECT_EQ(dump_index(one), dump_index(eight));
  EXPECT_EQ(to_json(all_diagnostics(one)), to_json(all_diagnostics(four)));
  EXPECT_EQ(to_json(all_diagnostics(one)), to_json(all_diagnostics(eight)));
}

TEST(PiolintScan, CollectFilesPicksUpInlIppAndSkipsBuildDirs) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "piolint_scan";
  fs::remove_all(root);
  fs::create_directories(root / "build");
  fs::create_directories(root / "sub");
  for (const char* rel : {"a.hpp", "b.inl", "sub/c.ipp", "build/d.cpp", "e.txt"}) {
    std::ofstream(root / rel) << "// x\n";
  }
  const auto files = collect_files({root.string()});
  ASSERT_EQ(files.size(), 3u);  // a.hpp, b.inl, sub/c.ipp; build/ and .txt skipped
  EXPECT_NE(files[0].find("a.hpp"), std::string::npos);
  EXPECT_NE(files[1].find("b.inl"), std::string::npos);
  EXPECT_NE(files[2].find("c.ipp"), std::string::npos);
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// SARIF output and baseline files.

TEST(PiolintOutput, SarifIsWellFormedAndStable) {
  const std::vector<Diagnostic> diags = {{"src/a \"q\".cpp", 7, "S1", "msg\nline2"}};
  const std::string sarif = to_sarif(diags);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"S1\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("src/a \\\"q\\\".cpp"), std::string::npos);
  EXPECT_NE(sarif.find("msg\\nline2"), std::string::npos);
  EXPECT_EQ(sarif, to_sarif(diags));  // pure function of the diagnostic list
  // An empty run still carries the tool metadata and an empty results array.
  EXPECT_NE(to_sarif({}).find("\"results\": []"), std::string::npos);
}

TEST(PiolintBaseline, RoundTripSuppressesOnlyListedFindings) {
  namespace fs = std::filesystem;
  const std::vector<Diagnostic> diags = {{"a.cpp", 1, "D1", "one"}, {"b.cpp", 2, "R2", "two"}};
  EXPECT_EQ(baseline_key(diags[0]), "a.cpp:1:D1");

  const fs::path path = fs::path(testing::TempDir()) / "piolint_baseline.txt";
  std::ofstream(path) << "# known findings\n\n"
                      << baseline_key(diags[0]) << "\n"
                      << to_text(diags[1]) << "\n";  // full text lines accepted too
  const auto baseline = read_baseline(path.string());
  EXPECT_EQ(baseline.size(), 2u);

  std::size_t suppressed = 0;
  const auto remaining = apply_baseline(diags, baseline, &suppressed);
  EXPECT_TRUE(remaining.empty());
  EXPECT_EQ(suppressed, 2u);

  const auto partial = apply_baseline({{"c.cpp", 9, "C2", "new"}}, baseline, &suppressed);
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0].file, "c.cpp");
  fs::remove(path);
}

}  // namespace
}  // namespace pio::lint
