// Tests for the predictive-analytics module: neural network, random forest,
// evaluation harness — including the C4 ordering (nonlinear models beat the
// linear baseline on nonlinear I/O cost surfaces).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "predict/evaluate.hpp"
#include "predict/forest.hpp"
#include "predict/nn.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace pio::predict {
namespace {

/// Synthetic nonlinear I/O-time surface: time = seek penalty that decays
/// with sequentiality + size/bandwidth term + metadata constant.
double io_time_surface(double log_size, double seq_fraction, double queue_depth) {
  return 5.0 * (1.0 - seq_fraction) * (1.0 + 0.5 * queue_depth) +
         0.8 * std::exp2(log_size) / 128.0 + 0.3;
}

struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

Dataset make_dataset(std::size_t n, std::uint64_t seed, double noise = 0.05) {
  Rng rng{seed, 0};
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double log_size = rng.uniform(0.0, 8.0);
    const double seq = rng.uniform(0.0, 1.0);
    const double depth = rng.uniform(0.0, 4.0);
    data.x.push_back({log_size, seq, depth});
    data.y.push_back(io_time_surface(log_size, seq, depth) + rng.normal(0.0, noise));
  }
  return data;
}

TEST(NeuralNetTest, LearnsALinearFunctionExactly) {
  Rng rng{1, 0};
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 256; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    x.push_back({a, b});
    y.push_back(2.0 * a - 3.0 * b + 1.0);
  }
  NnConfig config;
  config.epochs = 400;
  const NeuralNet net = NeuralNet::fit(x, y, config);
  const auto metrics = stats::compute_errors(net.predict_all(x), y);
  EXPECT_LT(metrics.mae, 0.08);
  EXPECT_LT(metrics.rmse, 0.12);
}

TEST(NeuralNetTest, DeterministicForFixedSeed) {
  const auto data = make_dataset(128, 5);
  const NeuralNet a = NeuralNet::fit(data.x, data.y);
  const NeuralNet b = NeuralNet::fit(data.x, data.y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(data.x[i]), b.predict(data.x[i]));
  }
}

TEST(NeuralNetTest, RejectsBadShapes) {
  EXPECT_THROW((void)NeuralNet::fit({}, {}), std::invalid_argument);
  EXPECT_THROW((void)NeuralNet::fit({{1.0}, {1.0, 2.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  const auto data = make_dataset(32, 1);
  const NeuralNet net = NeuralNet::fit(data.x, data.y);
  EXPECT_THROW((void)net.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(RandomForestTest, FitsNonlinearSurface) {
  const auto train = make_dataset(600, 7);
  const auto test = make_dataset(150, 8);
  const RandomForest forest = RandomForest::fit(train.x, train.y);
  const auto predictions = forest.predict_all(test.x);
  const auto metrics = stats::compute_errors(predictions, test.y);
  EXPECT_LT(metrics.mape, 0.25);
  EXPECT_GT(forest.tree_count(), 0u);
  EXPECT_GT(forest.oob_mse(), 0.0);
}

TEST(RandomForestTest, DeterministicForFixedSeed) {
  const auto data = make_dataset(128, 9);
  const RandomForest a = RandomForest::fit(data.x, data.y);
  const RandomForest b = RandomForest::fit(data.x, data.y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(data.x[i]), b.predict(data.x[i]));
  }
}

TEST(RandomForestTest, PureLeavesOnConstantTarget) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(42.0);
  }
  const RandomForest forest = RandomForest::fit(x, y);
  EXPECT_DOUBLE_EQ(forest.predict(std::vector<double>{25.0}), 42.0);
  EXPECT_DOUBLE_EQ(forest.oob_mse(), 0.0);
}

TEST(ModelComparisonTest, NonlinearModelsBeatLinearBaseline) {
  // The C4 claim (Schmid & Kunkel): NN average prediction error is
  // significantly better than a linear model on file-access-time surfaces.
  const auto train = make_dataset(800, 11);
  const auto test = make_dataset(200, 12);

  const stats::LinearModel linear = stats::LinearModel::fit(train.x, train.y);
  std::vector<double> linear_pred;
  for (const auto& row : test.x) linear_pred.push_back(linear.predict(row));
  const auto linear_err = stats::compute_errors(linear_pred, test.y);

  NnConfig nn_config;
  nn_config.epochs = 300;
  const NeuralNet net = NeuralNet::fit(train.x, train.y, nn_config);
  const auto nn_err = stats::compute_errors(net.predict_all(test.x), test.y);

  const RandomForest forest = RandomForest::fit(train.x, train.y);
  const auto rf_err = stats::compute_errors(forest.predict_all(test.x), test.y);

  EXPECT_LT(nn_err.rmse, linear_err.rmse * 0.6) << "NN should clearly beat linear";
  EXPECT_LT(rf_err.rmse, linear_err.rmse * 0.6) << "forest should clearly beat linear";
}

TEST(EvaluateTest, TrainTestSplitIsDisjointAndComplete) {
  const auto data = make_dataset(100, 13);
  const SplitData split = train_test_split(data.x, data.y, 0.25, 3);
  EXPECT_EQ(split.test_x.size(), 25u);
  EXPECT_EQ(split.train_x.size(), 75u);
  EXPECT_EQ(split.test_y.size(), 25u);
  EXPECT_THROW((void)train_test_split(data.x, data.y, 0.0, 1), std::invalid_argument);
}

TEST(EvaluateTest, KFoldCoversEverySampleOnce) {
  const auto data = make_dataset(60, 14);
  std::size_t tested = 0;
  const auto metrics =
      k_fold(data.x, data.y, 5, 7,
             [&](const std::vector<std::vector<double>>& train_x,
                 std::span<const double> train_y,
                 const std::vector<std::vector<double>>& test_x) {
               tested += test_x.size();
               EXPECT_EQ(train_x.size() + test_x.size(), 60u);
               EXPECT_EQ(train_x.size(), train_y.size());
               // Trivial model: predict the training mean.
               const double m = stats::mean(train_y);
               return std::vector<double>(test_x.size(), m);
             });
  EXPECT_EQ(metrics.size(), 5u);
  EXPECT_EQ(tested, 60u);
  const auto mean = mean_metrics(metrics);
  EXPECT_GT(mean.rmse, 0.0);
}

TEST(EvaluateTest, FileRecordFeaturesShape) {
  trace::FileRecord record;
  record.bytes_read = Bytes{1024};
  record.reads = 4;
  record.sequential_reads = 2;
  record.saw_read = true;
  record.max_offset = 4096;
  const auto features = file_record_features(record);
  EXPECT_EQ(features.size(), 8u);
  EXPECT_NEAR(features[0], std::log2(1025.0), 1e-12);
  EXPECT_DOUBLE_EQ(features[2], 4.0);
  EXPECT_DOUBLE_EQ(features[5], 0.5);
}

}  // namespace
}  // namespace pio::predict
