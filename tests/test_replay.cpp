// Tests for replay-based modeling: trace -> workload conversion, grammar
// compression losslessness, extrapolation, and fidelity scoring.
#include <gtest/gtest.h>

#include "driver/sim_driver.hpp"
#include "replay/compress.hpp"
#include "replay/extrapolate.hpp"
#include "replay/fidelity.hpp"
#include "replay/trace_workload.hpp"
#include "trace/tracer.hpp"
#include "workload/dlio.hpp"
#include "workload/dsl.hpp"
#include "workload/kernels.hpp"

namespace pio::replay {
namespace {

using namespace pio::literals;
using workload::Op;
using workload::OpKind;

pfs::PfsConfig small_pfs() {
  pfs::PfsConfig config;
  config.clients = 8;
  config.io_nodes = 2;
  config.osts = 4;
  config.disk_kind = pfs::DiskKind::kSsd;
  return config;
}

driver::SimRunResult simulate(const workload::Workload& w, trace::Sink* sink = nullptr,
                              std::uint64_t seed = 1) {
  sim::Engine engine{seed};
  pfs::PfsModel model{engine, small_pfs()};
  driver::ExecutionDrivenSimulator sim{engine, model};
  return sim.run(w, sink);
}

TEST(TraceWorkloadTest, RecordedRunReplaysWithSameVolumes) {
  workload::IorConfig config;
  config.ranks = 4;
  config.block_size = 4_MiB;
  config.transfer_size = 1_MiB;
  config.read_phase = true;
  const auto original = workload::ior_like(config);
  trace::Tracer tracer;
  const auto original_result = simulate(*original, &tracer);

  const auto replayed = workload_from_trace(tracer.take());
  const auto replay_result = simulate(*replayed, nullptr, 2);
  const FidelityReport report = compare_runs(original_result, replay_result);
  EXPECT_NEAR(report.bytes_read_ratio, 1.0, 1e-9);
  EXPECT_NEAR(report.bytes_written_ratio, 1.0, 1e-9);
  // Same system model, same ops: makespan within 20%.
  EXPECT_NEAR(report.makespan_ratio, 1.0, 0.2);
  EXPECT_TRUE(report.faithful(0.25)) << report.to_string();
}

TEST(TraceWorkloadTest, ThinkTimePreservationStretchesReplay) {
  // A workload with long compute gaps: replay with think-time preservation
  // must take much longer than replay without.
  workload::CheckpointConfig config;
  config.ranks = 2;
  config.checkpoint_per_rank = 1_MiB;
  config.transfer_size = 1_MiB;
  config.checkpoints = 3;
  config.compute_phase = SimTime::from_sec(2.0);
  const auto original = workload::checkpoint_restart(config);
  trace::Tracer tracer;
  (void)simulate(*original, &tracer);
  const auto trace = tracer.take();

  TraceReplayConfig with_think;
  with_think.preserve_think_time = true;
  TraceReplayConfig without_think;
  without_think.preserve_think_time = false;
  const auto slow = simulate(*workload_from_trace(trace, with_think));
  const auto fast = simulate(*workload_from_trace(trace, without_think));
  EXPECT_GT(slow.makespan.sec(), fast.makespan.sec() + 5.0);
}

TEST(TraceWorkloadTest, FirstOpenBecomesCreate) {
  trace::Trace trace;
  auto event = [&](trace::OpKind op, std::int32_t rank, const std::string& path,
                   std::int64_t at) {
    trace::TraceEvent e;
    e.op = op;
    e.rank = rank;
    e.path = path;
    e.start = SimTime::from_ns(at);
    e.end = SimTime::from_ns(at + 1);
    trace.append(e);
  };
  event(trace::OpKind::kOpen, 0, "/f", 0);
  event(trace::OpKind::kOpen, 1, "/f", 10);
  const auto w = workload_from_trace(trace);
  const auto ops = workload::materialize(*w);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0][0].kind, OpKind::kCreate);
  EXPECT_EQ(ops[1][0].kind, OpKind::kOpen);
}

class CompressionTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressionTest, LosslessRoundTripOnKernels) {
  std::unique_ptr<workload::Workload> w;
  switch (GetParam()) {
    case 0: {
      workload::IorConfig config;
      config.ranks = 4;
      config.block_size = 8_MiB;
      config.transfer_size = 1_MiB;
      config.read_phase = true;
      w = workload::ior_like(config);
      break;
    }
    case 1: {
      workload::MdtestConfig config;
      config.ranks = 2;
      config.files_per_rank = 32;
      w = workload::mdtest_like(config);
      break;
    }
    case 2: {
      workload::DlioConfig config;
      config.ranks = 2;
      config.samples = 128;
      config.samples_per_file = 32;
      w = workload::dlio_like(config);
      break;
    }
    default: {
      workload::BtioConfig config;
      config.ranks = 4;
      config.grid_points = 8;
      w = workload::btio_like(config);
      break;
    }
  }
  const auto compressed = CompressedWorkload::compress(*w);
  const auto restored = compressed.decompress();
  const auto original_ops = workload::materialize(*w);
  const auto restored_ops = workload::materialize(*restored);
  ASSERT_EQ(original_ops.size(), restored_ops.size());
  for (std::size_t r = 0; r < original_ops.size(); ++r) {
    ASSERT_EQ(original_ops[r].size(), restored_ops[r].size()) << "rank " << r;
    for (std::size_t i = 0; i < original_ops[r].size(); ++i) {
      const Op& a = original_ops[r][i];
      const Op& b = restored_ops[r][i];
      ASSERT_EQ(a.kind, b.kind) << r << ":" << i;
      ASSERT_EQ(a.path, b.path) << r << ":" << i;
      ASSERT_EQ(a.offset, b.offset) << r << ":" << i;
      ASSERT_EQ(a.size, b.size) << r << ":" << i;
      ASSERT_EQ(a.think_time, b.think_time) << r << ":" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, CompressionTest, ::testing::Values(0, 1, 2, 3));

TEST(CompressionTest, RegularPatternsCompressWell) {
  // 1024 sequential 1 MiB writes: delta tokenization makes them one
  // repeated symbol; Re-Pair packs them logarithmically.
  workload::IorConfig config;
  config.ranks = 1;
  config.block_size = 1_GiB;
  config.transfer_size = 1_MiB;
  const auto w = workload::ior_like(config);
  const auto compressed = CompressedWorkload::compress(*w);
  EXPECT_GT(compressed.compression_ratio(), 20.0);
  EXPECT_LT(compressed.distinct_tokens(), 16u);
}

TEST(CompressionTest, RandomPatternsCompressPoorly) {
  workload::DlioConfig config;
  config.ranks = 1;
  config.samples = 1024;
  config.samples_per_file = 1024;
  config.include_preparation = false;
  const auto w = workload::dlio_like(config);
  const auto shuffled = CompressedWorkload::compress(*w);
  config.shuffle = false;
  const auto sequential = CompressedWorkload::compress(*workload::dlio_like(config));
  // Shuffled minibatch reads have high-entropy deltas; sequential scans
  // collapse. The gap is the whole point of the DL-workload discussion.
  EXPECT_GT(sequential.compression_ratio(), shuffled.compression_ratio() * 3.0);
}

TEST(ExtrapolationTest, AffineWorkloadExtrapolates) {
  const auto captured = workload::parse_dsl(R"(
    name "fpp"
    ranks 4
    create "/out/f.{rank}"
    loop i 8 {
      write "/out/f.{rank}" at i * 1MiB size 1MiB
    }
    close "/out/f.{rank}"
  )");
  ExtrapolationError error;
  const auto model = ExtrapolationModel::fit(*captured, &error);
  ASSERT_TRUE(model.has_value()) << error.reason;
  const auto projected = model->generate(16);
  EXPECT_EQ(projected->ranks(), 16);
  const auto ops = workload::materialize(*projected);
  EXPECT_EQ(ops[15][0].path, "/out/f.15");
  EXPECT_EQ(ops[15][0].kind, OpKind::kCreate);
  EXPECT_EQ(ops[15][3].offset, (2_MiB).count());
  // Volume scales linearly with rank count.
  const auto fp = workload::footprint(*projected);
  EXPECT_EQ(fp.bytes_written, 16 * 8_MiB);
}

TEST(ExtrapolationTest, SharedOffsetsExtrapolateAffinely) {
  const auto captured = workload::parse_dsl(R"(
    name "shared"
    ranks 4
    open "/shared"
    write "/shared" at rank * 4MiB size 4MiB
    close "/shared"
  )");
  const auto model = ExtrapolationModel::fit(*captured);
  ASSERT_TRUE(model.has_value());
  const auto ops = workload::materialize(*model->generate(8));
  EXPECT_EQ(ops[7][1].offset, (28_MiB).count());
}

TEST(ExtrapolationTest, NonAffinePatternIsDiagnosed) {
  const auto captured = workload::parse_dsl(R"(
    name "quadratic"
    ranks 4
    write "/f" at rank * rank * 1KiB size 1KiB
  )");
  ExtrapolationError error;
  const auto model = ExtrapolationModel::fit(*captured, &error);
  EXPECT_FALSE(model.has_value());
  EXPECT_EQ(error.position, 0u);
  EXPECT_NE(error.reason.find("affine"), std::string::npos);
}

TEST(ExtrapolationTest, AsymmetricStructureIsDiagnosed) {
  std::vector<std::vector<Op>> ops(2);
  ops[0].push_back(Op::barrier());
  ops[1].push_back(Op::barrier());
  ops[1].push_back(Op::stat("/extra"));
  const workload::VectorWorkload w{"asym", std::move(ops)};
  ExtrapolationError error;
  EXPECT_FALSE(ExtrapolationModel::fit(w, &error).has_value());
  EXPECT_NE(error.reason.find("op count"), std::string::npos);
}

TEST(ExtrapolationTest, ExtrapolatedRunMatchesDirectRunShape) {
  // The C6 loop in miniature: capture at 4 ranks, extrapolate to 8, and
  // compare against a directly generated 8-rank run.
  auto dsl_at = [](int ranks) {
    return workload::parse_dsl("name \"fpp\"\nranks " + std::to_string(ranks) + R"(
      create "/out/f.{rank}"
      loop i 4 {
        write "/out/f.{rank}" at i * 1MiB size 1MiB
      }
      close "/out/f.{rank}"
    )");
  };
  const auto captured = dsl_at(4);
  const auto model = ExtrapolationModel::fit(*captured);
  ASSERT_TRUE(model.has_value());
  const auto projected = model->generate(8);
  const auto direct = dsl_at(8);
  const auto projected_result = simulate(*projected);
  const auto direct_result = simulate(*direct);
  const auto report = compare_runs(direct_result, projected_result);
  EXPECT_NEAR(report.bytes_written_ratio, 1.0, 1e-9);
  EXPECT_NEAR(report.makespan_ratio, 1.0, 0.05) << report.to_string();
}

TEST(FidelityTest, RatiosAndDegenerateCases) {
  driver::SimRunResult a;
  a.ops = 100;
  a.bytes_read = 10_MiB;
  a.bytes_written = 20_MiB;
  a.makespan = 2_s;
  driver::SimRunResult b = a;
  b.ops = 110;
  const auto report = compare_runs(a, b);
  EXPECT_NEAR(report.op_count_ratio, 1.1, 1e-12);
  EXPECT_NEAR(report.makespan_ratio, 1.0, 1e-12);
  EXPECT_FALSE(report.faithful(0.05));
  EXPECT_TRUE(report.faithful(0.11));
  // Zero-volume original: equal-zero replay is "1.0".
  driver::SimRunResult empty_a;
  driver::SimRunResult empty_b;
  EXPECT_NEAR(compare_runs(empty_a, empty_b).bytes_read_ratio, 1.0, 1e-12);
}

TEST(GrammarTest, ExpandReproducesStream) {
  const std::vector<std::uint32_t> stream{0, 1, 0, 1, 0, 1, 2, 0, 1, 0, 1, 2};
  const Grammar grammar = Grammar::compress(stream, 3);
  EXPECT_EQ(grammar.expand(), stream);
  EXPECT_LT(grammar.stored_symbols(), stream.size());
  EXPECT_GT(grammar.rule_count(), 0u);
}

TEST(GrammarTest, IncompressibleStreamSurvives) {
  std::vector<std::uint32_t> stream;
  for (std::uint32_t i = 0; i < 64; ++i) stream.push_back(i);
  const Grammar grammar = Grammar::compress(stream, 64);
  EXPECT_EQ(grammar.expand(), stream);
  EXPECT_EQ(grammar.rule_count(), 0u);
}

}  // namespace
}  // namespace pio::replay
