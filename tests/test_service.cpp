// Tests for pio::svc — the pioevald campaign service (DESIGN.md §15).
//
// Three layers under test:
//   1. The frame codec: round-trips for every message type, the CRC check
//      vector, and a malformed-input sweep (truncated, bad CRC, oversized,
//      unknown type, trailing garbage) asserting typed Error responses and
//      no state corruption — never a crash.
//   2. The per-point determinism digest: pinned golden values freeze the
//      canonical field order of eval::point_digest, and the service's
//      carried digest matches a recomputation from the decoded blob.
//   3. Cache semantics and scheduling: cross-session hits, in-flight
//      coalescing, cancel paths, admission control with deterministic
//      retry-after, per-session caps, and byte-identical output streams at
//      any worker thread count — closed by the exact accounting audit.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "eval/campaign.hpp"
#include "svc/evald.hpp"
#include "svc/messages.hpp"

using namespace pio;

namespace {

/// A cheap deterministic spec: `points` IOR-like workloads distinguished by
/// (j, salt), so specs with different salts request disjoint cache keys and
/// equal salts collide completely.
svc::CampaignSpec make_spec(std::uint32_t points, std::uint32_t salt = 0) {
  svc::CampaignSpec spec;
  spec.seed = 7;
  spec.calibration = 0.9;
  spec.testbed = {4, 2, 4, 1};
  spec.model = {4, 2, 2, 1};
  for (std::uint32_t j = 0; j < points; ++j) {
    svc::WorkloadSpec w;
    w.kind = svc::WorkloadKind::kIor;
    w.ranks = 2;
    w.block_kib = 128 * (1 + j + salt);
    w.transfer_kib = 32;
    w.read_phase = (j + salt) % 2 == 0;
    spec.workloads.push_back(w);
  }
  return spec;
}

std::vector<std::uint8_t> frame_bytes(svc::MsgType type,
                                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  svc::append_frame(type, payload, wire);
  return wire;
}

std::vector<std::uint8_t> submit_bytes(const svc::CampaignSpec& spec) {
  return frame_bytes(svc::MsgType::kSubmitCampaign, svc::encode(svc::SubmitCampaign{spec}));
}

/// Take and parse a session's pending output.
std::vector<svc::Frame> collect(svc::Evald& evald, svc::SessionId sid) {
  return svc::split_frames(evald.take_output(sid));
}

/// The PointResult frames of a parsed stream, in delivery order.
std::vector<svc::PointResult> points_of(const std::vector<svc::Frame>& frames) {
  std::vector<svc::PointResult> points;
  for (const svc::Frame& f : frames) {
    if (f.type != svc::MsgType::kPointResult) continue;
    svc::PointResult p;
    EXPECT_TRUE(svc::decode(f.payload, &p));
    points.push_back(std::move(p));
  }
  return points;
}

/// The single Error frame expected in a parsed stream.
svc::Error only_error(const std::vector<svc::Frame>& frames) {
  svc::Error err;
  std::size_t count = 0;
  for (const svc::Frame& f : frames) {
    if (f.type != svc::MsgType::kError) continue;
    EXPECT_TRUE(svc::decode(f.payload, &err));
    ++count;
  }
  EXPECT_EQ(count, 1u);
  return err;
}

// ------------------------------------------------------------ frame codec

TEST(ServiceCodec, Crc32CheckVector) {
  const std::string check = "123456789";
  EXPECT_EQ(codec::crc32(reinterpret_cast<const std::uint8_t*>(check.data()), check.size()),
            0xCBF43926u);
  EXPECT_EQ(codec::crc32(nullptr, 0), 0u);
}

TEST(ServiceCodec, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto wire = frame_bytes(svc::MsgType::kPointResult, payload);
  ASSERT_EQ(wire.size(), svc::kHeaderBytes + payload.size());
  svc::Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(svc::next_frame(wire.data(), wire.size(), &consumed, &frame),
            svc::FrameStatus::kFrame);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.type, svc::MsgType::kPointResult);
  EXPECT_EQ(frame.payload, payload);
}

TEST(ServiceCodec, SubmitCampaignRoundTrip) {
  svc::SubmitCampaign in{make_spec(3, 5)};
  in.spec.workloads[1].kind = svc::WorkloadKind::kDlio;
  in.spec.workloads[2].kind = svc::WorkloadKind::kWorkflow;
  svc::SubmitCampaign out;
  ASSERT_TRUE(svc::decode(svc::encode(in), &out));
  EXPECT_EQ(in.spec, out.spec);
}

TEST(ServiceCodec, EveryReplyTypeRoundTrips) {
  svc::SubmitAck ack{42, 7};
  svc::SubmitAck ack2;
  ASSERT_TRUE(svc::decode(svc::encode(ack), &ack2));
  EXPECT_EQ(ack2.campaign_id, 42u);
  EXPECT_EQ(ack2.points, 7u);

  svc::PointResult pr;
  pr.campaign_id = 3;
  pr.index = 2;
  pr.key = 0xDEADBEEFu;
  pr.digest = 0xFEEDFACEu;
  pr.source = svc::ResultSource::kCoalesced;
  pr.blob = {9, 8, 7};
  svc::PointResult pr2;
  ASSERT_TRUE(svc::decode(svc::encode(pr), &pr2));
  EXPECT_EQ(pr2.campaign_id, 3u);
  EXPECT_EQ(pr2.index, 2u);
  EXPECT_EQ(pr2.key, 0xDEADBEEFu);
  EXPECT_EQ(pr2.digest, 0xFEEDFACEu);
  EXPECT_EQ(pr2.source, svc::ResultSource::kCoalesced);
  EXPECT_EQ(pr2.blob, pr.blob);

  svc::CampaignDone done{11, 4, 2, true};
  svc::CampaignDone done2;
  ASSERT_TRUE(svc::decode(svc::encode(done), &done2));
  EXPECT_EQ(done2.campaign_id, 11u);
  EXPECT_EQ(done2.completed, 4u);
  EXPECT_EQ(done2.cancelled, 2u);
  EXPECT_TRUE(done2.was_cancelled);

  svc::CancelCampaign cancel{11};
  svc::CancelCampaign cancel2;
  ASSERT_TRUE(svc::decode(svc::encode(cancel), &cancel2));
  EXPECT_EQ(cancel2.campaign_id, 11u);

  svc::Stats stats;
  svc::Stats stats2;
  ASSERT_TRUE(svc::decode(svc::encode(stats), &stats2));

  svc::StatsReply reply;
  reply.stats.points_completed = 123;
  reply.stats.cache_hits = 45;
  svc::StatsReply reply2;
  ASSERT_TRUE(svc::decode(svc::encode(reply), &reply2));
  EXPECT_EQ(reply.stats, reply2.stats);

  svc::Error err{svc::ErrorCode::kOverloaded, 2500, "queue full"};
  svc::Error err2;
  ASSERT_TRUE(svc::decode(svc::encode(err), &err2));
  EXPECT_EQ(err2.code, svc::ErrorCode::kOverloaded);
  EXPECT_EQ(err2.retry_after_ns, 2500u);
  EXPECT_EQ(err2.detail, "queue full");
}

TEST(ServiceCodec, StrictDecodeRejectsTruncationAndTrailingBytes) {
  auto payload = svc::encode(svc::SubmitCampaign{make_spec(2)});
  svc::SubmitCampaign out;
  ASSERT_TRUE(svc::decode(payload, &out));
  // Truncated at every prefix length.
  for (std::size_t n = 0; n < payload.size(); ++n) {
    const std::vector<std::uint8_t> cut(payload.begin(),
                                        payload.begin() + static_cast<std::ptrdiff_t>(n));
    EXPECT_FALSE(svc::decode(cut, &out)) << "accepted a " << n << "-byte prefix";
  }
  // One trailing byte.
  payload.push_back(0);
  EXPECT_FALSE(svc::decode(payload, &out));
  // Hostile workload count: header claims more entries than bytes follow.
  auto hostile = svc::encode(svc::SubmitCampaign{make_spec(1)});
  hostile[8 + 8 + 13 + 13] = 0xFF;  // the u32 workload count field, low byte
  EXPECT_FALSE(svc::decode(hostile, &out));
}

TEST(ServiceCodec, PointBlobRoundTrip) {
  eval::CampaignPoint p;
  p.workload = "ior[r=2]";
  p.measured = SimTime::from_ms(12.5);
  p.simulated_raw = SimTime::from_ms(11.0);
  p.predicted = SimTime::from_ms(9.9);
  p.retries = 3;
  p.cache_hits = 17;
  p.rebuilt_bytes = Bytes::from_kib(64);
  const auto blob = svc::encode_point(p);
  eval::CampaignPoint q;
  ASSERT_TRUE(svc::decode_point(blob, &q));
  EXPECT_EQ(q.workload, p.workload);
  EXPECT_EQ(q.measured, p.measured);
  EXPECT_EQ(q.simulated_raw, p.simulated_raw);
  EXPECT_EQ(q.predicted, p.predicted);
  EXPECT_EQ(q.retries, 3u);
  EXPECT_EQ(q.cache_hits, 17u);
  EXPECT_EQ(q.rebuilt_bytes, Bytes::from_kib(64));
  // A truncated blob is rejected, not misparsed.
  const std::vector<std::uint8_t> cut(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(svc::decode_point(cut, &q));
}

// -------------------------------------------- malformed frames, live service

TEST(ServiceProtocol, ByteAtATimeFeedStillParses) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  const auto wire = submit_bytes(make_spec(1));
  for (const std::uint8_t byte : wire) evald.feed(sid, &byte, 1);
  const auto frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, svc::MsgType::kSubmitAck);
  evald.drain();
  evald.close_session(sid);
}

TEST(ServiceProtocol, BadCrcSkipsFrameAndRecovers) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  auto damaged = submit_bytes(make_spec(1));
  damaged.back() ^= 0xFF;  // corrupt the payload, keep the header
  evald.feed(sid, damaged);
  auto frames = collect(evald, sid);
  EXPECT_EQ(only_error(frames).code, svc::ErrorCode::kBadCrc);
  // The stream recovered: the next well-formed frame is served normally.
  evald.feed(sid, submit_bytes(make_spec(1)));
  frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, svc::MsgType::kSubmitAck);
  evald.drain();
  (void)evald.take_output(sid);
  evald.close_session(sid);
  evald.audit_quiescent();
  EXPECT_EQ(evald.stats().protocol_errors, 1u);
}

TEST(ServiceProtocol, HeaderFaultsPoisonTheSession) {
  struct Case {
    const char* name;
    std::size_t offset;   // byte to clobber in the header
    std::uint8_t value;
    svc::ErrorCode expect;
  };
  const Case cases[] = {
      {"magic", 0, 0x00, svc::ErrorCode::kBadMagic},
      {"version", 4, 0x77, svc::ErrorCode::kBadVersion},
      {"length", 11, 0xFF, svc::ErrorCode::kOversizedFrame},  // top byte of len
  };
  for (const Case& c : cases) {
    svc::Evald evald{{.threads = 1}};
    const svc::SessionId sid = evald.open_session();
    auto wire = submit_bytes(make_spec(1));
    wire[c.offset] = c.value;
    evald.feed(sid, wire);
    EXPECT_EQ(only_error(collect(evald, sid)).code, c.expect) << c.name;
    // Poisoned: even a valid follow-up frame is ignored, silently.
    evald.feed(sid, submit_bytes(make_spec(1)));
    EXPECT_TRUE(collect(evald, sid).empty()) << c.name;
    evald.close_session(sid);
    evald.audit_quiescent();
  }
}

TEST(ServiceProtocol, UnknownAndUnexpectedTypesGetTypedErrors) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, frame_bytes(static_cast<svc::MsgType>(99), {}));
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kUnknownType);
  // A server→client type sent by the client is known but not acceptable.
  evald.feed(sid, frame_bytes(svc::MsgType::kSubmitAck, svc::encode(svc::SubmitAck{1, 1})));
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kUnexpectedType);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceProtocol, ZeroAndMalformedPayloads) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  // Zero-length payload where one is required → typed malformed error.
  evald.feed(sid, frame_bytes(svc::MsgType::kSubmitCampaign, {}));
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kMalformed);
  // Zero-length payload where it is the contract → served.
  evald.feed(sid, frame_bytes(svc::MsgType::kStats, {}));
  const auto frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, svc::MsgType::kStatsReply);
  // Stats with a stray payload byte → malformed, not a crash.
  evald.feed(sid, frame_bytes(svc::MsgType::kStats, {1}));
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kMalformed);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceProtocol, SemanticallyInvalidSpecIsLimitExceeded) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  auto spec = make_spec(1);
  spec.workloads[0].ranks = 1u << 20;
  evald.feed(sid, submit_bytes(spec));
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kLimitExceeded);
  EXPECT_EQ(evald.stats().campaigns_rejected, 1u);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceProtocol, FinishInsideFrameReportsTruncation) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  const auto wire = submit_bytes(make_spec(1));
  evald.feed(sid, wire.data(), wire.size() - 3);
  EXPECT_TRUE(collect(evald, sid).empty());  // incomplete: nothing happened yet
  evald.finish(sid);
  EXPECT_EQ(only_error(collect(evald, sid)).code, svc::ErrorCode::kTruncatedFrame);
  evald.close_session(sid);
  evald.audit_quiescent();
}

// ------------------------------------------------------- digest goldens

TEST(ServiceDigest, PointDigestGoldenValues) {
  // Frozen oracle for the canonical field order of eval::point_digest. If
  // this test breaks, the digest definition changed — which invalidates
  // every recorded campaign digest and the service cache's byte-identity
  // contract. Append new CampaignPoint fields; never reorder.
  eval::CampaignConfig config;
  config.seed = 7;
  eval::CampaignPoint zero;
  EXPECT_EQ(eval::point_digest(config, zero), 218557649205177348ULL);

  eval::CampaignPoint p;
  p.workload = "golden[r=4]";
  p.measured = SimTime::from_ns(1'000'000'001);
  p.simulated_raw = SimTime::from_ns(900'000'000);
  p.predicted = SimTime::from_ns(810'000'000);
  p.failed_ops = 1;
  p.retries = 2;
  p.timeouts = 3;
  p.giveups = 4;
  p.failovers = 5;
  p.degraded_reads = 6;
  p.data_lost_ops = 7;
  p.rebuilds_completed = 8;
  p.rebuilt_bytes = Bytes::from_kib(9);
  p.stale_map_retries = 10;
  p.map_refreshes = 11;
  p.down_detections = 12;
  p.migration_marked_bytes = Bytes::from_kib(13);
  p.overload_rejections = 14;
  p.budget_denied = 15;
  p.breaker_opens = 16;
  p.breaker_fast_fails = 17;
  p.deadline_giveups = 18;
  p.server_overload_rejected = 19;
  p.server_shed = 20;
  p.cache_hits = 21;
  p.cache_misses = 22;
  p.cache_evictions = 23;
  p.cache_prefetch_issued = 24;
  p.cache_prefetch_used = 25;
  p.cache_prefetch_wasted = 26;
  p.cache_writebacks = 27;
  p.cache_absorbed_writes = 28;
  EXPECT_EQ(eval::point_digest(config, p), 10869046104899268794ULL);

  // The seed is part of the digest: same point, different campaign seed.
  config.seed = 8;
  EXPECT_NE(eval::point_digest(config, p), 10869046104899268794ULL);
}

TEST(ServiceDigest, CarriedDigestMatchesDecodedBlob) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  const auto spec = make_spec(2);
  evald.feed(sid, submit_bytes(spec));
  evald.drain();
  const auto results = points_of(collect(evald, sid));
  ASSERT_EQ(results.size(), 2u);
  const eval::CampaignConfig config = svc::to_campaign_config(spec);
  for (const svc::PointResult& r : results) {
    eval::CampaignPoint point;
    ASSERT_TRUE(svc::decode_point(r.blob, &point));
    EXPECT_EQ(eval::point_digest(config, point), r.digest);
    EXPECT_EQ(r.key, svc::point_key(spec, r.index));
  }
  evald.close_session(sid);
  evald.audit_quiescent();
}

// ------------------------------------------------------- cache semantics

TEST(ServiceCache, CrossSessionHitIsByteIdentical) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId a = evald.open_session();
  evald.feed(a, submit_bytes(make_spec(3)));
  evald.drain();
  const auto cold = points_of(collect(evald, a));
  ASSERT_EQ(cold.size(), 3u);
  for (const auto& r : cold) EXPECT_EQ(r.source, svc::ResultSource::kComputed);

  const svc::SessionId b = evald.open_session();
  evald.feed(b, submit_bytes(make_spec(3)));
  evald.drain();
  const auto warm = points_of(collect(evald, b));
  ASSERT_EQ(warm.size(), 3u);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i].source, svc::ResultSource::kCached);
    EXPECT_EQ(warm[i].key, cold[i].key);
    EXPECT_EQ(warm[i].digest, cold[i].digest);
    EXPECT_EQ(warm[i].blob, cold[i].blob);  // the byte-identity contract
  }
  const svc::ServiceStats& s = evald.stats();
  EXPECT_EQ(s.points_computed, 3u);
  EXPECT_EQ(s.points_cached, 3u);
  EXPECT_EQ(s.cache_hits, 3u);
  EXPECT_EQ(s.cache_entries, 3u);
  evald.close_session(a);
  evald.close_session(b);
  evald.audit_quiescent();
}

TEST(ServiceCache, InflightRequestsCoalesce) {
  // Both sessions submit the same spec before any scheduling round: the
  // first selection of each key computes, the second waits on the in-flight
  // result instead of recomputing.
  svc::Evald evald{{.threads = 2}};
  const svc::SessionId a = evald.open_session();
  const svc::SessionId b = evald.open_session();
  evald.feed(a, submit_bytes(make_spec(3)));
  evald.feed(b, submit_bytes(make_spec(3)));
  evald.drain();
  const auto ra = points_of(collect(evald, a));
  const auto rb = points_of(collect(evald, b));
  ASSERT_EQ(ra.size(), 3u);
  ASSERT_EQ(rb.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ra[i].source, svc::ResultSource::kComputed);
    EXPECT_EQ(rb[i].source, svc::ResultSource::kCoalesced);
    EXPECT_EQ(ra[i].blob, rb[i].blob);
  }
  const svc::ServiceStats& s = evald.stats();
  EXPECT_EQ(s.points_computed, 3u);
  EXPECT_EQ(s.points_coalesced, 3u);
  EXPECT_EQ(s.points_cached, 0u);
  EXPECT_EQ(s.cache_misses, 6u);  // every selection missed; half coalesced
  evald.close_session(a);
  evald.close_session(b);
  evald.audit_quiescent();
}

TEST(ServiceCache, CancelQueuedCampaign) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, submit_bytes(make_spec(4)));
  auto frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  svc::SubmitAck ack;
  ASSERT_TRUE(svc::decode(frames[0].payload, &ack));
  evald.feed(sid, frame_bytes(svc::MsgType::kCancelCampaign,
                              svc::encode(svc::CancelCampaign{ack.campaign_id})));
  frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, svc::MsgType::kCampaignDone);
  svc::CampaignDone done;
  ASSERT_TRUE(svc::decode(frames[0].payload, &done));
  EXPECT_TRUE(done.was_cancelled);
  EXPECT_EQ(done.completed, 0u);
  EXPECT_EQ(done.cancelled, 4u);
  EXPECT_EQ(evald.pending_points(), 0u);
  EXPECT_EQ(evald.stats().points_cancelled, 4u);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceCache, CancelPartwayLeavesCacheConsistent) {
  svc::EvaldConfig config;
  config.threads = 1;
  config.batch_points = 1;  // one point per round, so a cancel lands mid-campaign
  svc::Evald evald{config};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, submit_bytes(make_spec(3)));
  (void)evald.pump();  // computes exactly point 0
  auto frames = collect(evald, sid);
  svc::SubmitAck ack;
  ASSERT_TRUE(svc::decode(frames[0].payload, &ack));
  const auto delivered = points_of(frames);
  ASSERT_EQ(delivered.size(), 1u);
  evald.feed(sid, frame_bytes(svc::MsgType::kCancelCampaign,
                              svc::encode(svc::CancelCampaign{ack.campaign_id})));
  frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  svc::CampaignDone done;
  ASSERT_TRUE(svc::decode(frames[0].payload, &done));
  EXPECT_TRUE(done.was_cancelled);
  EXPECT_EQ(done.completed, 1u);
  EXPECT_EQ(done.cancelled, 2u);
  // The completed point's cache entry survived the cancellation: a fresh
  // session is served from cache, byte-identically.
  const svc::SessionId other = evald.open_session();
  evald.feed(other, submit_bytes(make_spec(3)));
  evald.drain();
  const auto warm = points_of(collect(evald, other));
  ASSERT_EQ(warm.size(), 3u);
  EXPECT_EQ(warm[0].source, svc::ResultSource::kCached);
  EXPECT_EQ(warm[0].blob, delivered[0].blob);
  EXPECT_EQ(warm[1].source, svc::ResultSource::kComputed);
  evald.close_session(sid);
  evald.close_session(other);
  evald.audit_quiescent();
}

TEST(ServiceCache, CancelUnknownOrForeignCampaign) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId a = evald.open_session();
  const svc::SessionId b = evald.open_session();
  evald.feed(a, submit_bytes(make_spec(1)));
  auto frames = collect(evald, a);
  svc::SubmitAck ack;
  ASSERT_TRUE(svc::decode(frames[0].payload, &ack));
  // Unknown id.
  evald.feed(a, frame_bytes(svc::MsgType::kCancelCampaign,
                            svc::encode(svc::CancelCampaign{999})));
  EXPECT_EQ(only_error(collect(evald, a)).code, svc::ErrorCode::kUnknownCampaign);
  // Another session's campaign is invisible to b.
  evald.feed(b, frame_bytes(svc::MsgType::kCancelCampaign,
                            svc::encode(svc::CancelCampaign{ack.campaign_id})));
  EXPECT_EQ(only_error(collect(evald, b)).code, svc::ErrorCode::kUnknownCampaign);
  evald.drain();
  evald.close_session(a);
  evald.close_session(b);
  evald.audit_quiescent();
}

TEST(ServiceCache, CloseSessionCancelsItsQueuedWork) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, submit_bytes(make_spec(5)));
  evald.close_session(sid);  // no pump ever ran
  EXPECT_EQ(evald.pending_points(), 0u);
  EXPECT_EQ(evald.stats().points_cancelled, 5u);
  EXPECT_EQ(evald.stats().campaigns_cancelled, 1u);
  evald.audit_quiescent();
}

// -------------------------------------------------- admission & fairness

TEST(ServiceAdmission, RejectsAtTheDoorWithDeterministicRetryAfter) {
  svc::EvaldConfig config;
  config.threads = 1;
  config.max_queue_points = 4;
  config.retry_after_floor_ns = 1000;
  config.per_point_cost_hint_ns = 500;
  svc::Evald evald{config};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, submit_bytes(make_spec(3)));
  ASSERT_EQ(collect(evald, sid)[0].type, svc::MsgType::kSubmitAck);
  // 3 queued + 3 requested > 4 → rejected, hint = floor + 3 × cost.
  evald.feed(sid, submit_bytes(make_spec(3, 10)));
  const svc::Error err = only_error(collect(evald, sid));
  EXPECT_EQ(err.code, svc::ErrorCode::kOverloaded);
  EXPECT_EQ(err.retry_after_ns, 1000u + 3u * 500u);
  EXPECT_EQ(evald.stats().campaigns_rejected, 1u);
  // After the backlog drains the same submit is accepted.
  evald.drain();
  (void)evald.take_output(sid);  // discard the first campaign's results
  evald.feed(sid, submit_bytes(make_spec(3, 10)));
  EXPECT_EQ(collect(evald, sid)[0].type, svc::MsgType::kSubmitAck);
  evald.drain();
  (void)evald.take_output(sid);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceScheduler, RoundRobinWithInflightCapKeepsSmallCampaignsLive) {
  // A first-come 8-point campaign must not monopolize the round: with a
  // per-session cap of 2 and a batch of 4, the later 2-point campaign
  // finishes in the very first round.
  svc::EvaldConfig config;
  config.threads = 1;
  config.batch_points = 4;
  config.session_inflight_cap = 2;
  svc::Evald evald{config};
  const svc::SessionId big = evald.open_session();
  const svc::SessionId small = evald.open_session();
  evald.feed(big, submit_bytes(make_spec(8)));
  evald.feed(small, submit_bytes(make_spec(2, 20)));
  (void)evald.pump();
  const auto big_frames = collect(evald, big);
  const auto small_frames = collect(evald, small);
  EXPECT_EQ(points_of(big_frames).size(), 2u);   // capped
  EXPECT_EQ(points_of(small_frames).size(), 2u); // complete
  bool small_done = false;
  for (const auto& f : small_frames)
    if (f.type == svc::MsgType::kCampaignDone) small_done = true;
  EXPECT_TRUE(small_done);
  evald.drain();
  EXPECT_EQ(points_of(collect(evald, big)).size(), 6u);
  (void)evald.take_output(big);
  evald.close_session(big);
  evald.close_session(small);
  evald.audit_quiescent();
}

// ------------------------------------------------ determinism & accounting

TEST(ServiceDeterminism, OutputBytesInvariantAcrossThreadCounts) {
  // The full server→client byte stream of a mixed scenario — submissions,
  // partial rounds, a cancel, cache hits and coalescing — must be identical
  // at 1, 2, and 8 worker threads.
  const auto run = [](int threads) {
    svc::EvaldConfig config;
    config.threads = threads;
    config.batch_points = 4;
    svc::Evald evald{config};
    const svc::SessionId a = evald.open_session();
    const svc::SessionId b = evald.open_session();
    const svc::SessionId c = evald.open_session();
    evald.feed(a, submit_bytes(make_spec(4)));
    evald.feed(b, submit_bytes(make_spec(4)));      // coalesces with a
    evald.feed(c, submit_bytes(make_spec(3, 30)));  // disjoint keys
    (void)evald.pump();
    evald.feed(c, submit_bytes(make_spec(2, 40)));
    auto frames = collect(evald, c);
    svc::SubmitAck ack;  // cancel c's *second* campaign mid-flight
    for (const auto& f : frames) {
      if (f.type == svc::MsgType::kSubmitAck) {
        EXPECT_TRUE(svc::decode(f.payload, &ack));
      }
    }
    evald.feed(c, frame_bytes(svc::MsgType::kCancelCampaign,
                              svc::encode(svc::CancelCampaign{ack.campaign_id})));
    evald.drain();
    evald.feed(a, submit_bytes(make_spec(4)));  // fully cached replay
    evald.drain();
    std::vector<std::uint8_t> all;
    for (const svc::SessionId sid : {a, b, c}) {
      // Frames already taken mid-scenario for c are not replayed; what
      // matters is that the remaining stream and counters agree.
      const auto rest = evald.take_output(sid);
      all.insert(all.end(), rest.begin(), rest.end());
      evald.close_session(sid);
    }
    evald.audit_quiescent();
    return std::make_pair(all, evald.stats());
  };
  const auto [bytes1, stats1] = run(1);
  const auto [bytes2, stats2] = run(2);
  const auto [bytes8, stats8] = run(8);
  EXPECT_EQ(bytes1, bytes2);
  EXPECT_EQ(bytes1, bytes8);
  EXPECT_EQ(stats1, stats2);
  EXPECT_EQ(stats1, stats8);
  EXPECT_GT(stats1.points_coalesced, 0u);
  EXPECT_GT(stats1.points_cached, 0u);
}

TEST(ServiceStats, StatsRequestSnapshotsCounters) {
  svc::Evald evald{{.threads = 1}};
  const svc::SessionId sid = evald.open_session();
  evald.feed(sid, submit_bytes(make_spec(2)));
  evald.drain();
  (void)evald.take_output(sid);
  evald.feed(sid, frame_bytes(svc::MsgType::kStats, {}));
  const auto frames = collect(evald, sid);
  ASSERT_EQ(frames.size(), 1u);
  svc::StatsReply reply;
  ASSERT_TRUE(svc::decode(frames[0].payload, &reply));
  EXPECT_EQ(reply.stats.sessions_opened, 1u);
  EXPECT_EQ(reply.stats.campaigns_completed, 1u);
  EXPECT_EQ(reply.stats.points_completed, 2u);
  EXPECT_EQ(reply.stats.points_computed, 2u);
  // The snapshot was taken before the reply frame was emitted.
  EXPECT_EQ(reply.stats.frames_out, evald.stats().frames_out - 1);
  evald.close_session(sid);
  evald.audit_quiescent();
}

TEST(ServiceAudit, AccountingExactAfterMixedLoad) {
  svc::Evald evald{{.threads = 2}};
  std::vector<svc::SessionId> ids;
  for (std::uint32_t s = 0; s < 12; ++s) {
    const svc::SessionId sid = evald.open_session();
    ids.push_back(sid);
    evald.feed(sid, submit_bytes(make_spec(2 + s % 3, s % 4)));
    if (s % 3 == 2) (void)evald.pump();
  }
  evald.drain();
  const svc::ServiceStats& s = evald.stats();
  EXPECT_EQ(s.cache_lookups, s.cache_hits + s.cache_misses);
  EXPECT_EQ(s.cache_misses, s.points_computed + s.points_coalesced);
  EXPECT_EQ(s.points_completed, s.points_computed + s.points_cached + s.points_coalesced);
  EXPECT_GT(s.cache_hits, 0u);
  for (const svc::SessionId sid : ids) {
    (void)evald.take_output(sid);
    evald.close_session(sid);
  }
  evald.audit_quiescent();
}

}  // namespace
