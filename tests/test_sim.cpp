// Unit tests for the discrete-event engine and queueing primitives.
//
// piolint: allow-file(C2) — test bodies schedule against a stack-local
// engine and drain it (run()) in the same scope, so by-reference captures
// cannot outlive their frame; library code gets no such exemption.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace pio::sim {
namespace {

using namespace pio::literals;

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30_us, [&] { order.push_back(3); });
  e.schedule_at(10_us, [&] { order.push_back(1); });
  e.schedule_at(20_us, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30_us);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(EngineTest, TiesFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5_us, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule_at(10_us, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5_us, [] {}), std::logic_error);
  EXPECT_THROW(e.schedule_after(SimTime::from_ns(-1), [] {}), std::logic_error);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10_us, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(EngineTest, MassCancellationCompactsAndReleasesCaptures) {
  // Cancellation is lazy, but not unboundedly so: once dead entries
  // outnumber live ones the heap compacts, destroying the cancelled
  // callables. A schedule-far-future-then-cancel pattern must therefore
  // release its captures promptly (only a sub-threshold residue < 64 may
  // linger until it surfaces or the next compaction).
  Engine e;
  auto token = std::make_shared<int>(7);
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(e.schedule_after(SimTime::from_ms(100.0 + i), [token] { (void)*token; }));
  }
  EXPECT_EQ(token.use_count(), 1001);
  for (const EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_LT(token.use_count(), 65) << "compaction should have destroyed cancelled callables";
  e.run();  // drains the residue
  e.assert_drained();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EngineTest, CancellationInterleavedWithExecutionKeepsOrder) {
  // Compaction re-heapifies; the (time, seq) total order must make the pop
  // sequence identical to the purely lazy path.
  Engine e;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 300; ++i) {
    const EventId id = e.schedule_at(SimTime::from_us(10.0 + i), [&order, i] {
      order.push_back(i);
    });
    if (i % 3 != 0) cancelled.push_back(id);
  }
  for (const EventId id : cancelled) EXPECT_TRUE(e.cancel(id));
  e.run();
  e.assert_drained();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t k = 0; k < order.size(); ++k) {
    EXPECT_EQ(order[k], static_cast<int>(k) * 3);
  }
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine e;
  int count = 0;
  e.schedule_at(10_us, [&] { ++count; });
  e.schedule_at(20_us, [&] { ++count; });
  e.schedule_at(30_us, [&] { ++count; });
  e.run(20_us);
  EXPECT_EQ(count, 2);
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(EngineTest, HandlersCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.schedule_after(1_us, recurse);
  };
  e.schedule_after(1_us, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 100_us);
}

TEST(EngineTest, RngStreamsAreStable) {
  Engine e{1234};
  Rng a = e.rng_stream(5);
  Rng b = e.rng_stream(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FifoServerTest, SerializesJobs) {
  Engine e;
  FifoServer server{e};
  std::vector<std::int64_t> completions;
  for (int i = 0; i < 3; ++i) {
    server.submit(10_us, [&] { completions.push_back(e.now().ns()); });
  }
  e.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], 10'000);
  EXPECT_EQ(completions[1], 20'000);
  EXPECT_EQ(completions[2], 30'000);
  EXPECT_EQ(server.stats().jobs_completed, 3u);
  EXPECT_EQ(server.stats().busy_time, 30_us);
  // Job 2 waited 10us, job 3 waited 20us.
  EXPECT_EQ(server.stats().total_wait, 30_us);
  EXPECT_EQ(server.stats().max_queue_depth, 3u);
}

TEST(FifoServerTest, NegativeServiceTimeThrows) {
  Engine e;
  FifoServer server{e};
  EXPECT_THROW(server.submit(SimTime::from_ns(-5), [] {}), std::invalid_argument);
}

TEST(FairShareChannelTest, SingleFlowTakesSizeOverCapacity) {
  Engine e;
  FairShareChannel link{e, Bandwidth::from_mib_per_sec(100.0), 0_us};
  SimTime done = SimTime::zero();
  link.transfer(100_MiB, [&] { done = e.now(); });
  e.run();
  // piolint: allow(T1) — NEAR tolerance literal, not a unit conversion.
  EXPECT_NEAR(done.sec(), 1.0, 1e-6);
  EXPECT_EQ(link.bytes_moved(), 100_MiB);
}

TEST(FairShareChannelTest, TwoEqualFlowsShareBandwidth) {
  Engine e;
  FairShareChannel link{e, Bandwidth::from_mib_per_sec(100.0), 0_us};
  std::vector<double> done;
  link.transfer(50_MiB, [&] { done.push_back(e.now().sec()); });
  link.transfer(50_MiB, [&] { done.push_back(e.now().sec()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Each gets 50 MiB/s while both are active; both finish at ~1 s.
  EXPECT_NEAR(done[0], 1.0, 1e-3);
  EXPECT_NEAR(done[1], 1.0, 1e-3);
}

TEST(FairShareChannelTest, LateFlowSlowsEarlyFlow) {
  Engine e;
  FairShareChannel link{e, Bandwidth::from_mib_per_sec(100.0), 0_us};
  double first_done = 0.0;
  double second_done = 0.0;
  link.transfer(100_MiB, [&] { first_done = e.now().sec(); });
  e.schedule_at(SimTime::from_sec(0.5), [&] {
    link.transfer(50_MiB, [&] { second_done = e.now().sec(); });
  });
  e.run();
  // First flow: 50 MiB alone (0.5s), then shares: remaining 50 MiB at
  // 50 MiB/s = 1s more -> 1.5s total. Second: 50 MiB at 50 MiB/s -> also 1.5s.
  EXPECT_NEAR(first_done, 1.5, 1e-3);
  EXPECT_NEAR(second_done, 1.5, 1e-3);
}

TEST(FairShareChannelTest, LatencyAppliesOnce) {
  Engine e;
  FairShareChannel link{e, Bandwidth::from_gib_per_sec(1.0), 100_us};
  SimTime done = SimTime::zero();
  link.transfer(Bytes::zero(), [&] { done = e.now(); });
  e.run();
  EXPECT_EQ(done, 100_us);
}

TEST(TokenPoolTest, GrantsFifo) {
  Engine e;
  TokenPool pool{e, 2};
  std::vector<int> grants;
  pool.acquire(2, [&] { grants.push_back(1); });
  pool.acquire(1, [&] { grants.push_back(2); });
  pool.acquire(1, [&] { grants.push_back(3); });
  EXPECT_EQ(grants, (std::vector<int>{1}));
  pool.release(2);
  EXPECT_EQ(grants, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(pool.available(), 0u);
}

TEST(TokenPoolTest, LargeHeadRequestBlocksSmallerOnes) {
  Engine e;
  TokenPool pool{e, 4};
  std::vector<int> grants;
  pool.acquire(3, [&] { grants.push_back(1); });
  pool.acquire(4, [&] { grants.push_back(2); });  // must wait for all 4
  pool.acquire(1, [&] { grants.push_back(3); });  // FIFO: behind the 4
  EXPECT_EQ(grants, (std::vector<int>{1}));
  pool.release(3);
  EXPECT_EQ(grants, (std::vector<int>{1, 2}));
  pool.release(4);
  EXPECT_EQ(grants, (std::vector<int>{1, 2, 3}));
}

TEST(TokenPoolTest, OverReleaseThrows) {
  Engine e;
  TokenPool pool{e, 2};
  EXPECT_THROW(pool.release(1), std::logic_error);
}

TEST(EngineDeterminismTest, IdenticalRunsProduceIdenticalHistories) {
  auto run_once = [] {
    Engine e{77};
    FifoServer server{e};
    Rng rng = e.rng_stream(1);
    std::vector<std::int64_t> history;
    for (int i = 0; i < 50; ++i) {
      const auto service = SimTime::from_us(rng.uniform(1.0, 100.0));
      e.schedule_at(SimTime::from_us(rng.uniform(0.0, 500.0)), [&, service] {
        server.submit(service, [&] { history.push_back(e.now().ns()); });
      });
    }
    e.run();
    return history;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pio::sim
