// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "stats/descriptive.hpp"
#include "stats/hypothesis.hpp"
#include "stats/markov.hpp"
#include "stats/regression.hpp"

namespace pio::stats {
namespace {

TEST(DescriptiveTest, Basics) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);  // sample stddev
  EXPECT_NEAR(coefficient_of_variation(xs), 2.138 / 5.0, 1e-3);
  EXPECT_DOUBLE_EQ(min(xs), 2.0);
  EXPECT_DOUBLE_EQ(max(xs), 9.0);
  EXPECT_DOUBLE_EQ(median(xs), 4.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(DescriptiveTest, EmptyAndDegenerate) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_EQ(variance(one), 0.0);
  EXPECT_THROW((void)quantile(one, 1.5), std::domain_error);
}

TEST(DescriptiveTest, KahanSummationSurvivesMixedMagnitudes) {
  std::vector<double> xs;
  xs.push_back(1e16);
  for (int i = 0; i < 10; ++i) xs.push_back(1.0);
  xs.push_back(-1e16);
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
}

TEST(CorrelationTest, PearsonKnownValues) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
  const std::vector<double> constant{3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(xs, constant), 0.0);
}

TEST(CorrelationTest, SpearmanIsRankBased) {
  // A monotone nonlinear relation: Spearman 1, Pearson < 1.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(EmpiricalCdfTest, StepsCorrectly) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  const EmpiricalCdf cdf{xs};
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf(10.0), 1.0);
}

TEST(RegressionTest, SimpleFitRecoversLine) {
  Rng rng{1, 0};
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    ys.push_back(3.0 + 2.0 * x + rng.normal(0.0, 0.01));
  }
  const SimpleFit fit = fit_simple(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 0.01);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
  EXPECT_NEAR(fit.predict(5.0), 13.0, 0.05);
}

TEST(RegressionTest, MultivariateRecoversCoefficients) {
  Rng rng{2, 0};
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform(0.0, 5.0);
    const double b = rng.uniform(0.0, 5.0);
    const double c = rng.uniform(0.0, 5.0);
    rows.push_back({a, b, c});
    ys.push_back(1.5 - 2.0 * a + 0.5 * b + 4.0 * c + rng.normal(0.0, 0.01));
  }
  const LinearModel model = LinearModel::fit(rows, ys);
  ASSERT_EQ(model.coefficients().size(), 4u);
  EXPECT_NEAR(model.coefficients()[0], 1.5, 0.02);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 0.01);
  EXPECT_NEAR(model.coefficients()[2], 0.5, 0.01);
  EXPECT_NEAR(model.coefficients()[3], 4.0, 0.01);
  EXPECT_GT(model.r_squared(), 0.999);
}

TEST(RegressionTest, SingularDesignThrows) {
  // Perfectly collinear features.
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) {
    const double x = i;
    rows.push_back({x, 2.0 * x});
    ys.push_back(x);
  }
  EXPECT_THROW((void)LinearModel::fit(rows, ys), std::runtime_error);
}

TEST(RegressionTest, ErrorMetrics) {
  const std::vector<double> predicted{10.0, 20.0, 30.0};
  const std::vector<double> actual{12.0, 18.0, 30.0};
  const ErrorMetrics m = compute_errors(predicted, actual);
  EXPECT_NEAR(m.mae, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.rmse, std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_NEAR(m.mape, (2.0 / 12.0 + 2.0 / 18.0) / 3.0, 1e-12);
}

TEST(MarkovTest, FitRecoversTransitions) {
  // Deterministic cycle 0 -> 1 -> 2 -> 0.
  std::vector<std::uint32_t> seq;
  for (int i = 0; i < 300; ++i) seq.push_back(static_cast<std::uint32_t>(i % 3));
  const MarkovChain chain = MarkovChain::fit(seq, 3);
  EXPECT_NEAR(chain.probability(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(chain.probability(1, 2), 1.0, 1e-12);
  EXPECT_NEAR(chain.probability(2, 0), 1.0, 1e-12);
  const auto pi = chain.stationary();
  for (const double p : pi) EXPECT_NEAR(p, 1.0 / 3.0, 1e-6);
}

TEST(MarkovTest, GenerateFollowsChain) {
  const MarkovChain chain{{{0.0, 1.0}, {1.0, 0.0}}};  // strict alternation
  Rng rng{3, 0};
  const auto seq = chain.generate(0, 10, rng);
  ASSERT_EQ(seq.size(), 10u);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], static_cast<std::uint32_t>(i % 2));
  }
}

TEST(MarkovTest, ValidationRejectsBadMatrices) {
  EXPECT_THROW(MarkovChain({{0.5, 0.2}, {0.5, 0.5}}), std::invalid_argument);
  EXPECT_THROW(MarkovChain({{1.0}, {1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW((void)MarkovChain::fit(std::vector<std::uint32_t>{0, 5}, 3),
               std::invalid_argument);
}

TEST(MarkovTest, LogLikelihoodPrefersTheGeneratingChain) {
  Rng rng{4, 0};
  const MarkovChain truth{{{0.9, 0.1}, {0.3, 0.7}}};
  const auto seq = truth.generate(0, 2000, rng);
  const MarkovChain fitted = MarkovChain::fit(seq, 2, 1.0);
  const MarkovChain uniform{{{0.5, 0.5}, {0.5, 0.5}}};
  EXPECT_GT(fitted.log_likelihood(seq), uniform.log_likelihood(seq));
  EXPECT_NEAR(fitted.probability(0, 0), 0.9, 0.05);
  EXPECT_NEAR(fitted.probability(1, 1), 0.7, 0.05);
}

TEST(HypothesisTest, TTestDetectsShiftedMeans) {
  Rng rng{5, 0};
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal(10.0, 1.0));
    b.push_back(rng.normal(12.0, 1.0));
    c.push_back(rng.normal(10.0, 1.0));
  }
  EXPECT_TRUE(welch_t_test(a, b).significant());
  EXPECT_FALSE(welch_t_test(a, c).significant());
  EXPECT_GT(welch_t_test(a, c).p_value, 0.05);
}

TEST(HypothesisTest, KsDetectsDifferentShapes) {
  Rng rng{6, 0};
  std::vector<double> normal;
  std::vector<double> heavy;
  std::vector<double> normal2;
  for (int i = 0; i < 400; ++i) {
    normal.push_back(rng.normal(5.0, 1.0));
    heavy.push_back(rng.exponential(5.0));
    normal2.push_back(rng.normal(5.0, 1.0));
  }
  EXPECT_TRUE(ks_test(normal, heavy).significant());
  EXPECT_FALSE(ks_test(normal, normal2).significant());
}

TEST(HypothesisTest, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-9);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.25), 0.25 * 0.25 * (3.0 - 0.5), 1e-9);
  EXPECT_EQ(incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_EQ(incomplete_beta(3.0, 4.0, 1.0), 1.0);
  EXPECT_THROW((void)incomplete_beta(1.0, 1.0, 2.0), std::domain_error);
}

}  // namespace
}  // namespace pio::stats
