// Unit tests for tracing, profiling, the backend shim, and server stats.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>

#include "common/rng.hpp"
#include "trace/backend_shim.hpp"
#include "trace/event.hpp"
#include "trace/profiler.hpp"
#include "trace/server_stats.hpp"
#include "trace/tracer.hpp"
#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

namespace pio::trace {
namespace {

using namespace pio::literals;

TraceEvent make_event(Layer layer, OpKind op, std::int32_t rank, std::string path,
                      std::uint64_t offset, std::uint64_t size, std::int64_t start_ns,
                      std::int64_t end_ns, bool ok = true) {
  TraceEvent e;
  e.layer = layer;
  e.op = op;
  e.rank = rank;
  e.path = std::move(path);
  e.offset = offset;
  e.size = size;
  e.start = SimTime::from_ns(start_ns);
  e.end = SimTime::from_ns(end_ns);
  e.ok = ok;
  return e;
}

TEST(EventTest, Classification) {
  EXPECT_TRUE(is_data_op(OpKind::kRead));
  EXPECT_TRUE(is_data_op(OpKind::kWrite));
  EXPECT_FALSE(is_data_op(OpKind::kStat));
  EXPECT_TRUE(is_metadata_op(OpKind::kOpen));
  EXPECT_TRUE(is_metadata_op(OpKind::kFsync));
  EXPECT_FALSE(is_metadata_op(OpKind::kRead));
  EXPECT_FALSE(is_metadata_op(OpKind::kSync));
  EXPECT_STREQ(to_string(Layer::kMpiIo), "mpiio");
  EXPECT_STREQ(to_string(OpKind::kReaddir), "readdir");
}

TEST(TraceTest, FiltersAndAggregates) {
  Trace t;
  t.append(make_event(Layer::kPosix, OpKind::kWrite, 0, "/a", 0, 100, 0, 10));
  t.append(make_event(Layer::kPosix, OpKind::kRead, 1, "/b", 0, 40, 5, 12));
  t.append(make_event(Layer::kMpiIo, OpKind::kWrite, 0, "/a", 100, 60, 2, 9));
  EXPECT_EQ(t.layer(Layer::kPosix).size(), 2u);
  EXPECT_EQ(t.rank(0).size(), 2u);
  EXPECT_EQ(t.bytes_written(), Bytes{160});
  EXPECT_EQ(t.bytes_read(), Bytes{40});
  EXPECT_EQ(t.span(), SimTime::from_ns(12));
  EXPECT_EQ(t.ranks(), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(t.paths(), (std::vector<std::string>{"/a", "/b"}));
}

TEST(TraceTest, MergeSortsByTime) {
  Trace a;
  a.append(make_event(Layer::kPosix, OpKind::kWrite, 0, "/a", 0, 1, 10, 11));
  Trace b;
  b.append(make_event(Layer::kPosix, OpKind::kWrite, 1, "/b", 0, 1, 5, 6));
  const Trace merged = Trace::merge(a, b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.events()[0].rank, 1);
  EXPECT_EQ(merged.events()[1].rank, 0);
}

Trace random_trace(std::uint64_t seed, std::size_t n) {
  Rng rng{seed, 0};
  Trace t;
  const std::vector<std::string> paths{"/data/a", "/data/b", "/x \"quoted\"\n", ""};
  for (std::size_t i = 0; i < n; ++i) {
    const auto start = static_cast<std::int64_t>(rng.next_below(1'000'000));
    t.append(make_event(static_cast<Layer>(rng.next_below(4)),
                        static_cast<OpKind>(rng.next_below(11)),
                        static_cast<std::int32_t>(rng.next_below(64)),
                        paths[rng.next_below(paths.size())], rng.next_below(1 << 30),
                        rng.next_below(1 << 22), start,
                        start + static_cast<std::int64_t>(rng.next_below(10'000)),
                        rng.chance(0.9)));
  }
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a.events()[i];
    const auto& y = b.events()[i];
    EXPECT_EQ(x.layer, y.layer) << i;
    EXPECT_EQ(x.op, y.op) << i;
    EXPECT_EQ(x.rank, y.rank) << i;
    EXPECT_EQ(x.path, y.path) << i;
    EXPECT_EQ(x.offset, y.offset) << i;
    EXPECT_EQ(x.size, y.size) << i;
    EXPECT_EQ(x.start, y.start) << i;
    EXPECT_EQ(x.end, y.end) << i;
    EXPECT_EQ(x.ok, y.ok) << i;
  }
}

class TraceRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTripTest, JsonlRoundTripIsLossless) {
  const Trace t = random_trace(GetParam(), 200);
  std::stringstream buffer;
  t.write_jsonl(buffer);
  expect_traces_equal(t, Trace::read_jsonl(buffer));
}

TEST_P(TraceRoundTripTest, BinaryRoundTripIsLossless) {
  const Trace t = random_trace(GetParam(), 200);
  std::stringstream buffer;
  t.write_binary(buffer);
  expect_traces_equal(t, Trace::read_binary(buffer));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripTest, ::testing::Values(1, 2, 3, 42, 1234));

TEST(TraceSerializationTest, BinaryIsSmallerThanJsonl) {
  const Trace t = random_trace(5, 1000);
  std::stringstream json;
  std::stringstream binary;
  t.write_jsonl(json);
  t.write_binary(binary);
  EXPECT_LT(binary.str().size(), json.str().size() / 2);
}

TEST(TraceSerializationTest, BadMagicThrows) {
  std::stringstream buffer;
  buffer << "NOTATRACE";
  EXPECT_THROW((void)Trace::read_binary(buffer), std::runtime_error);
}

TEST(TraceSerializationTest, TryReadBinaryReportsBadMagicAsError) {
  std::stringstream buffer;
  buffer << "NOTATRACE";
  const auto result = Trace::try_read_binary(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("bad magic"), std::string::npos);
}

TEST(TraceSerializationTest, TryReadBinaryRoundTripsCleanStream) {
  const Trace t = random_trace(7, 50);
  std::stringstream buffer;
  t.write_binary(buffer);
  const auto result = Trace::try_read_binary(buffer);
  ASSERT_TRUE(result.ok());
  expect_traces_equal(t, result.value());
}

// Corrupt a serialized trace by truncating it at every prefix length: the
// reader must fail cleanly each time, never crash or misallocate.
TEST(TraceSerializationTest, TruncatedStreamsFailCleanlyAtEveryLength) {
  const Trace t = random_trace(11, 20);
  std::stringstream whole;
  t.write_binary(whole);
  const std::string bytes = whole.str();
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::stringstream cut(bytes.substr(0, len));
    const auto result = Trace::try_read_binary(cut);
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_THROW((void)[&] {
      std::stringstream again(bytes.substr(0, len));
      return Trace::read_binary(again);
    }(), std::runtime_error);
  }
}

TEST(TraceSerializationTest, HugeDeclaredPathCountIsRejectedBeforeAllocation) {
  const Trace t = random_trace(13, 5);
  std::stringstream whole;
  t.write_binary(whole);
  std::string bytes = whole.str();
  // Overwrite the 4-byte path count (just after the 8-byte magic) with a
  // count far larger than the stream itself.
  const std::uint32_t bogus = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 8, &bogus, sizeof bogus);
  std::stringstream corrupt(bytes);
  const auto result = Trace::try_read_binary(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("path count"), std::string::npos);
}

TEST(TraceSerializationTest, HugeDeclaredPathLengthIsRejected) {
  const Trace t = random_trace(17, 5);
  std::stringstream whole;
  t.write_binary(whole);
  std::string bytes = whole.str();
  // First path length sits right after magic (8) + path count (4).
  const std::uint32_t bogus = 0x7FFFFFFFu;
  std::memcpy(bytes.data() + 12, &bogus, sizeof bogus);
  std::stringstream corrupt(bytes);
  const auto result = Trace::try_read_binary(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("path length"), std::string::npos);
}

TEST(TraceSerializationTest, HugeDeclaredEventCountIsRejected) {
  Trace t;
  t.append(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 1, 0, 1));
  std::stringstream whole;
  t.write_binary(whole);
  std::string bytes = whole.str();
  // Event count (8 bytes) follows the path table: magic(8) + count(4) +
  // len(4) + "/f"(2).
  const std::uint64_t bogus = UINT64_MAX;
  std::memcpy(bytes.data() + 18, &bogus, sizeof bogus);
  std::stringstream corrupt(bytes);
  const auto result = Trace::try_read_binary(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("event count"), std::string::npos);
}

TEST(TraceSerializationTest, OutOfRangePathIdIsRejected) {
  Trace t;
  t.append(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 1, 0, 1));
  std::stringstream whole;
  t.write_binary(whole);
  std::string bytes = whole.str();
  // The record's path_id field is 8 bytes into the 48-byte record, which
  // starts after magic(8) + count(4) + len(4) + "/f"(2) + event count(8).
  const std::size_t record_start = 8 + 4 + 4 + 2 + 8;
  const std::uint32_t bogus = 42;
  std::memcpy(bytes.data() + record_start + 8, &bogus, sizeof bogus);
  std::stringstream corrupt(bytes);
  const auto result = Trace::try_read_binary(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unknown path id"), std::string::npos);
}

TEST(TracerTest, SnapshotAndTake) {
  Tracer tracer;
  tracer.record(make_event(Layer::kPosix, OpKind::kOpen, 0, "/f", 0, 0, 0, 1));
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.snapshot().size(), 1u);
  const Trace taken = tracer.take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(MultiSinkTest, FansOut) {
  Tracer a;
  Tracer b;
  MultiSink multi;
  multi.add(a);
  multi.add(b);
  multi.record(make_event(Layer::kApp, OpKind::kOther, 0, "", 0, 0, 0, 0));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(ProfilerTest, CountersAndHistograms) {
  Profiler profiler;
  profiler.record(make_event(Layer::kPosix, OpKind::kOpen, 0, "/f", 0, 0, 0, 100));
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 4096, 100, 300));
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 4096, 4096, 300, 500));
  profiler.record(make_event(Layer::kPosix, OpKind::kRead, 0, "/f", 0, 100, 500, 600));
  profiler.record(make_event(Layer::kPosix, OpKind::kClose, 0, "/f", 0, 0, 600, 650));
  // Non-POSIX layers are ignored by the POSIX profiler.
  profiler.record(make_event(Layer::kHdf5, OpKind::kWrite, 0, "/f", 0, 9999, 0, 1));
  const Profile profile = profiler.snapshot();
  ASSERT_EQ(profile.records().size(), 1u);
  const auto& r = profile.records()[0];
  EXPECT_EQ(r.opens, 1u);
  EXPECT_EQ(r.closes, 1u);
  EXPECT_EQ(r.writes, 2u);
  EXPECT_EQ(r.reads, 1u);
  EXPECT_EQ(r.bytes_written, Bytes{8192});
  EXPECT_EQ(r.bytes_read, Bytes{100});
  EXPECT_EQ(r.write_time, SimTime::from_ns(400));
  EXPECT_EQ(r.write_sizes.bucket_count(12), 2u);  // 4096 twice
  EXPECT_EQ(r.max_offset, 8192u);
  const JobSummary s = profile.summarize();
  EXPECT_EQ(s.total_ops, 5u);
  EXPECT_EQ(s.metadata_ops, 2u);
  EXPECT_EQ(s.span, SimTime::from_ns(650));
  EXPECT_NEAR(s.read_fraction_bytes(), 100.0 / 8292.0, 1e-12);
}

TEST(ProfilerTest, SequentialityDetection) {
  Profiler profiler;
  // Consecutive writes from offset 0.
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 100, 0, 1));
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 100, 100, 1, 2));
  // Forward jump: sequential but not consecutive.
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 500, 100, 2, 3));
  // Backward jump: neither.
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 100, 3, 4));
  // Keep the snapshot alive: records() returns a reference into it, so
  // binding through the temporary dangles (caught by ASan).
  const auto profile = profiler.snapshot();
  const auto& r = profile.records()[0];
  EXPECT_EQ(r.writes, 4u);
  EXPECT_EQ(r.sequential_writes, 3u);
  EXPECT_EQ(r.consecutive_writes, 2u);
  EXPECT_DOUBLE_EQ(r.write_seq_fraction(), 0.75);
}

TEST(ProfilerTest, PerRankRecordsMergeByFile) {
  Profiler profiler;
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/f", 0, 10, 0, 1));
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 1, "/f", 10, 20, 0, 1));
  const Profile profile = profiler.snapshot();
  EXPECT_EQ(profile.records().size(), 2u);
  const auto by_file = profile.by_file();
  ASSERT_EQ(by_file.size(), 1u);
  EXPECT_EQ(by_file[0].writes, 2u);
  EXPECT_EQ(by_file[0].bytes_written, Bytes{30});
  EXPECT_EQ(by_file[0].rank, -1);
}

TEST(ProfilerTest, ReportMentionsFiles) {
  Profiler profiler;
  profiler.record(make_event(Layer::kPosix, OpKind::kWrite, 0, "/data/out", 0, 10, 0, 1));
  const std::string report = profiler.snapshot().report();
  EXPECT_NE(report.find("/data/out"), std::string::npos);
  EXPECT_NE(report.find("bytes written"), std::string::npos);
}

TEST(BackendShimTest, EmitsPosixEventsWithPaths) {
  vfs::FileSystem fs;
  vfs::LocalBackend inner{fs};
  Tracer tracer;
  ManualClock clock;
  TracingBackend backend{inner, tracer, clock, 3};

  clock.set(10_us);
  auto fd = backend.open("/f", {vfs::OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  clock.set(20_us);
  std::vector<std::byte> buf(256);
  ASSERT_TRUE(backend.pwrite(fd.value(), buf, 0).ok());
  clock.set(30_us);
  ASSERT_TRUE(backend.pread(fd.value(), buf, 0).ok());
  EXPECT_EQ(backend.close(fd.value()), vfs::FsStatus::kOk);
  (void)backend.stat("/f");
  (void)backend.open("/missing", {vfs::OpenMode::kRead, false, false});  // fails

  const Trace t = tracer.snapshot();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.events()[0].op, OpKind::kOpen);
  EXPECT_EQ(t.events()[0].rank, 3);
  EXPECT_EQ(t.events()[0].start, 10_us);
  EXPECT_EQ(t.events()[1].op, OpKind::kWrite);
  EXPECT_EQ(t.events()[1].path, "/f");
  EXPECT_EQ(t.events()[1].size, 256u);
  EXPECT_EQ(t.events()[2].op, OpKind::kRead);
  EXPECT_EQ(t.events()[2].start, 30_us);
  EXPECT_FALSE(t.events()[5].ok);
}

TEST(ServerStatsTest, BinsIntoWindows) {
  ServerStatsCollector collector{10_ms};
  pfs::OstOpRecord r;
  r.ost = 0;
  r.enqueued = 1_ms;
  r.completed = 5_ms;  // window 0
  r.size = 1_MiB;
  r.is_write = true;
  collector.on_ost_record(r);
  r.enqueued = 12_ms;
  r.completed = 15_ms;  // window 1
  r.is_write = false;
  collector.on_ost_record(r);
  pfs::MdsOpRecord m;
  m.enqueued = 2_ms;
  m.completed = 3_ms;
  collector.on_mds_record(m);

  const auto& series = collector.ost_series().at(0);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(0).write_ops, 1u);
  EXPECT_EQ(series.at(0).bytes_written, 1_MiB);
  EXPECT_EQ(series.at(1).read_ops, 1u);
  EXPECT_EQ(series.at(0).total_latency, 4_ms);
  EXPECT_EQ(collector.mds_series().at(0).meta_ops, 1u);
}

TEST(ServerStatsTest, ImbalanceDetectsHotOst) {
  ServerStatsCollector collector{10_ms};
  auto record = [&](std::uint32_t ost, std::uint64_t mib) {
    pfs::OstOpRecord r;
    r.ost = ost;
    r.completed = 5_ms;
    r.size = Bytes::from_mib(mib);
    r.is_write = true;
    collector.on_ost_record(r);
  };
  record(0, 30);
  record(1, 1);
  record(2, 1);
  const auto imbalance = collector.ost_imbalance();
  ASSERT_EQ(imbalance.size(), 1u);
  // max/mean = 30 / (32/3) = 2.81...
  EXPECT_NEAR(imbalance[0].second, 30.0 / (32.0 / 3.0), 1e-9);
}

}  // namespace
}  // namespace pio::trace
