// Unit tests for the in-memory VFS and the POSIX-level backend.
#include <gtest/gtest.h>

#include <cstring>

#include "vfs/backend.hpp"
#include "vfs/file_system.hpp"

namespace pio::vfs {
namespace {

using namespace pio::literals;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 0) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::byte>((i * 7 + seed) & 0xFF);
  return data;
}

TEST(FileSystemTest, CreateRequiresParent) {
  FileSystem fs;
  EXPECT_EQ(fs.create("/a"), FsStatus::kOk);
  EXPECT_EQ(fs.create("/a"), FsStatus::kExists);
  EXPECT_EQ(fs.create("/missing/b"), FsStatus::kNotFound);
  EXPECT_EQ(fs.mkdir("/d"), FsStatus::kOk);
  EXPECT_EQ(fs.create("/d/b"), FsStatus::kOk);
  EXPECT_EQ(fs.create("/a/c"), FsStatus::kNotDirectory);  // /a is a file
}

TEST(FileSystemTest, PathValidation) {
  FileSystem fs;
  EXPECT_EQ(fs.create("relative"), FsStatus::kInvalid);
  EXPECT_EQ(fs.create("/trailing/"), FsStatus::kInvalid);
  EXPECT_EQ(fs.create("//double"), FsStatus::kInvalid);
  EXPECT_EQ(fs.create("/"), FsStatus::kInvalid);
}

TEST(FileSystemTest, WriteReadRoundTripAcrossPages) {
  FileSystem fs;
  ASSERT_EQ(fs.create("/f"), FsStatus::kOk);
  // Span three pages with an unaligned start.
  const std::uint64_t offset = FileSystem::kPageSize - 100;
  const auto data = pattern(2 * FileSystem::kPageSize + 333);
  auto wrote = fs.pwrite("/f", data, offset);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), data.size());
  std::vector<std::byte> out(data.size());
  auto read = fs.pread("/f", out, offset);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data.size());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_EQ(fs.stat("/f").value().size, Bytes{offset + data.size()});
}

TEST(FileSystemTest, HolesReadAsZeros) {
  FileSystem fs;
  ASSERT_EQ(fs.create("/sparse"), FsStatus::kOk);
  const auto data = pattern(10);
  ASSERT_TRUE(fs.pwrite("/sparse", data, 1'000'000).ok());
  std::vector<std::byte> out(100);
  auto read = fs.pread("/sparse", out, 500);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 100u);
  for (const auto b : out) EXPECT_EQ(b, std::byte{0});
  // Allocation reflects only the written page, not the hole.
  EXPECT_LT(fs.allocated_bytes().count(), 2 * FileSystem::kPageSize);
}

TEST(FileSystemTest, ShortReadAtEof) {
  FileSystem fs;
  ASSERT_EQ(fs.create("/f"), FsStatus::kOk);
  ASSERT_TRUE(fs.pwrite("/f", pattern(100), 0).ok());
  std::vector<std::byte> out(200);
  EXPECT_EQ(fs.pread("/f", out, 50).value(), 50u);
  EXPECT_EQ(fs.pread("/f", out, 100).value(), 0u);
  EXPECT_EQ(fs.pread("/f", out, 5000).value(), 0u);
}

TEST(FileSystemTest, TruncateShrinksAndFrees) {
  FileSystem fs;
  ASSERT_EQ(fs.create("/f"), FsStatus::kOk);
  ASSERT_TRUE(fs.pwrite("/f", pattern(3 * FileSystem::kPageSize), 0).ok());
  const Bytes before = fs.allocated_bytes();
  EXPECT_EQ(fs.truncate("/f", Bytes{100}), FsStatus::kOk);
  EXPECT_EQ(fs.stat("/f").value().size, Bytes{100});
  EXPECT_LT(fs.allocated_bytes().count(), before.count());
  // Reading past the new end is EOF.
  std::vector<std::byte> out(10);
  EXPECT_EQ(fs.pread("/f", out, 200).value(), 0u);
  // Extending truncate grows the size but keeps holes.
  EXPECT_EQ(fs.truncate("/f", 1_MiB), FsStatus::kOk);
  EXPECT_EQ(fs.stat("/f").value().size, 1_MiB);
}

TEST(FileSystemTest, RemoveAndReaddir) {
  FileSystem fs;
  ASSERT_EQ(fs.mkdir("/d"), FsStatus::kOk);
  ASSERT_EQ(fs.create("/d/a"), FsStatus::kOk);
  ASSERT_EQ(fs.create("/d/b"), FsStatus::kOk);
  ASSERT_EQ(fs.mkdir("/d/sub"), FsStatus::kOk);
  const auto names = fs.readdir("/d").value();
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "sub"}));
  EXPECT_EQ(fs.remove("/d"), FsStatus::kNotEmpty);
  EXPECT_EQ(fs.remove("/d/a"), FsStatus::kOk);
  EXPECT_EQ(fs.remove("/d/b"), FsStatus::kOk);
  EXPECT_EQ(fs.remove("/d/sub"), FsStatus::kOk);
  EXPECT_EQ(fs.remove("/d"), FsStatus::kOk);
  EXPECT_FALSE(fs.exists("/d"));
}

TEST(FileSystemTest, RenameFile) {
  FileSystem fs;
  ASSERT_EQ(fs.create("/old"), FsStatus::kOk);
  ASSERT_TRUE(fs.pwrite("/old", pattern(64), 0).ok());
  EXPECT_EQ(fs.rename("/old", "/new"), FsStatus::kOk);
  EXPECT_FALSE(fs.exists("/old"));
  std::vector<std::byte> out(64);
  EXPECT_EQ(fs.pread("/new", out, 0).value(), 64u);
  EXPECT_EQ(fs.rename("/missing", "/x"), FsStatus::kNotFound);
  ASSERT_EQ(fs.create("/other"), FsStatus::kOk);
  EXPECT_EQ(fs.rename("/new", "/other"), FsStatus::kExists);
}

TEST(FileSystemTest, DirectoryIoRejected) {
  FileSystem fs;
  ASSERT_EQ(fs.mkdir("/d"), FsStatus::kOk);
  std::vector<std::byte> buf(4);
  EXPECT_FALSE(fs.pwrite("/d", buf, 0).ok());
  EXPECT_FALSE(fs.pread("/d", buf, 0).ok());
  EXPECT_EQ(fs.readdir("/missing").ok(), false);
}

TEST(LocalBackendTest, OpenModesEnforced) {
  FileSystem fs;
  LocalBackend backend{fs};
  EXPECT_FALSE(backend.open("/nope", {OpenMode::kRead, false, false}).ok());
  auto fd = backend.open("/f", {OpenMode::kWrite, true, false});
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(8);
  EXPECT_FALSE(backend.pread(fd.value(), buf, 0).ok());  // write-only
  EXPECT_TRUE(backend.pwrite(fd.value(), buf, 0).ok());
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
  auto rd = backend.open("/f", {OpenMode::kRead, false, false});
  ASSERT_TRUE(rd.ok());
  EXPECT_FALSE(backend.pwrite(rd.value(), buf, 0).ok());  // read-only
  EXPECT_TRUE(backend.pread(rd.value(), buf, 0).ok());
  EXPECT_EQ(backend.close(rd.value()), FsStatus::kOk);
  EXPECT_EQ(backend.close(rd.value()), FsStatus::kInvalid);  // double close
}

TEST(LocalBackendTest, TruncateOnOpen) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/f", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  std::vector<std::byte> buf(100);
  ASSERT_TRUE(backend.pwrite(fd.value(), buf, 0).ok());
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
  auto fd2 = backend.open("/f", {OpenMode::kReadWrite, false, true});
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(backend.stat("/f").value().size, Bytes::zero());
  EXPECT_EQ(backend.close(fd2.value()), FsStatus::kOk);
}

TEST(LocalBackendTest, PathOfAndDescriptorTable) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/abc", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(backend.path_of(fd.value()), "/abc");
  EXPECT_EQ(backend.path_of(999), "");
  EXPECT_EQ(backend.open_descriptors(), 1u);
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
  EXPECT_EQ(backend.open_descriptors(), 0u);
}

TEST(LocalBackendTest, PartialReadAtEof) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/f", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  const auto data = pattern(100);
  ASSERT_TRUE(backend.pwrite(fd.value(), data, 0).ok());
  // A read straddling EOF returns the available prefix, not an error.
  std::vector<std::byte> out(64);
  auto read = backend.pread(fd.value(), out, 80);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 20u);
  EXPECT_EQ(std::memcmp(out.data(), data.data() + 80, 20), 0);
  // Reads at and past EOF return zero bytes, still not an error.
  EXPECT_EQ(backend.pread(fd.value(), out, 100).value(), 0u);
  EXPECT_EQ(backend.pread(fd.value(), out, 4096).value(), 0u);
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
}

TEST(LocalBackendTest, ZeroLengthReadAndWrite) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/f", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  std::span<std::byte> empty_out;
  std::span<const std::byte> empty_in;
  // Zero-length ops succeed, move nothing, and a zero-length write must not
  // extend the file (POSIX pwrite(fd, buf, 0, off) semantics).
  EXPECT_EQ(backend.pwrite(fd.value(), empty_in, 12345).value(), 0u);
  EXPECT_EQ(backend.stat("/f").value().size, Bytes::zero());
  EXPECT_EQ(backend.pread(fd.value(), empty_out, 0).value(), 0u);
  ASSERT_TRUE(backend.pwrite(fd.value(), pattern(10), 0).ok());
  EXPECT_EQ(backend.pread(fd.value(), empty_out, 5).value(), 0u);
  EXPECT_EQ(backend.stat("/f").value().size, Bytes{10});
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
}

TEST(LocalBackendTest, ReadOfHoleReturnsZeros) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/sparse", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  const auto data = pattern(16, 3);
  const std::uint64_t far = 3 * FileSystem::kPageSize + 17;
  ASSERT_TRUE(backend.pwrite(fd.value(), data, far).ok());
  // The hole before the written extent reads as zeros, across page edges.
  std::vector<std::byte> out(FileSystem::kPageSize + 64);
  auto read = backend.pread(fd.value(), out, FileSystem::kPageSize - 32);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), out.size());
  for (const auto b : out) EXPECT_EQ(b, std::byte{0});
  // A read spanning hole + data sees zeros then the payload.
  std::vector<std::byte> mixed(32);
  ASSERT_EQ(backend.pread(fd.value(), mixed, far - 16).value(), 32u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(mixed[i], std::byte{0});
  EXPECT_EQ(std::memcmp(mixed.data() + 16, data.data(), 16), 0);
  EXPECT_EQ(backend.close(fd.value()), FsStatus::kOk);
}

TEST(LocalBackendTest, FsyncValidatesDescriptor) {
  FileSystem fs;
  LocalBackend backend{fs};
  auto fd = backend.open("/f", {OpenMode::kReadWrite, true, false});
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(backend.fsync(fd.value()), FsStatus::kOk);
  EXPECT_EQ(backend.fsync(777), FsStatus::kInvalid);
}

}  // namespace
}  // namespace pio::vfs
