// Unit tests for workload kernels, the DL reader, workflows, the facility
// mix generator, the DSL, and profile-based generation.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/profiler.hpp"
#include "workload/dlio.hpp"
#include "workload/dsl.hpp"
#include "workload/facility_mix.hpp"
#include "workload/from_profile.hpp"
#include "workload/kernels.hpp"
#include "workload/op.hpp"
#include "workload/workflow.hpp"

namespace pio::workload {
namespace {

using namespace pio::literals;

TEST(IorTest, FootprintMatchesConfig) {
  IorConfig config;
  config.ranks = 4;
  config.block_size = 8_MiB;
  config.transfer_size = 1_MiB;
  config.write_phase = true;
  config.read_phase = true;
  const auto w = ior_like(config);
  const auto fp = footprint(*w);
  EXPECT_EQ(fp.bytes_written, 32_MiB);
  EXPECT_EQ(fp.bytes_read, 32_MiB);
}

TEST(IorTest, SharedFileWritesAreDisjointPerRank) {
  IorConfig config;
  config.ranks = 4;
  config.block_size = 4_MiB;
  config.transfer_size = 1_MiB;
  config.file_per_process = false;
  const auto ops = materialize(*ior_like(config));
  std::set<std::uint64_t> offsets;
  for (const auto& rank_ops : ops) {
    for (const auto& op : rank_ops) {
      if (op.kind == OpKind::kWrite) {
        EXPECT_TRUE(offsets.insert(op.offset).second) << "overlapping write at " << op.offset;
      }
    }
  }
  EXPECT_EQ(offsets.size(), 16u);
}

TEST(IorTest, BarrierCountsAreSymmetric) {
  IorConfig config;
  config.ranks = 3;
  config.read_phase = true;
  const auto ops = materialize(*ior_like(config));
  std::vector<std::size_t> barriers;
  for (const auto& rank_ops : ops) {
    std::size_t count = 0;
    for (const auto& op : rank_ops) {
      if (op.kind == OpKind::kBarrier) ++count;
    }
    barriers.push_back(count);
  }
  for (std::size_t r = 1; r < barriers.size(); ++r) EXPECT_EQ(barriers[r], barriers[0]);
}

TEST(IorTest, RejectsBadConfig) {
  IorConfig config;
  config.block_size = Bytes{1000};
  config.transfer_size = Bytes{333};
  EXPECT_THROW((void)ior_like(config), std::invalid_argument);
}

TEST(MdtestTest, OpCountsMatch) {
  MdtestConfig config;
  config.ranks = 2;
  config.files_per_rank = 10;
  const auto fp = footprint(*mdtest_like(config));
  // Per rank: 1 mkdir(own dir) + 10 create + 10 close + 10 stat + 10 unlink
  // = 41 metadata ops, plus rank0's shared mkdir.
  EXPECT_EQ(fp.metadata_ops, 2u * 41u + 1u);
  EXPECT_EQ(fp.bytes_written, Bytes::zero());
}

TEST(HaccTest, ParticleBytes) {
  HaccIoConfig config;
  config.ranks = 2;
  config.particles_per_rank = 1000;
  const auto fp = footprint(*hacc_io_like(config));
  EXPECT_EQ(fp.bytes_written, Bytes{2 * 1000 * kHaccParticleBytes});
}

TEST(BtioTest, RequiresSquareRanks) {
  BtioConfig config;
  config.ranks = 3;
  EXPECT_THROW((void)btio_like(config), std::invalid_argument);
}

TEST(BtioTest, WritesTileTheCubeExactly) {
  BtioConfig config;
  config.ranks = 4;
  config.grid_points = 8;
  config.cell_bytes = Bytes{40};
  config.time_steps = 1;
  const auto ops = materialize(*btio_like(config));
  std::map<std::uint64_t, std::uint64_t> extents;  // offset -> len
  std::uint64_t total = 0;
  for (const auto& rank_ops : ops) {
    for (const auto& op : rank_ops) {
      if (op.kind != OpKind::kWrite) continue;
      EXPECT_TRUE(extents.emplace(op.offset, op.size.count()).second);
      total += op.size.count();
    }
  }
  const std::uint64_t cube = 8ULL * 8 * 8 * 40;
  EXPECT_EQ(total, cube);
  // Verify no overlaps and full coverage.
  std::uint64_t cursor = 0;
  for (const auto& [offset, len] : extents) {
    EXPECT_EQ(offset, cursor);
    cursor += len;
  }
  EXPECT_EQ(cursor, cube);
  // The pattern is genuinely strided: each write is one sub-row of
  // 8/sqrt(4) = 4 cells = 160 bytes, far smaller than the 20 KiB cube.
  EXPECT_EQ(extents.begin()->second, 160u);
}

TEST(DlioTest, EveryEpochVisitsEverySampleExactlyOnce) {
  DlioConfig config;
  config.ranks = 4;
  config.samples = 256;
  config.samples_per_file = 64;
  config.batch_size = 8;
  config.epochs = 2;
  config.include_preparation = false;
  const auto w = dlio_like(config);
  // Collect reads per epoch across ranks; epochs are separated by barriers.
  std::vector<std::multiset<std::pair<std::string, std::uint64_t>>> epochs(3);
  for (std::int32_t r = 0; r < config.ranks; ++r) {
    auto stream = w->stream(r);
    std::size_t epoch = 0;
    bool read_in_epoch = false;
    while (auto op = stream->next()) {
      if (op->kind == OpKind::kRead) {
        ASSERT_LT(epoch, epochs.size());
        epochs[epoch].emplace(op->path, op->offset);
        read_in_epoch = true;
      }
      // The prep barrier precedes any reads; every later barrier ends an
      // epoch for this rank.
      if (op->kind == OpKind::kBarrier && read_in_epoch) {
        ++epoch;
        read_in_epoch = false;
      }
    }
  }
  // Two epochs of 256 distinct (file, offset) samples each.
  ASSERT_GE(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].size(), 256u);
  EXPECT_EQ(epochs[1].size(), 256u);
  const std::set<std::pair<std::string, std::uint64_t>> unique0(epochs[0].begin(),
                                                                epochs[0].end());
  EXPECT_EQ(unique0.size(), 256u) << "epoch 0 repeated a sample";
}

TEST(DlioTest, ShuffleChangesOrderButNotSet) {
  DlioConfig config;
  config.ranks = 1;
  config.samples = 64;
  config.samples_per_file = 64;
  config.include_preparation = false;
  auto collect = [&](bool shuffle) {
    config.shuffle = shuffle;
    std::vector<std::uint64_t> offsets;
    auto stream = dlio_like(config)->stream(0);
    while (auto op = stream->next()) {
      if (op->kind == OpKind::kRead) offsets.push_back(op->offset);
    }
    return offsets;
  };
  const auto sequential = collect(false);
  const auto shuffled = collect(true);
  EXPECT_NE(sequential, shuffled);
  EXPECT_EQ(std::multiset<std::uint64_t>(sequential.begin(), sequential.end()),
            std::multiset<std::uint64_t>(shuffled.begin(), shuffled.end()));
  // Sequential mode really is sorted.
  EXPECT_TRUE(std::is_sorted(sequential.begin(), sequential.end()));
}

TEST(DlioTest, StreamsAreReplayable) {
  DlioConfig config;
  config.ranks = 2;
  config.samples = 128;
  const auto w = dlio_like(config);
  const auto a = materialize(*w);
  const auto b = materialize(*w);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    for (std::size_t i = 0; i < a[r].size(); ++i) {
      EXPECT_EQ(a[r][i].kind, b[r][i].kind);
      EXPECT_EQ(a[r][i].offset, b[r][i].offset);
      EXPECT_EQ(a[r][i].path, b[r][i].path);
    }
  }
}

TEST(DlioTest, ReadsAreSmallAndRandom) {
  DlioConfig config;
  config.ranks = 1;
  config.samples = 512;
  config.samples_per_file = 128;
  config.sample_size = 128_KiB;
  config.include_preparation = false;
  auto stream = dlio_like(config)->stream(0);
  std::size_t reads = 0;
  std::size_t non_consecutive = 0;
  std::map<std::string, std::uint64_t> cursor;
  while (auto op = stream->next()) {
    if (op->kind != OpKind::kRead) continue;
    ++reads;
    EXPECT_EQ(op->size, 128_KiB);
    const auto it = cursor.find(op->path);
    if (it != cursor.end() && op->offset != it->second) ++non_consecutive;
    cursor[op->path] = op->offset + op->size.count();
  }
  EXPECT_EQ(reads, 512u);
  // Shuffled access: the vast majority of reads are non-consecutive.
  EXPECT_GT(non_consecutive, reads * 8 / 10);
}

TEST(WorkflowTest, MetadataIntensiveAndSmallTransactions) {
  WorkflowConfig config;
  config.workers = 4;
  config.stages = 3;
  config.tasks_per_stage = 8;
  config.files_per_task = 2;
  config.file_size = 64_KiB;
  config.transaction_size = 16_KiB;
  const auto fp = footprint(*workflow_dag(config));
  // Small transactions by construction.
  EXPECT_GT(fp.metadata_ops, 100u);
  // Stage outputs: 3 stages * 8 tasks * 2 files * 64 KiB written.
  EXPECT_EQ(fp.bytes_written, Bytes{3ULL * 8 * 2 * 64 * 1024});
  // Stages 1..2 read stage-0/1 outputs.
  EXPECT_EQ(fp.bytes_read, Bytes{2ULL * 8 * 2 * 64 * 1024});
  // Metadata ops dominate data ops (the §V.C signature).
  const std::uint64_t data_ops = (fp.bytes_written.count() + fp.bytes_read.count()) /
                                 config.transaction_size.count();
  EXPECT_GT(fp.metadata_ops, data_ops / 2);
}

TEST(FacilityMixTest, DeterministicAndShiftsTowardReads) {
  FacilityMixConfig config;
  config.months = 24;
  config.jobs_per_month = 500;
  const auto log1 = generate_facility_log(config);
  const auto log2 = generate_facility_log(config);
  ASSERT_EQ(log1.size(), log2.size());
  EXPECT_EQ(log1.size(), 24u * 500u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(log1[i].bytes_read, log2[i].bytes_read);
    EXPECT_EQ(log1[i].job_class, log2[i].job_class);
  }
  const auto monthly = aggregate_by_month(log1);
  ASSERT_EQ(monthly.size(), 24u);
  // Ground truth: early months write-dominated, late months read-dominated.
  EXPECT_LT(monthly.front().read_fraction(), 0.5);
  EXPECT_GT(monthly.back().read_fraction(), 0.5);
  const auto crossover = read_write_crossover_month(monthly);
  EXPECT_GT(crossover, 0);
  EXPECT_LT(crossover, 24);
}

TEST(FacilityMixTest, PureErasHaveExpectedBalance) {
  FacilityMixConfig config;
  config.months = 1;
  config.jobs_per_month = 2000;
  config.from = era_simulation_2015();
  config.to = era_simulation_2015();
  const auto sim_monthly = aggregate_by_month(generate_facility_log(config));
  EXPECT_LT(sim_monthly[0].read_fraction(), 0.4);
  config.from = era_emerging_2019();
  config.to = era_emerging_2019();
  const auto emerging_monthly = aggregate_by_month(generate_facility_log(config));
  EXPECT_GT(emerging_monthly[0].read_fraction(), 0.55);
}

TEST(DslTest, ExpandsPerRankPrograms) {
  const auto w = parse_dsl(R"(
    name "demo"
    ranks 3
    mkdir "/out"
    barrier
    create "/out/f.{rank}"
    loop i 2 {
      write "/out/f.{rank}" at i * 1MiB size 64KiB
      compute 5ms
    }
    close "/out/f.{rank}"
  )");
  EXPECT_EQ(w->name(), "demo");
  EXPECT_EQ(w->ranks(), 3);
  const auto ops = materialize(*w);
  ASSERT_EQ(ops.size(), 3u);
  const auto& r1 = ops[1];
  ASSERT_EQ(r1.size(), 8u);
  EXPECT_EQ(r1[0].kind, OpKind::kMkdir);
  EXPECT_EQ(r1[2].kind, OpKind::kCreate);
  EXPECT_EQ(r1[2].path, "/out/f.1");
  EXPECT_EQ(r1[3].kind, OpKind::kWrite);
  EXPECT_EQ(r1[3].offset, 0u);
  EXPECT_EQ(r1[3].size, 64_KiB);
  EXPECT_EQ(r1[5].offset, (1_MiB).count());
  EXPECT_EQ(r1[4].kind, OpKind::kCompute);
  EXPECT_EQ(r1[4].think_time, SimTime::from_ms(5.0));
}

TEST(DslTest, ExpressionsAndUnits) {
  const auto w = parse_dsl(R"(
    ranks 4
    write "/f" at (rank * 2 + 1) * 1KiB size 2KiB + 512
  )");
  const auto ops = materialize(*w);
  EXPECT_EQ(ops[3][0].offset, 7u * 1024u);
  EXPECT_EQ(ops[3][0].size, Bytes{2 * 1024 + 512});
}

TEST(DslTest, ErrorsCarryLineNumbers) {
  try {
    (void)parse_dsl("ranks 2\nwrite \"/f\" at 0");
    FAIL() << "expected DslError";
  } catch (const DslError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  EXPECT_THROW((void)parse_dsl("ranks 0"), DslError);
  EXPECT_THROW((void)parse_dsl("write \"/f\" at 0 size 1"), DslError);  // no ranks
  EXPECT_THROW((void)parse_dsl("ranks 1\nbogus"), DslError);
  EXPECT_THROW((void)parse_dsl("ranks 1\nread \"/f\" at rank size oops2"), DslError);
  EXPECT_THROW((void)parse_dsl("ranks 1\nloop i 2 { loop i 2 { barrier } }"), DslError);
  EXPECT_THROW((void)parse_dsl("ranks 1\ncompute 5parsecs"), DslError);
  EXPECT_THROW((void)parse_dsl("ranks 1\nwrite \"/f\" at 1/0 size 4"), DslError);
}

TEST(FromProfileTest, RegeneratedWorkloadMatchesOpCountsAndSizes) {
  // Build a profile by hand: one rank, one file, heavy 1 MiB writes.
  trace::Profiler profiler;
  for (int i = 0; i < 50; ++i) {
    trace::TraceEvent e;
    e.layer = trace::Layer::kPosix;
    e.op = trace::OpKind::kWrite;
    e.rank = 0;
    e.path = "/data";
    e.offset = static_cast<std::uint64_t>(i) << 20;
    e.size = 1 << 20;
    e.start = SimTime::from_ns(i);
    e.end = SimTime::from_ns(i + 1);
    profiler.record(e);
  }
  const auto w = workload_from_profile(profiler.snapshot(), FromProfileConfig{});
  const auto fp = footprint(*w);
  // Same op count; byte volume within the log2 bucket (1-2 MiB per op).
  std::uint64_t writes = 0;
  for (const auto& rank_ops : materialize(*w)) {
    for (const auto& op : rank_ops) {
      if (op.kind == OpKind::kWrite) {
        ++writes;
        EXPECT_GE(op.size.count(), 1u << 20);
        EXPECT_LT(op.size.count(), 2u << 20);
      }
    }
  }
  EXPECT_EQ(writes, 50u);
  EXPECT_GE(fp.bytes_written.count(), 50ull << 20);
}

TEST(FromProfileTest, SequentialityIsApproximatelyPreserved) {
  trace::Profiler profiler;
  // Fully consecutive writes -> seq fraction 1.0.
  for (int i = 0; i < 100; ++i) {
    trace::TraceEvent e;
    e.layer = trace::Layer::kPosix;
    e.op = trace::OpKind::kWrite;
    e.rank = 0;
    e.path = "/seq";
    e.offset = static_cast<std::uint64_t>(i) * 4096;
    e.size = 4096;
    e.start = SimTime::from_ns(i);
    e.end = SimTime::from_ns(i + 1);
    profiler.record(e);
  }
  const auto w = workload_from_profile(profiler.snapshot(), FromProfileConfig{});
  // Re-profile the generated workload's offsets.
  std::uint64_t cursor = 0;
  std::uint64_t sequential = 0;
  std::uint64_t total = 0;
  for (const auto& rank_ops : materialize(*w)) {
    for (const auto& op : rank_ops) {
      if (op.kind != OpKind::kWrite) continue;
      ++total;
      if (op.offset >= cursor) ++sequential;
      cursor = op.offset + op.size.count();
    }
  }
  ASSERT_EQ(total, 100u);
  EXPECT_GT(static_cast<double>(sequential) / static_cast<double>(total), 0.9);
}

TEST(OpTest, FactoryHelpers) {
  EXPECT_EQ(Op::read("/f", 5, Bytes{10}).kind, OpKind::kRead);
  EXPECT_EQ(Op::barrier().kind, OpKind::kBarrier);
  EXPECT_EQ(Op::compute(5_ms).think_time, 5_ms);
  EXPECT_STREQ(to_string(OpKind::kUnlink), "unlink");
}

}  // namespace
}  // namespace pio::workload
