// pio-dsl: run a synthetic-workload DSL program on the simulated system.
//
//   pio-dsl run <program.dsl> [options]
//     --disk hdd|ssd        storage device model        (default hdd)
//     --clients N           compute clients             (default 16)
//     --osts N              object storage targets      (default 8)
//     --ions N              I/O forwarding nodes        (default 4)
//     --bb none|node|shared burst-buffer placement      (default none)
//     --trace <out>         write the run's trace (.jsonl or binary)
//     --seed N              simulation seed             (default 1)
//
//   pio-dsl check <program.dsl>      parse + print the expansion footprint
//
// See src/workload/dsl.hpp for the language reference.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/format.hpp"
#include "driver/sim_driver.hpp"
#include "trace/tracer.hpp"
#include "workload/dsl.hpp"

using namespace pio;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::cerr << "usage: pio-dsl run <program.dsl> [--disk hdd|ssd] [--clients N]\n"
               "               [--osts N] [--ions N] [--bb none|node|shared]\n"
               "               [--trace out.jsonl] [--seed N]\n"
               "       pio-dsl check <program.dsl>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args{argv + 1, argv + argc};
    if (args.size() < 2) return usage();
    const std::string& command = args[0];
    const auto workload = workload::parse_dsl(slurp(args[1]));

    if (command == "check") {
      const auto fp = workload::footprint(*workload);
      std::cout << "workload '" << workload->name() << "': " << workload->ranks()
                << " ranks, " << fp.ops << " ops\n";
      std::cout << "  writes " << format_bytes(fp.bytes_written) << ", reads "
                << format_bytes(fp.bytes_read) << ", metadata ops " << fp.metadata_ops
                << "\n";
      return 0;
    }
    if (command != "run") return usage();

    pfs::PfsConfig system;
    system.clients = 16;
    system.io_nodes = 4;
    system.osts = 8;
    std::uint64_t seed = 1;
    std::string trace_out;
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
      const std::string& flag = args[i];
      const std::string& value = args[i + 1];
      if (flag == "--disk") {
        system.disk_kind = value == "ssd" ? pfs::DiskKind::kSsd : pfs::DiskKind::kHdd;
      } else if (flag == "--clients") {
        system.clients = static_cast<std::uint32_t>(std::stoul(value));
      } else if (flag == "--osts") {
        system.osts = static_cast<std::uint32_t>(std::stoul(value));
      } else if (flag == "--ions") {
        system.io_nodes = static_cast<std::uint32_t>(std::stoul(value));
      } else if (flag == "--bb") {
        system.bb_placement = value == "node"     ? pfs::BbPlacement::kPerIoNode
                              : value == "shared" ? pfs::BbPlacement::kShared
                                                  : pfs::BbPlacement::kNone;
      } else if (flag == "--trace") {
        trace_out = value;
      } else if (flag == "--seed") {
        seed = std::stoull(value);
      } else {
        return usage();
      }
    }

    sim::Engine engine{seed};
    pfs::PfsModel model{engine, system};
    driver::ExecutionDrivenSimulator sim{engine, model};
    trace::Tracer tracer;
    const auto result = sim.run(*workload, trace_out.empty() ? nullptr : &tracer);
    engine.run();

    std::cout << "workload '" << workload->name() << "' on " << workload->ranks()
              << " ranks (" << (system.disk_kind == pfs::DiskKind::kSsd ? "ssd" : "hdd")
              << " system, " << system.osts << " OSTs)\n";
    std::cout << "  makespan:  " << format_time(result.makespan) << "\n";
    std::cout << "  written:   " << format_bytes(result.bytes_written) << " ("
              << format_bandwidth(result.write_bandwidth()) << ")\n";
    std::cout << "  read:      " << format_bytes(result.bytes_read) << " ("
              << format_bandwidth(result.read_bandwidth()) << ")\n";
    std::cout << "  ops:       " << result.ops << " (" << result.failed_ops
              << " failed)\n";
    if (!trace_out.empty()) {
      std::ofstream out{trace_out, std::ios::binary};
      if (!out) throw std::runtime_error("cannot create " + trace_out);
      const auto t = tracer.take();
      if (trace_out.size() >= 6 && trace_out.substr(trace_out.size() - 6) == ".jsonl") {
        t.write_jsonl(out);
      } else {
        t.write_binary(out);
      }
      std::cout << "  trace:     " << t.size() << " events -> " << trace_out << "\n";
    }
    return result.failed_ops == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pio-dsl: " << e.what() << "\n";
    return 1;
  }
}
