// pio-trace: command-line utility over PIOEval trace files.
//
//   pio-trace stats <trace>            summary + per-layer/op breakdown
//   pio-trace convert <in> <out>       JSONL <-> binary by file extension
//   pio-trace head <trace> [count]     print the first events as JSONL
//
// Formats are chosen by extension: ".jsonl" is JSON lines, anything else
// is the compact binary format.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "common/format.hpp"
#include "trace/tracer.hpp"

using namespace pio;

namespace {

bool is_jsonl(const std::string& path) {
  return path.size() >= 6 && path.substr(path.size() - 6) == ".jsonl";
}

trace::Trace load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("cannot open " + path);
  return is_jsonl(path) ? trace::Trace::read_jsonl(in) : trace::Trace::read_binary(in);
}

void store(const trace::Trace& t, const std::string& path) {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("cannot create " + path);
  if (is_jsonl(path)) {
    t.write_jsonl(out);
  } else {
    t.write_binary(out);
  }
}

int cmd_stats(const std::string& path) {
  const auto t = load(path);
  std::cout << "events: " << t.size() << "\n";
  std::cout << "ranks:  " << t.ranks().size() << "\n";
  std::cout << "files:  " << t.paths().size() << "\n";
  std::cout << "span:   " << format_time(t.span()) << "\n";
  std::cout << "bytes:  " << format_bytes(t.bytes_read()) << " read, "
            << format_bytes(t.bytes_written()) << " written\n";
  std::map<std::pair<std::string, std::string>, std::uint64_t> breakdown;
  for (const auto& e : t.events()) {
    ++breakdown[{trace::to_string(e.layer), trace::to_string(e.op)}];
  }
  TextTable table{{"layer", "op", "count"}};
  for (const auto& [key, count] : breakdown) {
    table.add_row({key.first, key.second, std::to_string(count)});
  }
  std::cout << table.to_string();

  // Cache counter block: kCache events annotate each data op with the bytes
  // the client cache served (reads) or absorbed (writes). Hit rate compares
  // those bytes against the POSIX layer's totals for the same ops.
  std::uint64_t cache_reads = 0, cache_writes = 0;
  Bytes cache_read_bytes = Bytes::zero(), cache_write_bytes = Bytes::zero();
  Bytes posix_read_bytes = Bytes::zero(), posix_write_bytes = Bytes::zero();
  for (const auto& e : t.events()) {
    if (e.layer == trace::Layer::kCache) {
      if (e.op == trace::OpKind::kRead) {
        ++cache_reads;
        cache_read_bytes += Bytes{e.size};
      } else if (e.op == trace::OpKind::kWrite) {
        ++cache_writes;
        cache_write_bytes += Bytes{e.size};
      }
    } else if (e.layer == trace::Layer::kPosix) {
      if (e.op == trace::OpKind::kRead) posix_read_bytes += Bytes{e.size};
      if (e.op == trace::OpKind::kWrite) posix_write_bytes += Bytes{e.size};
    }
  }
  if (cache_reads + cache_writes > 0) {
    std::cout << "cache:  " << format_bytes(cache_read_bytes) << " read from cache";
    if (posix_read_bytes > Bytes::zero()) {
      std::cout << " ("
                << format_percent(cache_read_bytes.as_double() / posix_read_bytes.as_double())
                << " of reads)";
    }
    std::cout << ", " << format_bytes(cache_write_bytes) << " absorbed";
    if (posix_write_bytes > Bytes::zero()) {
      std::cout << " ("
                << format_percent(cache_write_bytes.as_double() /
                                  posix_write_bytes.as_double())
                << " of writes)";
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  const auto t = load(in);
  store(t, out);
  std::cout << "converted " << t.size() << " events: " << in << " -> " << out << "\n";
  return 0;
}

int cmd_head(const std::string& path, std::size_t count) {
  const auto t = load(path);
  trace::Trace head;
  for (std::size_t i = 0; i < std::min(count, t.size()); ++i) head.append(t.events()[i]);
  std::ostringstream buffer;
  head.write_jsonl(buffer);
  std::cout << buffer.str();
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  pio-trace stats <trace>\n"
               "  pio-trace convert <in> <out>\n"
               "  pio-trace head <trace> [count]\n"
               "(*.jsonl = JSON lines; anything else = compact binary)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args{argv + 1, argv + argc};
    if (args.empty()) return usage();
    if (args[0] == "stats" && args.size() == 2) return cmd_stats(args[1]);
    if (args[0] == "convert" && args.size() == 3) return cmd_convert(args[1], args[2]);
    if (args[0] == "head" && (args.size() == 2 || args.size() == 3)) {
      return cmd_head(args[1], args.size() == 3 ? std::stoul(args[2]) : 10);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "pio-trace: " << e.what() << "\n";
    return 1;
  }
}
