// pioevald — the PIOEval campaign service, driven in-process.
//
// Runs one `pio::svc::Evald` instance and a population of framed client
// sessions against it: every session submits a campaign spec drawn from a
// deterministic pool, the service schedules the points round-robin onto
// its worker pool, computes each distinct point once (digest-keyed result
// cache), and streams PointResult/CampaignDone frames back. The tool
// prints the service counters, verifies the cache accounting audit, and
// demonstrates the byte-identity contract: cold, cached, and coalesced
// deliveries of one point carry identical bytes.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/seed_streams.hpp"
#include "svc/evald.hpp"
#include "trace/event.hpp"

using namespace pio;

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "\n"
      << "In-process pioevald campaign service demo (DESIGN.md section 15).\n"
      << "Opens --sessions framed client sessions against one Evald instance;\n"
      << "each submits a campaign drawn from a pool of --pool distinct specs,\n"
      << "so identical points are computed once and served from the digest-\n"
      << "keyed result cache afterwards. Exits 0 when every campaign resolves\n"
      << "and the cache-accounting audit holds.\n"
      << "\n"
      << "options:\n"
      << "  --sessions N   client sessions to open (default 64)\n"
      << "  --pool N       distinct campaign specs in the pool (default 8)\n"
      << "  --threads N    service worker threads, 0 = PIO_THREADS (default 0)\n"
      << "  --seed S       campaign seed shared by every spec (default 7)\n"
      << "  --help         this text\n";
}

/// Deterministic spec pool: small, fast campaigns over the three workload
/// families, identical across runs so cache keys repeat across sessions.
svc::CampaignSpec pool_spec(std::uint64_t seed, std::uint32_t which) {
  svc::CampaignSpec spec;
  spec.seed = seed;
  spec.calibration = 0.9;
  spec.testbed = {4, 2, 4, 1};
  spec.model = {4, 2, 2, 1};
  const std::uint32_t points = 3 + which % 3;
  for (std::uint32_t j = 0; j < points; ++j) {
    const std::uint32_t v = which * 7 + j;
    svc::WorkloadSpec w;
    switch (v % 3) {
      case 0:
        w.kind = svc::WorkloadKind::kIor;
        w.ranks = 2 + (v % 2) * 2;
        w.block_kib = 256 * (1 + which);
        w.transfer_kib = 32u << (j % 3);
        w.read_phase = v % 2 == 0;
        break;
      case 1:
        w.kind = svc::WorkloadKind::kDlio;
        w.ranks = 2;
        w.samples = 32;
        w.sample_kib = 16;
        w.samples_per_file = 8;
        w.batch = 4;
        w.workload_seed = 100 + v;
        break;
      default:
        w.kind = svc::WorkloadKind::kWorkflow;
        w.ranks = 2;
        w.stages = 2;
        w.tasks_per_stage = 2 + which % 8;
        w.files_per_task = 1 + j % 2;
        break;
    }
    spec.workloads.push_back(w);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t sessions = 64;
  std::uint32_t pool = 8;
  int threads = 0;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--pool" && i + 1 < argc) {
      pool = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::stoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (sessions == 0 || pool == 0) {
    usage(argv[0]);
    return 2;
  }

  trace::WallClock clock;
  svc::EvaldConfig config;
  config.threads = threads;
  svc::Evald evald{config};

  // Open every session and submit one pool spec each; the arrival-jitter
  // stream decides which spec a session draws, so the population is a
  // deterministic mix and most submissions repeat an earlier spec.
  Rng arrivals{seed, seeds::kSvcArrivalJitterStream};
  std::vector<svc::SessionId> ids;
  ids.reserve(sessions);
  for (std::uint32_t s = 0; s < sessions; ++s) {
    const svc::SessionId sid = evald.open_session();
    ids.push_back(sid);
    const auto which = static_cast<std::uint32_t>(arrivals.next_below(pool));
    std::vector<std::uint8_t> wire;
    svc::append_frame(svc::MsgType::kSubmitCampaign,
                      svc::encode(svc::SubmitCampaign{pool_spec(seed, which)}), wire);
    evald.feed(sid, wire);
    // Interleave scheduling with arrivals: overlapping sweeps, not a
    // submit-everything-then-drain batch run.
    if (s % 8 == 7) (void)evald.pump();
  }
  evald.drain();

  // Collect and verify: one SubmitAck and one CampaignDone per session,
  // per-key blobs identical across delivery sources.
  std::map<std::uint64_t, std::vector<std::uint8_t>> blob_by_key;
  std::uint64_t done = 0, acked = 0, mismatched = 0;
  for (const svc::SessionId sid : ids) {
    for (const svc::Frame& frame : svc::split_frames(evald.take_output(sid))) {
      if (frame.type == svc::MsgType::kSubmitAck) ++acked;
      if (frame.type == svc::MsgType::kCampaignDone) ++done;
      if (frame.type != svc::MsgType::kPointResult) continue;
      svc::PointResult result;
      if (!svc::decode(frame.payload, &result)) return 1;
      const auto [it, fresh] = blob_by_key.emplace(result.key, result.blob);
      if (!fresh && it->second != result.blob) ++mismatched;
    }
    evald.finish(sid);
    evald.close_session(sid);
  }
  const double elapsed_ms = clock.now().ms();

  const svc::ServiceStats& s = evald.stats();
  TextTable table{{"sessions", "campaigns", "points", "computed", "cached", "coalesced",
                   "hit rate", "cache entries", "elapsed"}};
  const double hit_rate =
      s.cache_lookups == 0 ? 0.0
                           : static_cast<double>(s.cache_hits) / static_cast<double>(s.cache_lookups);
  table.add_row({std::to_string(s.sessions_opened), std::to_string(s.campaigns_completed),
                 std::to_string(s.points_completed), std::to_string(s.points_computed),
                 std::to_string(s.points_cached), std::to_string(s.points_coalesced),
                 format_double(hit_rate * 100.0, 1) + " %", std::to_string(s.cache_entries),
                 format_double(elapsed_ms, 1) + " ms"});
  std::cout << table.to_string();

  evald.audit_quiescent();
  const bool ok = acked == sessions && done == sessions && mismatched == 0 &&
                  s.protocol_errors == 0;
  std::cout << (ok ? "ok" : "FAILED") << ": " << acked << " acks, " << done
            << " completions, " << mismatched << " byte-identity violations, audit passed\n";
  return ok ? 0 : 1;
}
