#include "piolint/index.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "exec/pool.hpp"

namespace pio::lint {

namespace {

using lex::balance_angles;
using lex::balance_parens;
using lex::is_ident;
using lex::line_of;
using lex::skip_ws;

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llX", static_cast<unsigned long long>(v));
  return buf;
}

// ---------------------------------------------------------------------------
// Pass-1 fact extraction (all scans run on stripped code).
// ---------------------------------------------------------------------------

// Stream-id constant definitions: `constexpr <int-type> k...Stream... = <int
// literal>`. An initialiser that is another named constant (the registry
// alias pattern) is deliberately not a definition.
void collect_stream_defs(const std::string& code, FileFacts& facts) {
  static const std::regex kDef(
      R"(\bconstexpr\s+(?:std\s*::\s*)?(?:std::)?u?int64_t\s+(k\w*Stream\w*)\s*=\s*)"
      R"((0[xX][0-9a-fA-F']+|\d[\d']*)\s*(?:[uU]?[lL]{0,2})\s*;)");
  for (std::sregex_iterator it(code.begin(), code.end(), kDef), end; it != end; ++it) {
    std::string lit = (*it)[2].str();
    lit.erase(std::remove(lit.begin(), lit.end(), '\''), lit.end());
    std::uint64_t value = 0;
    try {
      value = std::stoull(lit, nullptr, 0);
    } catch (...) {
      continue;
    }
    facts.stream_defs.push_back(
        {(*it)[1].str(), value, line_of(code, static_cast<std::size_t>(it->position()))});
  }
}

// Hex integer literals, pass-2 fodder for the raw-stream-id check. Hex only:
// stream ids are conventionally hex, and decimal literals (sizes, counts)
// would drown the index in noise.
void collect_int_literals(const std::string& code, FileFacts& facts) {
  static const std::regex kHex(R"(0[xX][0-9a-fA-F']+)");
  for (std::sregex_iterator it(code.begin(), code.end(), kHex), end; it != end; ++it) {
    std::string lit = it->str().substr(2);
    lit.erase(std::remove(lit.begin(), lit.end(), '\''), lit.end());
    std::uint64_t value = 0;
    try {
      value = std::stoull(lit, nullptr, 16);
    } catch (...) {
      continue;
    }
    facts.int_literals.push_back({value, line_of(code, static_cast<std::size_t>(it->position()))});
  }
}

// Functions returning pio::Result<T>, by declared name (the terminal
// identifier for out-of-line qualified definitions).
void collect_result_fns(const std::string& code, FileFacts& facts) {
  static const std::regex kResult(R"(\b(?:pio\s*::\s*)?Result\s*<)");
  for (std::sregex_iterator it(code.begin(), code.end(), kResult), end; it != end; ++it) {
    const auto open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = balance_angles(code, open);
    if (after == std::string::npos) continue;
    std::size_t p = skip_ws(code, after);
    std::size_t seg_start = p;
    std::string last;
    while (p < code.size()) {
      if (is_ident(code[p])) {
        ++p;
      } else if (code[p] == ':' && p + 1 < code.size() && code[p + 1] == ':') {
        last = code.substr(seg_start, p - seg_start);
        p += 2;
        seg_start = p;
      } else {
        break;
      }
    }
    if (p == seg_start && last.empty()) continue;
    if (p > seg_start) last = code.substr(seg_start, p - seg_start);
    const std::size_t q = skip_ws(code, p);
    if (q >= code.size() || code[q] != '(') continue;  // variable, member, value
    if (last == "if" || last == "while" || last == "for" || last == "switch" ||
        last == "return" || last.empty()) {
      continue;
    }
    facts.result_fns.insert(last);
  }
}

// Functions declared with a plain (non-Result) return type. Pass 2 uses
// these to keep R2 precise: a name declared both ways somewhere in the
// project (`write` on an I/O tier vs `write` on pio::h5::Dataset) is
// ambiguous under name-only matching, so R2 stays silent for it.
void collect_plain_fns(const std::string& code, FileFacts& facts) {
  static const std::regex kPlain(
      R"(\b(?:void|bool|int|unsigned|long|float|double|auto|char)\s+([A-Za-z_]\w*)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kPlain), end; it != end; ++it) {
    facts.plain_fns.insert((*it)[1].str());
  }
}

// Statement-position calls whose value is discarded: a call chain of plain
// identifiers (`a::b.c->d(...)`) that starts a statement and whose closing
// ')' is directly followed by ';'. Chains with intermediate calls
// (`a().b();`) are skipped — a lexer-level tool errs toward silence.
void collect_discarded_calls(const std::string& code, FileFacts& facts) {
  static const std::regex kCall(R"(\b([A-Za-z_]\w*)\s*\()");
  static const std::set<std::string> kKeywords = {
      "if",     "while",   "for",        "switch",        "return", "new",
      "delete", "sizeof",  "alignof",    "catch",         "throw",  "assert",
      "case",   "goto",    "co_return",  "co_await",      "defined"};
  for (std::sregex_iterator it(code.begin(), code.end(), kCall), end; it != end; ++it) {
    const std::string name = (*it)[1].str();
    if (kKeywords.count(name) != 0) continue;

    // Walk back over the qualification chain to the statement head.
    auto skip_ws_back = [&](std::size_t r) {
      while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1])) != 0) --r;
      return r;
    };
    std::size_t q = static_cast<std::size_t>(it->position());
    bool bare_chain = true;
    while (true) {
      std::size_t r = skip_ws_back(q);
      if (r >= 2 && code[r - 1] == ':' && code[r - 2] == ':') {
        r -= 2;
      } else if (r >= 2 && code[r - 1] == '>' && code[r - 2] == '-') {
        r -= 2;
      } else if (r >= 1 && code[r - 1] == '.') {
        r -= 1;
      } else {
        q = r;
        break;
      }
      r = skip_ws_back(r);
      std::size_t s = r;
      while (s > 0 && is_ident(code[s - 1])) --s;
      if (s == r) {  // separator not preceded by a plain identifier
        bare_chain = false;
        break;
      }
      q = s;
    }
    if (!bare_chain) continue;
    if (q != 0) {
      const char before = code[q - 1];
      if (before != ';' && before != '{' && before != '}') continue;
    }
    // The chain-head identifier must not itself be a keyword (`return x(...)`).
    {
      std::size_t s = q;
      std::size_t e = s;
      while (e < code.size() && is_ident(code[e])) ++e;
      if (kKeywords.count(code.substr(s, e - s)) != 0) continue;
    }

    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = balance_parens(code, open);
    if (after == std::string::npos) continue;
    const std::size_t tail = skip_ws(code, after);
    if (tail >= code.size() || code[tail] != ';') continue;
    facts.discarded_calls.push_back(
        {name, line_of(code, static_cast<std::size_t>(it->position()))});
  }
}

// Lambdas with by-reference captures inside the argument list of a deferring
// sink. `for_all`/`map_ordered` are deliberately absent: they block until the
// callable has run, so by-reference captures there are sound.
void collect_deferred_captures(const std::string& code, FileFacts& facts) {
  static const std::regex kSink(R"(\b(schedule_at|schedule_after|submit)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kSink), end; it != end; ++it) {
    const std::string sink = (*it)[1].str();
    const std::size_t open = static_cast<std::size_t>(it->position()) +
                             static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = balance_parens(code, open);
    if (after == std::string::npos) continue;
    // Scan the argument range for lambda introducers: '[' whose previous
    // non-ws char is '(' or ',' (an expression position, not a subscript).
    for (std::size_t i = open + 1; i + 1 < after; ++i) {
      if (code[i] != '[') continue;
      std::size_t r = i;
      while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1])) != 0) --r;
      if (r == 0 || (code[r - 1] != '(' && code[r - 1] != ',')) continue;
      // Matching ']' of the capture list.
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t j = i; j < after; ++j) {
        if (code[j] == '[') ++depth;
        if (code[j] == ']' && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == std::string::npos) break;
      // Split the capture list on top-level commas.
      const std::string list = code.substr(i + 1, close - i - 1);
      std::vector<std::string> tokens;
      std::string cur;
      int nest = 0;
      for (const char c : list) {
        if (c == '(' || c == '[' || c == '{' || c == '<') ++nest;
        if (c == ')' || c == ']' || c == '}' || c == '>') --nest;
        if (c == ',' && nest == 0) {
          tokens.push_back(cur);
          cur.clear();
        } else {
          cur.push_back(c);
        }
      }
      tokens.push_back(cur);
      for (std::string tok : tokens) {
        tok.erase(std::remove_if(tok.begin(), tok.end(),
                                 [](char c) {
                                   return std::isspace(static_cast<unsigned char>(c)) != 0;
                                 }),
                  tok.end());
        // Flag `&` (capture-default) and `&name` / `&name = init`; `this`,
        // `*this`, `=`, and by-value/init captures are lifetime-safe.
        if (tok == "&" || (tok.size() > 1 && tok[0] == '&' && is_ident(tok[1]))) {
          facts.deferred_captures.push_back(
              {sink, tok.substr(0, tok.find('=')), line_of(code, i)});
        }
      }
      i = close;  // continue after this capture list
    }
  }
}

// Mutex members and lock-order edges. A guard constructed at brace depth d
// holds its mutex until the enclosing block closes; acquiring another mutex
// while one is held records a directed edge held -> acquired.
void collect_locks(const std::string& code, FileFacts& facts) {
  static const std::regex kMutexDecl(
      R"(\b(?:mutex|shared_mutex|recursive_mutex|timed_mutex)\s+([A-Za-z_]\w*)\s*;)");
  for (std::sregex_iterator it(code.begin(), code.end(), kMutexDecl), end; it != end; ++it) {
    facts.mutex_decls.insert((*it)[1].str());
  }

  struct LockSite {
    std::size_t pos = 0;
    std::string name;  // normalised mutex expression
  };
  std::vector<LockSite> sites;
  static const std::regex kGuard(R"(\b(scoped_lock|lock_guard|unique_lock|shared_lock)\b)");
  for (std::sregex_iterator it(code.begin(), code.end(), kGuard), end; it != end; ++it) {
    std::size_t p = skip_ws(code, static_cast<std::size_t>(it->position()) +
                                      static_cast<std::size_t>(it->length()));
    if (p < code.size() && code[p] == '<') {
      const std::size_t after = balance_angles(code, p);
      if (after == std::string::npos) continue;
      p = skip_ws(code, after);
    }
    const std::size_t var_start = p;  // guard variable name (CTAD or not)
    while (p < code.size() && is_ident(code[p])) ++p;
    if (p == var_start) continue;
    p = skip_ws(code, p);
    if (p >= code.size() || (code[p] != '(' && code[p] != '{')) continue;
    const char open_c = code[p];
    const char close_c = open_c == '(' ? ')' : '}';
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t j = p; j < code.size(); ++j) {
      if (code[j] == open_c) ++depth;
      if (code[j] == close_c && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == std::string::npos) continue;
    std::string args = code.substr(p + 1, close - p - 1);
    if (args.find("defer_lock") != std::string::npos ||
        args.find("adopt_lock") != std::string::npos ||
        args.find("try_to_lock") != std::string::npos) {
      continue;  // not an (immediate) acquisition
    }
    // Top-level comma = multi-mutex scoped_lock: acquired atomically with
    // deadlock avoidance, no ordering edge.
    int nest = 0;
    bool multi = false;
    for (const char c : args) {
      if (c == '(' || c == '[' || c == '{' || c == '<') ++nest;
      if (c == ')' || c == ']' || c == '}' || c == '>') --nest;
      if (c == ',' && nest == 0) multi = true;
    }
    if (multi) continue;
    args.erase(std::remove_if(args.begin(), args.end(),
                              [](char c) {
                                return std::isspace(static_cast<unsigned char>(c)) != 0;
                              }),
               args.end());
    if (args.empty()) continue;
    sites.push_back({static_cast<std::size_t>(it->position()), std::move(args)});
  }
  if (sites.empty()) return;

  struct Held {
    int depth = 0;
    std::string name;
  };
  std::vector<Held> held;
  std::size_t next = 0;
  int depth = 0;
  std::set<std::pair<std::string, std::string>> seen;
  for (std::size_t i = 0; i < code.size() && next < sites.size(); ++i) {
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
    }
    if (i == sites[next].pos) {
      const LockSite& site = sites[next];
      for (const Held& h : held) {
        if (seen.insert({h.name, site.name}).second) {
          facts.lock_edges.push_back({h.name, site.name, line_of(code, site.pos)});
        }
      }
      held.push_back({depth, site.name});
      ++next;
    }
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Pass 2 helpers.
// ---------------------------------------------------------------------------

struct ProjectSink {
  const std::map<std::string, const FileFacts*>& facts_by_path;
  std::vector<Diagnostic>& out;

  void report(const std::string& file, int line, const char* rule, std::string message) const {
    const auto it = facts_by_path.find(file);
    if (it != facts_by_path.end() && it->second->allows.allowed(rule, line)) return;
    out.push_back(Diagnostic{file, line, rule, std::move(message)});
  }
};

void rule_s1(const ProjectIndex& index, const ProjectSink& sink) {
  struct Def {
    std::string name;
    std::string file;
    int line = 0;
    bool in_registry = false;
  };
  std::map<std::uint64_t, std::vector<Def>> by_value;
  for (const AnalyzedFile& f : index.files) {
    for (const StreamDef& d : f.facts.stream_defs) {
      by_value[d.value].push_back({d.name, f.facts.path, d.line, f.facts.is_seed_registry});
    }
  }
  for (auto& [value, defs] : by_value) {
    std::sort(defs.begin(), defs.end(), [](const Def& a, const Def& b) {
      return std::tie(a.file, a.line) < std::tie(b.file, b.line);
    });
    for (const Def& d : defs) {
      if (defs.size() > 1) {
        std::string others;
        for (const Def& o : defs) {
          if (o.file == d.file && o.line == d.line) continue;
          if (!others.empty()) others += ", ";
          others += "'" + o.name + "' (" + o.file + ":" + std::to_string(o.line) + ")";
        }
        sink.report(d.file, d.line, "S1",
                    "seed-stream collision: '" + d.name + "' = " + hex(value) +
                        " is also claimed by " + others +
                        "; two subsystems sharing a stream id draw correlated randomness");
      }
      if (!d.in_registry) {
        sink.report(d.file, d.line, "S1",
                    "stream id '" + d.name +
                        "' defined outside the seed-stream registry: claim the stream in "
                        "src/common/seed_streams.hpp and reference it by name");
      }
    }
  }

  // Raw literals equal to a claimed stream id, outside the registry and off
  // any definition line (those are reported above).
  for (const AnalyzedFile& f : index.files) {
    if (f.facts.is_seed_registry) continue;
    std::set<int> def_lines;
    for (const StreamDef& d : f.facts.stream_defs) def_lines.insert(d.line);
    for (const IntLiteral& lit : f.facts.int_literals) {
      if (def_lines.count(lit.line) != 0) continue;
      const auto it = by_value.find(lit.value);
      if (it == by_value.end()) continue;
      sink.report(f.facts.path, lit.line, "S1",
                  "raw stream-id literal " + hex(lit.value) + ": this value is claimed as '" +
                      it->second.front().name +
                      "'; reference the named constant from src/common/seed_streams.hpp");
    }
  }
}

void rule_d3(const ProjectIndex& index, const ProjectSink& sink) {
  std::map<std::string, std::set<std::string>> unordered_by_name;  // name -> declaring files
  std::set<std::string> ordered_names;
  for (const AnalyzedFile& f : index.files) {
    for (const std::string& n : f.facts.unordered_decls) unordered_by_name[n].insert(f.facts.path);
    for (const std::string& n : f.facts.ordered_decls) ordered_names.insert(n);
  }
  for (const AnalyzedFile& f : index.files) {
    for (const lex::IterUse& use : f.facts.iter_uses) {
      if (f.facts.unordered_decls.count(use.name) != 0) continue;  // rule D2's domain
      if (f.facts.ordered_decls.count(use.name) != 0) continue;
      if (ordered_names.count(use.name) != 0) continue;  // ordered somewhere: ambiguous, skip
      const auto it = unordered_by_name.find(use.name);
      if (it == unordered_by_name.end()) continue;
      std::string decl_file;
      for (const std::string& p : it->second) {
        if (p != f.facts.path) {
          decl_file = p;
          break;
        }
      }
      if (decl_file.empty()) continue;
      sink.report(f.facts.path, use.line, "D3",
                  std::string(use.range_for ? "iteration" : "iterator walk") +
                      " over unordered container '" + use.name + "' declared in " + decl_file +
                      ": order is implementation-defined and must not feed ordered output "
                      "(sort keys first, or justify with piolint: allow(D3))");
    }
  }
}

void rule_r2(const ProjectIndex& index, const ProjectSink& sink) {
  std::map<std::string, std::set<std::string>> decls;  // fn name -> declaring files
  std::set<std::string> ambiguous;  // also declared with a non-Result type somewhere
  for (const AnalyzedFile& f : index.files) {
    for (const std::string& n : f.facts.result_fns) decls[n].insert(f.facts.path);
    for (const std::string& n : f.facts.plain_fns) ambiguous.insert(n);
  }
  for (const AnalyzedFile& f : index.files) {
    for (const DiscardedCall& call : f.facts.discarded_calls) {
      if (f.facts.result_fns.count(call.name) != 0) continue;  // same TU: compiler's job (R1)
      if (ambiguous.count(call.name) != 0) continue;  // name-only matching would guess
      const auto it = decls.find(call.name);
      if (it == decls.end()) continue;
      std::string decl_file;
      for (const std::string& p : it->second) {
        if (p != f.facts.path) {
          decl_file = p;
          break;
        }
      }
      if (decl_file.empty()) continue;
      sink.report(f.facts.path, call.line, "R2",
                  "discarded pio::Result from '" + call.name + "' (declared in " + decl_file +
                      "): a dropped Result is a swallowed I/O error; handle it or cast to "
                      "(void) with a justifying comment");
    }
  }
}

void rule_c2(const ProjectIndex& index, const ProjectSink& sink) {
  for (const AnalyzedFile& f : index.files) {
    for (const DeferredRefCapture& cap : f.facts.deferred_captures) {
      sink.report(f.facts.path, cap.line, "C2",
                  "by-reference capture '" + cap.capture + "' in callable passed to deferred "
                      "sink '" + cap.sink +
                      "': the callable runs after this scope may have unwound; capture by "
                      "value or an owning handle (piolint: allow(C2) if lifetime is proven)");
    }
  }
}

void rule_l1(const ProjectIndex& index, const ProjectSink& sink) {
  struct Edge {
    std::string file;
    int line = 0;
  };
  std::map<std::pair<std::string, std::string>, Edge> edges;
  std::map<std::string, std::set<std::string>> adj;
  for (const AnalyzedFile& f : index.files) {
    for (const LockEdge& e : f.facts.lock_edges) {
      const auto key = std::make_pair(e.held, e.acquired);
      const auto it = edges.find(key);
      if (it == edges.end() ||
          std::tie(f.facts.path, e.line) < std::tie(it->second.file, it->second.line)) {
        edges[key] = {f.facts.path, e.line};
      }
      adj[e.held].insert(e.acquired);
    }
  }
  // An edge (a, b) is part of a cycle iff b reaches a. DFS over the (small)
  // mutex graph; path reconstruction makes the report actionable.
  for (const auto& [key, site] : edges) {
    const auto& [a, b] = key;
    std::map<std::string, std::string> parent;
    std::vector<std::string> stack = {b};
    parent[b] = "";
    bool found = (a == b);
    while (!found && !stack.empty()) {
      const std::string n = stack.back();
      stack.pop_back();
      const auto it = adj.find(n);
      if (it == adj.end()) continue;
      for (const std::string& m : it->second) {
        if (parent.count(m) != 0) continue;
        parent[m] = n;
        if (m == a) {
          found = true;
          break;
        }
        stack.push_back(m);
      }
    }
    if (!found) continue;
    std::string cycle = a + " -> " + b;
    if (a != b) {
      std::vector<std::string> path;
      for (std::string n = a; !n.empty() && n != b; n = parent[n]) path.push_back(n);
      for (auto it2 = path.rbegin(); it2 != path.rend(); ++it2) cycle += " -> " + *it2;
    } else {
      cycle = a + " -> " + a;
    }
    sink.report(site.file, site.line, "L1",
                "lock-order cycle: " + cycle +
                    "; acquire mutexes in one global order (or atomically via a multi-mutex "
                    "std::scoped_lock)");
  }
}

}  // namespace

AnalyzedFile analyze_source(const std::string& path, const std::string& content) {
  AnalyzedFile out;
  out.facts.path = path;
  out.facts.is_seed_registry = ends_with(path, "seed_streams.hpp");

  const lex::Stripped stripped = lex::strip(content);
  out.facts.allows = lex::parse_allows(stripped);
  out.facts.unordered_decls =
      lex::collect_decl_names(stripped.code, lex::unordered_decl_regex());
  out.facts.ordered_decls = lex::collect_decl_names(stripped.code, lex::ordered_decl_regex());
  out.facts.iter_uses = lex::collect_iteration_uses(stripped.code);
  collect_stream_defs(stripped.code, out.facts);
  collect_int_literals(stripped.code, out.facts);
  collect_result_fns(stripped.code, out.facts);
  collect_plain_fns(stripped.code, out.facts);
  collect_discarded_calls(stripped.code, out.facts);
  collect_deferred_captures(stripped.code, out.facts);
  collect_locks(stripped.code, out.facts);

  out.diagnostics = lint_source(path, content);
  return out;
}

AnalyzedFile analyze_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    AnalyzedFile out;
    out.facts.path = path;
    out.diagnostics.push_back(Diagnostic{path, 0, "IO", "cannot open file"});
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_source(path, buf.str());
}

ProjectIndex build_index(std::vector<std::string> files, int jobs) {
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  ProjectIndex index;
  exec::Pool pool(jobs);
  index.files =
      pool.map_ordered(files.size(), [&files](std::size_t i) { return analyze_file(files[i]); });
  return index;
}

std::vector<Diagnostic> lint_project(const ProjectIndex& index) {
  std::map<std::string, const FileFacts*> facts_by_path;
  for (const AnalyzedFile& f : index.files) facts_by_path[f.facts.path] = &f.facts;

  std::vector<Diagnostic> diags;
  const ProjectSink sink{facts_by_path, diags};
  rule_s1(index, sink);
  rule_d3(index, sink);
  rule_r2(index, sink);
  rule_c2(index, sink);
  rule_l1(index, sink);

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return diags;
}

std::vector<Diagnostic> all_diagnostics(const ProjectIndex& index) {
  std::vector<Diagnostic> diags;
  for (const AnalyzedFile& f : index.files) {
    diags.insert(diags.end(), f.diagnostics.begin(), f.diagnostics.end());
  }
  std::vector<Diagnostic> project = lint_project(index);
  diags.insert(diags.end(), std::make_move_iterator(project.begin()),
               std::make_move_iterator(project.end()));
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return diags;
}

std::string dump_index(const ProjectIndex& index) {
  std::ostringstream out;
  for (const AnalyzedFile& f : index.files) {
    const FileFacts& facts = f.facts;
    out << "file " << facts.path << (facts.is_seed_registry ? " [seed-registry]" : "") << "\n";
    for (const std::string& n : facts.unordered_decls) out << "  unordered " << n << "\n";
    for (const std::string& n : facts.ordered_decls) out << "  ordered " << n << "\n";
    for (const lex::IterUse& u : facts.iter_uses) {
      out << "  iter " << u.name << " line " << u.line << (u.range_for ? " range-for" : " begin")
          << "\n";
    }
    for (const std::string& n : facts.result_fns) out << "  result-fn " << n << "\n";
    for (const DiscardedCall& c : facts.discarded_calls) {
      out << "  discard " << c.name << " line " << c.line << "\n";
    }
    for (const StreamDef& d : facts.stream_defs) {
      out << "  stream " << d.name << " = " << hex(d.value) << " line " << d.line << "\n";
    }
    for (const DeferredRefCapture& c : facts.deferred_captures) {
      out << "  defer-capture " << c.sink << " " << c.capture << " line " << c.line << "\n";
    }
    for (const std::string& m : facts.mutex_decls) out << "  mutex " << m << "\n";
    for (const LockEdge& e : facts.lock_edges) {
      out << "  lock-edge " << e.held << " -> " << e.acquired << " line " << e.line << "\n";
    }
  }
  return out.str();
}

}  // namespace pio::lint
