// piolint cross-TU analysis: a two-pass, project-wide static analyzer.
//
// Pass 1 (`analyze_file`, parallelised over files by `build_index` via
// exec::Pool::map_ordered) parses every translation unit into a lightweight
// symbol/fact index *and* runs the classic per-file rules. Pass 2
// (`lint_project`) runs rules that only make sense over the merged index:
//
//   S1  seed-stream registry: engine Rng stream-id constants must be defined
//       exactly once, in src/common/seed_streams.hpp; duplicate values
//       (stream collisions) and raw stream-id literals elsewhere are flagged
//   D3  iteration over a std::unordered_{map,set} member declared in a
//       *different* file (closes D2's same-file blind spot)
//   R2  statement-position call that discards the pio::Result of a function
//       declared in another TU
//   C2  by-reference lambda capture handed to a deferring sink
//       (Engine::schedule_at/schedule_after, Resource/OST submit) — the
//       callable outlives the call site, so the capture likely dangles
//   L1  lock-order cycle across the project's mutex-acquisition graph
//
// Output is deterministic by construction: the file list is sorted, pass 1
// merges in submission order regardless of --jobs, all pass-2 state lives in
// ordered containers, and diagnostics are sorted before emission — text,
// JSON, and SARIF reports are byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "piolint/lex.hpp"
#include "piolint/lint.hpp"

namespace pio::lint {

/// A named engine-Rng stream-id constant definition (`constexpr ... kFooStream
/// = 0x...;`). Aliases initialised from another named constant are not
/// definitions and are exempt — that is how subsystems reference the registry.
struct StreamDef {
  std::string name;
  std::uint64_t value = 0;
  int line = 0;
};

/// An integer literal that could be a raw stream id (compared against the
/// project's StreamDef values in pass 2).
struct IntLiteral {
  std::uint64_t value = 0;
  int line = 0;
};

/// A statement-position call whose return value is discarded: `foo(x);` or
/// `obj.foo(x);` directly at statement scope.
struct DiscardedCall {
  std::string name;  // terminal identifier of the call chain
  int line = 0;
};

/// A lambda with a by-reference capture passed to a deferring sink.
struct DeferredRefCapture {
  std::string sink;     // schedule_at / schedule_after / submit
  std::string capture;  // the offending capture token ("&" or "&name")
  int line = 0;
};

/// A lock-order edge: `held` was still held when `acquired` was locked.
struct LockEdge {
  std::string held;
  std::string acquired;
  int line = 0;  // acquisition site of `acquired`
};

/// Everything pass 2 needs to know about one file.
struct FileFacts {
  std::string path;
  std::set<std::string> unordered_decls;  // container names declared here
  std::set<std::string> ordered_decls;
  std::vector<lex::IterUse> iter_uses;    // every iteration site in the file
  std::set<std::string> result_fns;       // functions declared here returning pio::Result<T>
  std::set<std::string> plain_fns;        // functions declared here with a non-Result type
  std::vector<DiscardedCall> discarded_calls;
  std::vector<StreamDef> stream_defs;
  std::vector<IntLiteral> int_literals;
  std::vector<DeferredRefCapture> deferred_captures;
  std::vector<LockEdge> lock_edges;
  std::set<std::string> mutex_decls;      // mutex members declared here
  bool is_seed_registry = false;          // path ends in "seed_streams.hpp"
  lex::Allows allows;                     // pass-2 findings honour allow() too
};

/// Pass-1 result for one file: the fact index plus the per-file diagnostics.
struct AnalyzedFile {
  FileFacts facts;
  std::vector<Diagnostic> diagnostics;
};

/// The merged project index, ordered by file path.
struct ProjectIndex {
  std::vector<AnalyzedFile> files;
};

/// Pass 1 over one in-memory TU.
[[nodiscard]] AnalyzedFile analyze_source(const std::string& path, const std::string& content);

/// Pass 1 over one file on disk. Unreadable files produce one "IO" diagnostic.
[[nodiscard]] AnalyzedFile analyze_file(const std::string& path);

/// Build the merged index for `files`, fanning pass 1 out over `jobs` threads
/// (<= 0: resolve via exec::resolve_threads). Output order is the sorted input
/// order at any job count.
[[nodiscard]] ProjectIndex build_index(std::vector<std::string> files, int jobs = 1);

/// Pass 2: cross-TU rules over the merged index. Returns only the project
/// findings; per-file diagnostics live on each AnalyzedFile.
[[nodiscard]] std::vector<Diagnostic> lint_project(const ProjectIndex& index);

/// All diagnostics (per-file + project), sorted by (file, line, rule).
[[nodiscard]] std::vector<Diagnostic> all_diagnostics(const ProjectIndex& index);

/// Deterministic text serialisation of the fact index (not the diagnostics):
/// the byte-stability oracle for the --jobs 1/4/8 invariance test.
[[nodiscard]] std::string dump_index(const ProjectIndex& index);

}  // namespace pio::lint
