// piolint lexical substrate, shared by the per-file rule engine (lint.cpp)
// and the cross-TU project indexer (index.cpp).
//
// Everything here operates on *stripped* source: comment bodies and
// string/char literal contents are blanked to spaces (newlines preserved, so
// byte offsets map 1:1 to lines), which lets every downstream scan use plain
// regex/char walks without tripping over tokens quoted in strings or docs.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace pio::lint::lex {

// ---------------------------------------------------------------------------
// Source stripping.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                       // literals/comments blanked
  std::vector<std::string> comment_text;  // per 1-based line, "" if none
};

inline Stripped strip(const std::string& src) {
  Stripped out;
  out.code.reserve(src.size());
  out.comment_text.emplace_back();  // index 0 unused
  out.comment_text.emplace_back();
  std::size_t line = 1;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto emit = [&](char c) {
    out.code.push_back(c);
    if (c == '\n') {
      ++line;
      out.comment_text.emplace_back();
    }
  };
  auto blank = [&](char c) { emit(c == '\n' ? '\n' : ' '); };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(c);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / u8R / LR / uR / UR.
          bool raw = false;
          if (i > 0 && src[i - 1] == 'R') {
            std::size_t j = i - 1;
            while (j > 0 && (std::isalnum(static_cast<unsigned char>(src[j - 1])) != 0 ||
                             src[j - 1] == '_')) {
              --j;
            }
            const std::string prefix = src.substr(j, i - j);
            raw = prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "UR" ||
                  prefix == "LR";
          }
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') raw_delim.push_back(src[j++]);
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          emit('"');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of numeric tokens, not
          // char literals: a quote directly after an alnum stays code.
          if (i > 0 && (std::isalnum(static_cast<unsigned char>(src[i - 1])) != 0)) {
            emit(c);
          } else {
            state = State::kChar;
            emit('\'');
          }
        } else {
          emit(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          emit('\n');
        } else {
          out.comment_text[line].push_back(c);
          blank(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          blank(c);
          blank(next);
          ++i;
        } else {
          if (c != '\n') out.comment_text[line].push_back(c);
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          emit('"');
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          emit('\'');
        } else {
          blank(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() && src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) blank(src[i + k]);
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          blank(c);
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow directives:  // piolint: allow(D1)   // piolint: allow-file(D2,T1)
// ---------------------------------------------------------------------------

struct Allows {
  std::set<std::string> file_wide;
  std::vector<std::set<std::string>> per_line;  // 1-based

  [[nodiscard]] bool allowed(const std::string& rule, int line) const {
    if (file_wide.count(rule) != 0) return true;
    auto on = [&](int l) {
      return l >= 1 && l < static_cast<int>(per_line.size()) &&
             per_line[static_cast<std::size_t>(l)].count(rule) != 0;
    };
    // A directive suppresses its own line and the line directly below it.
    return on(line) || on(line - 1);
  }
};

inline Allows parse_allows(const Stripped& s) {
  Allows a;
  a.per_line.resize(s.comment_text.size());
  static const std::regex kDirective(R"(piolint:\s*(allow|allow-file)\(([A-Za-z0-9_,\s]+)\))");
  for (std::size_t line = 1; line < s.comment_text.size(); ++line) {
    const std::string& text = s.comment_text[line];
    if (text.find("piolint") == std::string::npos) continue;
    for (std::sregex_iterator it(text.begin(), text.end(), kDirective), end; it != end; ++it) {
      std::string rules = (*it)[2].str();
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream iss(rules);
      std::string rule;
      while (iss >> rule) {
        if ((*it)[1].str() == "allow-file") {
          a.file_wide.insert(rule);
        } else {
          a.per_line[line].insert(rule);
        }
      }
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Shared lexical helpers.
// ---------------------------------------------------------------------------

inline int line_of(const std::string& code, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(code.begin(), code.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

inline bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])) != 0) ++pos;
  return pos;
}

/// Starting at an opening '<', return the index just past its matching '>',
/// or std::string::npos if unbalanced.
inline std::size_t balance_angles(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') continue;  // operator->
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return std::string::npos;  // gave up: not a template argument list
    }
  }
  return std::string::npos;
}

/// Starting at an opening '(', return the index just past its matching ')',
/// or std::string::npos if unbalanced.
inline std::size_t balance_parens(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

inline bool header_path(const std::string& path) {
  const auto ext_at = path.find_last_of('.');
  if (ext_at == std::string::npos) return false;
  const std::string ext = path.substr(ext_at);
  return ext == ".hpp" || ext == ".h" || ext == ".hxx" || ext == ".inl" || ext == ".ipp";
}

inline std::vector<std::string> split_lines(const std::string& code) {
  std::vector<std::string> lines;
  lines.emplace_back();  // index 0 unused; lines are 1-based
  std::string current;
  for (const char c : code) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

inline void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ---------------------------------------------------------------------------
// Container-declaration / iteration-site extraction, shared by rule D2
// (same-file) and the project indexer (cross-file rule D3).
// ---------------------------------------------------------------------------

/// Names declared with a container type matched by `decl` (the regex must end
/// at the opening '<' of the template argument list). An identifier followed
/// by '(' is a function returning the container, not a variable, and is
/// skipped.
inline std::set<std::string> collect_decl_names(const std::string& code, const std::regex& decl) {
  std::set<std::string> names;
  for (std::sregex_iterator it(code.begin(), code.end(), decl), end; it != end; ++it) {
    const auto open = static_cast<std::size_t>(it->position() + it->length() - 1);
    const std::size_t after = balance_angles(code, open);
    if (after == std::string::npos) continue;
    std::size_t p = skip_ws(code, after);
    if (p < code.size() && code[p] == '&') p = skip_ws(code, p + 1);  // references
    const std::size_t name_start = p;
    while (p < code.size() && is_ident(code[p])) ++p;
    if (p == name_start) continue;
    const std::size_t q = skip_ws(code, p);
    if (q < code.size() && code[q] == '(') continue;
    names.insert(code.substr(name_start, p - name_start));
  }
  return names;
}

struct IterUse {
  std::string name;
  int line = 0;
  bool range_for = true;  // false: explicit .begin()/.cbegin() walk
};

/// Every iteration site in the file: range-for statements (the trailing
/// identifier of the range expression) and explicit `<name>.begin()` walks.
inline std::vector<IterUse> collect_iteration_uses(const std::string& code) {
  std::vector<IterUse> uses;
  static const std::regex kRangeFor(R"(\bfor\s*\([^;()]*:\s*([^)]*)\))");
  for (std::sregex_iterator it(code.begin(), code.end(), kRangeFor), end; it != end; ++it) {
    std::string range = (*it)[1].str();
    while (!range.empty() && std::isspace(static_cast<unsigned char>(range.back())) != 0) {
      range.pop_back();
    }
    std::size_t tail = range.size();
    while (tail > 0 && is_ident(range[tail - 1])) --tail;
    const std::string name = range.substr(tail);
    if (name.empty()) continue;
    uses.push_back({name, line_of(code, static_cast<std::size_t>(it->position())), true});
  }
  static const std::regex kBeginWalk(R"(\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kBeginWalk), end; it != end; ++it) {
    uses.push_back(
        {(*it)[1].str(), line_of(code, static_cast<std::size_t>(it->position())), false});
  }
  return uses;
}

/// The declaration regexes rules D2/D3 key on. `\bset<` does not match
/// `unordered_set<` because '_' is a word character (no boundary).
inline const std::regex& unordered_decl_regex() {
  static const std::regex kDecl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  return kDecl;
}

inline const std::regex& ordered_decl_regex() {
  static const std::regex kDecl(
      R"(\b(?:map|multimap|set|multiset|vector|deque|list|array|basic_string|span)\s*<)");
  return kDecl;
}

}  // namespace pio::lint::lex
