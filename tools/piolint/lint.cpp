#include "piolint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "piolint/lex.hpp"

namespace pio::lint {

namespace {

using lex::balance_angles;
using lex::header_path;
using lex::is_ident;
using lex::json_escape;
using lex::line_of;
using lex::skip_ws;

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

struct Sink {
  const std::string& path;
  const lex::Allows& allows;
  std::vector<Diagnostic>& out;

  void report(int line, const char* rule, std::string message) const {
    if (allows.allowed(rule, line)) return;
    out.push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// D1: nondeterminism sources. Everything stochastic or time-like in library
// code must flow through pio::Rng substreams / the simulated clock.
void rule_d1(const std::string& code, const Sink& sink) {
  static const std::regex kBanned(
      R"(\bstd::rand\b|\brand\s*\(|\bsrand\s*\(|\brandom_device\b)"
      R"(|\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b)"
      R"(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"
      R"(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bgetpid\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kBanned), end; it != end; ++it) {
    std::string tok = it->str();
    tok.erase(std::remove_if(tok.begin(), tok.end(),
                             [](char c) { return c == '(' || std::isspace(static_cast<unsigned char>(c)) != 0; }),
              tok.end());
    sink.report(line_of(code, static_cast<std::size_t>(it->position())), "D1",
                "nondeterminism source '" + tok +
                    "': route randomness through pio::Rng substreams and time through the "
                    "sim clock");
  }
}

// D2: iteration over unordered containers declared in this file. Iteration
// order is implementation-defined; it must never feed ordered output.
void rule_d2(const std::string& code, const Sink& sink) {
  const std::set<std::string> unordered_vars =
      lex::collect_decl_names(code, lex::unordered_decl_regex());
  if (unordered_vars.empty()) return;
  for (const lex::IterUse& use : lex::collect_iteration_uses(code)) {
    if (unordered_vars.count(use.name) == 0) continue;
    if (use.range_for) {
      sink.report(use.line, "D2",
                  "iteration over unordered container '" + use.name +
                      "': order is implementation-defined and must not feed ordered output "
                      "(sort keys first, or justify with piolint: allow(D2))");
    } else {
      sink.report(use.line, "D2",
                  "iterator walk over unordered container '" + use.name +
                      "': order is implementation-defined and must not feed ordered output");
    }
  }
}

// T1: manual float time-unit conversion. A power-of-ten scale literal next to
// SimTime accessors means hand-rolled ns<->us/ms/s math; all conversions
// belong in common/types.hpp (SimTime::from_* / .sec()/.ms()/.us()).
void rule_t1(const std::string& path, const std::vector<std::string>& lines, const Sink& sink) {
  if (path.size() >= 16 && path.rfind("common/types.hpp") == path.size() - 16) return;
  static const std::regex kScale(R"(\b1\.?0?e[-+]?0*[369]\b)");
  static const std::regex kSimTimeToken(
      R"(\bSimTime\b|\.\s*(?:ns|us|ms|sec)\s*\(|\b\w+_ns\b|\bns_\b)");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (!std::regex_search(l, kScale)) continue;
    if (!std::regex_search(l, kSimTimeToken)) continue;
    sink.report(static_cast<int>(i), "T1",
                "raw float time-unit arithmetic: use SimTime::from_* / accessor methods "
                "from common/types.hpp instead of hand-scaling by 1e3/1e6/1e9");
  }
}

// R1: functions returning pio::Result<T> must be [[nodiscard]] — a silently
// dropped Result is a swallowed I/O error.
void rule_r1(const std::string& code, const Sink& sink) {
  static const std::regex kResult(R"(\b(?:pio\s*::\s*)?Result\s*<)");
  for (std::sregex_iterator it(code.begin(), code.end(), kResult), end; it != end; ++it) {
    const auto match_pos = static_cast<std::size_t>(it->position());
    // Skip when this Result<...> is itself nested in a larger template
    // argument list or preceded by '<' (e.g. vector<Result<T>>).
    const std::size_t open = match_pos + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = balance_angles(code, open);
    if (after == std::string::npos) continue;
    std::size_t p = skip_ws(code, after);
    // Function declarator: [qualified] identifier followed by '('.
    const std::size_t name_start = p;
    bool qualified = false;
    while (p < code.size()) {
      if (is_ident(code[p])) {
        ++p;
      } else if (code[p] == ':' && p + 1 < code.size() && code[p + 1] == ':') {
        qualified = true;
        p += 2;
      } else {
        break;
      }
    }
    if (p == name_start) continue;            // not a declarator (value/temporary)
    const std::size_t q = skip_ws(code, p);
    if (q >= code.size() || code[q] != '(') continue;  // variable, member, etc.
    if (qualified) continue;  // out-of-line definition; attribute lives on the declaration
    const std::string name = code.substr(name_start, p - name_start);
    if (name == "if" || name == "while" || name == "for" || name == "switch" ||
        name == "return") {
      continue;
    }
    // Scan back to the start of this declaration (previous ; { } or access
    // specifier colon) and look for [[nodiscard]].
    std::size_t begin = match_pos;
    while (begin > 0) {
      const char c = code[begin - 1];
      if (c == ';' || c == '{' || c == '}' || c == '(') break;
      if (c == ':') {
        if (begin >= 2 && code[begin - 2] == ':') {
          begin -= 2;
          continue;
        }
        break;
      }
      --begin;
    }
    if (code.substr(begin, match_pos - begin).find("[[nodiscard]]") != std::string::npos) {
      continue;
    }
    sink.report(line_of(code, match_pos), "R1",
                "function '" + name +
                    "' returns pio::Result but is not [[nodiscard]]; a dropped Result is a "
                    "swallowed I/O error");
  }
}

// P1: raw threading primitives. Every std::thread/std::jthread/std::async
// use outside the sanctioned pool internals (src/exec) and shared-memory
// collectives (src/par) is a determinism hazard: ad-hoc threads race on
// merge order and bypass the ordered-merge contract of exec::Pool. The rule
// is annotation-based, not path-based — sanctioned sites carry
// `piolint: allow(P1)` so every exemption is visible at the use site.
// The lookahead keeps `std::thread::hardware_concurrency()` (a query, not a
// spawn) out of scope.
void rule_p1(const std::string& code, const Sink& sink) {
  static const std::regex kRawThread(
      R"(\bstd\s*::\s*(?:thread|jthread)\b(?!\s*::)|\bstd\s*::\s*async\b)");
  for (std::sregex_iterator it(code.begin(), code.end(), kRawThread), end; it != end; ++it) {
    std::string tok = it->str();
    tok.erase(std::remove_if(tok.begin(), tok.end(),
                             [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }),
              tok.end());
    sink.report(line_of(code, static_cast<std::size_t>(it->position())), "P1",
                "raw threading primitive '" + tok +
                    "': fan work out through exec::Pool (ordered merge, deterministic "
                    "seeds); pool/collective internals justify with piolint: allow(P1)");
  }
}

// H1: header hygiene.
void rule_h1(const std::string& path, const std::string& code,
             const std::vector<std::string>& lines, const Sink& sink) {
  if (!header_path(path)) return;
  static const std::regex kPragmaOnce(R"(#\s*pragma\s+once\b)");
  if (!std::regex_search(code, kPragmaOnce)) {
    sink.report(1, "H1", "header is missing #pragma once");
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], kUsingNamespace)) {
      sink.report(static_cast<int>(i), "H1",
                  "using-namespace in a header leaks into every includer");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "banned nondeterminism source (rand/random_device/wall clocks)"},
      {"D2", "iteration over std::unordered_{map,set} (order feeds output)"},
      {"T1", "raw float time-unit arithmetic outside common/types.hpp"},
      {"R1", "pio::Result-returning function missing [[nodiscard]]"},
      {"P1", "raw std::thread/std::jthread/std::async outside exec::Pool internals"},
      {"H1", "header hygiene (#pragma once, no using-namespace)"},
      {"S1", "seed-stream registry: collisions / stream ids outside seed_streams.hpp"},
      {"D3", "iteration over an unordered container declared in another file"},
      {"R2", "discarded pio::Result from a function declared in another TU"},
      {"C2", "by-reference lambda capture passed to a deferred sink"},
      {"L1", "lock-order cycle across the project's mutex graph"},
  };
  return kRules;
}

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const lex::Stripped stripped = lex::strip(content);
  const lex::Allows allows = lex::parse_allows(stripped);
  const std::vector<std::string> lines = lex::split_lines(stripped.code);

  std::vector<Diagnostic> diags;
  const Sink sink{path, allows, diags};
  rule_d1(stripped.code, sink);
  rule_d2(stripped.code, sink);
  rule_t1(path, lines, sink);
  rule_r1(stripped.code, sink);
  rule_p1(stripped.code, sink);
  rule_h1(path, stripped.code, lines, sink);

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Diagnostic{path, 0, "IO", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".hpp", ".h",   ".hxx", ".cpp",
                                              ".cc",  ".cxx", ".inl", ".ipp"};
  // Subtrees never worth linting, even when a scan is rooted at the repo
  // top: build output, VCS internals, and the deliberately-violating lint
  // fixtures (which only make sense as test data). A skipped name only
  // prunes *descent* — a path passed explicitly is always honoured.
  static const std::set<std::string> kSkipDirs = {"build", ".git", "lint_fixtures"};
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p, ec)) continue;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory(ec) && kSkipDirs.count(it->path().filename().string()) != 0) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file(ec)) continue;
      if (kExts.count(it->path().extension().string()) != 0) {
        files.push_back(it->path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string to_text(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + d.rule + ": " + d.message;
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  {\"file\": \"";
    json_escape(out, diags[i].file);
    out += "\", \"line\": " + std::to_string(diags[i].line) + ", \"rule\": \"";
    json_escape(out, diags[i].rule);
    out += "\", \"message\": \"";
    json_escape(out, diags[i].message);
    out += "\"}";
  }
  out += diags.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  // Minimal SARIF 2.1.0: one run, the static rule table as
  // tool.driver.rules, one result per diagnostic. Field order and the
  // pre-sorted diagnostics keep the report byte-stable across thread counts.
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"piolint\",\n";
  out += "          \"informationUri\": \"tools/piolint\",\n";
  out += "          \"rules\": [\n";
  const auto& rule_table = rules();
  for (std::size_t i = 0; i < rule_table.size(); ++i) {
    out += "            {\"id\": \"";
    json_escape(out, rule_table[i].id);
    out += "\", \"shortDescription\": {\"text\": \"";
    json_escape(out, rule_table[i].summary);
    out += "\"}}";
    out += i + 1 < rule_table.size() ? ",\n" : "\n";
  }
  out += "          ]\n        }\n      },\n";
  if (diags.empty()) {
    out += "      \"results\": []\n    }\n  ]\n}\n";
    return out;
  }
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += "        {\"ruleId\": \"";
    json_escape(out, d.rule);
    out += "\", \"level\": \"error\", \"message\": {\"text\": \"";
    json_escape(out, d.message);
    out += "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"";
    json_escape(out, d.file);
    out += "\"}, \"region\": {\"startLine\": " + std::to_string(d.line < 1 ? 1 : d.line) +
           "}}}]}";
    out += i + 1 < diags.size() ? ",\n" : "\n";
  }
  out += "      ]\n    }\n  ]\n}\n";
  return out;
}

std::string baseline_key(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + d.rule;
}

std::set<std::string> read_baseline(const std::string& path) {
  std::set<std::string> keys;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    // Trim, skip blanks and '#' comments; keep only "file:line:rule" (a full
    // to_text line is accepted — everything past the third colon is ignored).
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first);
    if (line[0] == '#') continue;
    std::size_t colon = line.find(':');
    if (colon != std::string::npos) colon = line.find(':', colon + 1);
    if (colon != std::string::npos) colon = line.find(':', colon + 1);
    keys.insert(colon == std::string::npos ? line : line.substr(0, colon));
  }
  return keys;
}

std::vector<Diagnostic> apply_baseline(std::vector<Diagnostic> diags,
                                       const std::set<std::string>& baseline,
                                       std::size_t* suppressed) {
  if (suppressed != nullptr) *suppressed = 0;
  if (baseline.empty()) return diags;
  std::vector<Diagnostic> kept;
  kept.reserve(diags.size());
  for (auto& d : diags) {
    if (baseline.count(baseline_key(d)) != 0) {
      if (suppressed != nullptr) ++*suppressed;
    } else {
      kept.push_back(std::move(d));
    }
  }
  return kept;
}

}  // namespace pio::lint
