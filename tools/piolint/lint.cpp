#include "piolint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace pio::lint {

namespace {

// ---------------------------------------------------------------------------
// Source stripping: replace comment bodies and string/char literal contents
// with spaces (newlines preserved, so offsets and line numbers survive), and
// collect the raw comment text per line for allow-directive parsing.
// ---------------------------------------------------------------------------

struct Stripped {
  std::string code;                        // literals/comments blanked
  std::vector<std::string> comment_text;   // per 1-based line, "" if none
};

Stripped strip(const std::string& src) {
  Stripped out;
  out.code.reserve(src.size());
  out.comment_text.emplace_back();  // index 0 unused
  out.comment_text.emplace_back();
  std::size_t line = 1;

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto emit = [&](char c) {
    out.code.push_back(c);
    if (c == '\n') {
      ++line;
      out.comment_text.emplace_back();
    }
  };
  auto blank = [&](char c) { emit(c == '\n' ? '\n' : ' '); };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(c);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R / u8R / LR / uR / UR.
          bool raw = false;
          if (i > 0 && src[i - 1] == 'R') {
            std::size_t j = i - 1;
            while (j > 0 && (std::isalnum(static_cast<unsigned char>(src[j - 1])) != 0 ||
                             src[j - 1] == '_')) {
              --j;
            }
            const std::string prefix = src.substr(j, i - j);
            raw = prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "UR" ||
                  prefix == "LR";
          }
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(') raw_delim.push_back(src[j++]);
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          emit('"');
        } else if (c == '\'') {
          // Digit separators (1'000'000) are part of numeric tokens, not
          // char literals: a quote directly after an alnum stays code.
          if (i > 0 && (std::isalnum(static_cast<unsigned char>(src[i - 1])) != 0)) {
            emit(c);
          } else {
            state = State::kChar;
            emit('\'');
          }
        } else {
          emit(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          emit('\n');
        } else {
          out.comment_text[line].push_back(c);
          blank(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          blank(c);
          blank(next);
          ++i;
        } else {
          if (c != '\n') out.comment_text[line].push_back(c);
          blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          emit('"');
        } else {
          blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          blank(c);
          blank(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          emit('\'');
        } else {
          blank(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() && src[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k < raw_delim.size() + 2; ++k) blank(src[i + k]);
          i += raw_delim.size() + 1;
          state = State::kCode;
        } else {
          blank(c);
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow directives.
// ---------------------------------------------------------------------------

struct Allows {
  std::set<std::string> file_wide;
  std::vector<std::set<std::string>> per_line;  // 1-based

  [[nodiscard]] bool allowed(const std::string& rule, int line) const {
    if (file_wide.count(rule) != 0) return true;
    auto on = [&](int l) {
      return l >= 1 && l < static_cast<int>(per_line.size()) &&
             per_line[static_cast<std::size_t>(l)].count(rule) != 0;
    };
    // A directive suppresses its own line and the line directly below it.
    return on(line) || on(line - 1);
  }
};

Allows parse_allows(const Stripped& s) {
  Allows a;
  a.per_line.resize(s.comment_text.size());
  static const std::regex kDirective(R"(piolint:\s*(allow|allow-file)\(([A-Za-z0-9_,\s]+)\))");
  for (std::size_t line = 1; line < s.comment_text.size(); ++line) {
    const std::string& text = s.comment_text[line];
    if (text.find("piolint") == std::string::npos) continue;
    for (std::sregex_iterator it(text.begin(), text.end(), kDirective), end; it != end; ++it) {
      std::string rules = (*it)[2].str();
      std::replace(rules.begin(), rules.end(), ',', ' ');
      std::istringstream iss(rules);
      std::string rule;
      while (iss >> rule) {
        if ((*it)[1].str() == "allow-file") {
          a.file_wide.insert(rule);
        } else {
          a.per_line[line].insert(rule);
        }
      }
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Shared lexical helpers.
// ---------------------------------------------------------------------------

int line_of(const std::string& code, std::size_t pos) {
  return 1 + static_cast<int>(std::count(code.begin(), code.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])) != 0) ++pos;
  return pos;
}

/// Starting at an opening '<', return the index just past its matching '>',
/// or std::string::npos if unbalanced.
std::size_t balance_angles(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      if (i > 0 && code[i - 1] == '-') continue;  // operator->
      if (--depth == 0) return i + 1;
    } else if (c == ';' || c == '{') {
      return std::string::npos;  // gave up: not a template argument list
    }
  }
  return std::string::npos;
}

bool header_path(const std::string& path) {
  const auto ext_at = path.find_last_of('.');
  if (ext_at == std::string::npos) return false;
  const std::string ext = path.substr(ext_at);
  return ext == ".hpp" || ext == ".h" || ext == ".hxx";
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

struct Sink {
  const std::string& path;
  const Allows& allows;
  std::vector<Diagnostic>& out;

  void report(int line, const char* rule, std::string message) const {
    if (allows.allowed(rule, line)) return;
    out.push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// D1: nondeterminism sources. Everything stochastic or time-like in library
// code must flow through pio::Rng substreams / the simulated clock.
void rule_d1(const std::string& code, const Sink& sink) {
  static const std::regex kBanned(
      R"(\bstd::rand\b|\brand\s*\(|\bsrand\s*\(|\brandom_device\b)"
      R"(|\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b)"
      R"(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"
      R"(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bgetpid\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kBanned), end; it != end; ++it) {
    std::string tok = it->str();
    tok.erase(std::remove_if(tok.begin(), tok.end(),
                             [](char c) { return c == '(' || std::isspace(static_cast<unsigned char>(c)) != 0; }),
              tok.end());
    sink.report(line_of(code, static_cast<std::size_t>(it->position())), "D1",
                "nondeterminism source '" + tok +
                    "': route randomness through pio::Rng substreams and time through the "
                    "sim clock");
  }
}

// D2: iteration over unordered containers declared in this file. Iteration
// order is implementation-defined; it must never feed ordered output.
void rule_d2(const std::string& code, const Sink& sink) {
  std::set<std::string> unordered_vars;
  static const std::regex kDecl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end; it != end; ++it) {
    const auto open = static_cast<std::size_t>(it->position() + it->length() - 1);
    const std::size_t after = balance_angles(code, open);
    if (after == std::string::npos) continue;
    std::size_t p = skip_ws(code, after);
    if (p < code.size() && code[p] == '&') p = skip_ws(code, p + 1);  // references
    const std::size_t name_start = p;
    while (p < code.size() && is_ident(code[p])) ++p;
    if (p == name_start) continue;
    const std::size_t q = skip_ws(code, p);
    // A variable/member/parameter name is followed by ; = , ) { or newline;
    // an identifier followed by '(' is a function returning the container.
    if (q < code.size() && code[q] == '(') continue;
    unordered_vars.insert(code.substr(name_start, p - name_start));
  }
  if (unordered_vars.empty()) return;

  // Range-for whose range expression ends in one of the collected names.
  static const std::regex kRangeFor(R"(\bfor\s*\([^;()]*:\s*([^)]*)\))");
  for (std::sregex_iterator it(code.begin(), code.end(), kRangeFor), end; it != end; ++it) {
    std::string range = (*it)[1].str();
    while (!range.empty() && std::isspace(static_cast<unsigned char>(range.back())) != 0) {
      range.pop_back();
    }
    std::size_t tail = range.size();
    while (tail > 0 && is_ident(range[tail - 1])) --tail;
    const std::string name = range.substr(tail);
    if (unordered_vars.count(name) == 0) continue;
    sink.report(line_of(code, static_cast<std::size_t>(it->position())), "D2",
                "iteration over unordered container '" + name +
                    "': order is implementation-defined and must not feed ordered output "
                    "(sort keys first, or justify with piolint: allow(D2))");
  }
  // Explicit iterator walks: name.begin() / name.cbegin().
  for (const auto& name : unordered_vars) {
    const std::regex begin_call("\\b" + name + R"(\s*\.\s*c?begin\s*\()");
    for (std::sregex_iterator it(code.begin(), code.end(), begin_call), end; it != end; ++it) {
      sink.report(line_of(code, static_cast<std::size_t>(it->position())), "D2",
                  "iterator walk over unordered container '" + name +
                      "': order is implementation-defined and must not feed ordered output");
    }
  }
}

// T1: manual float time-unit conversion. A power-of-ten scale literal next to
// SimTime accessors means hand-rolled ns<->us/ms/s math; all conversions
// belong in common/types.hpp (SimTime::from_* / .sec()/.ms()/.us()).
void rule_t1(const std::string& path, const std::vector<std::string>& lines, const Sink& sink) {
  if (path.size() >= 16 && path.rfind("common/types.hpp") == path.size() - 16) return;
  static const std::regex kScale(R"(\b1\.?0?e[-+]?0*[369]\b)");
  static const std::regex kSimTimeToken(
      R"(\bSimTime\b|\.\s*(?:ns|us|ms|sec)\s*\(|\b\w+_ns\b|\bns_\b)");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    if (!std::regex_search(l, kScale)) continue;
    if (!std::regex_search(l, kSimTimeToken)) continue;
    sink.report(static_cast<int>(i), "T1",
                "raw float time-unit arithmetic: use SimTime::from_* / accessor methods "
                "from common/types.hpp instead of hand-scaling by 1e3/1e6/1e9");
  }
}

// R1: functions returning pio::Result<T> must be [[nodiscard]] — a silently
// dropped Result is a swallowed I/O error.
void rule_r1(const std::string& code, const Sink& sink) {
  static const std::regex kResult(R"(\b(?:pio\s*::\s*)?Result\s*<)");
  for (std::sregex_iterator it(code.begin(), code.end(), kResult), end; it != end; ++it) {
    const auto match_pos = static_cast<std::size_t>(it->position());
    // Skip when this Result<...> is itself nested in a larger template
    // argument list or preceded by '<' (e.g. vector<Result<T>>).
    const std::size_t open = match_pos + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t after = balance_angles(code, open);
    if (after == std::string::npos) continue;
    std::size_t p = skip_ws(code, after);
    // Function declarator: [qualified] identifier followed by '('.
    const std::size_t name_start = p;
    bool qualified = false;
    while (p < code.size()) {
      if (is_ident(code[p])) {
        ++p;
      } else if (code[p] == ':' && p + 1 < code.size() && code[p + 1] == ':') {
        qualified = true;
        p += 2;
      } else {
        break;
      }
    }
    if (p == name_start) continue;            // not a declarator (value/temporary)
    const std::size_t q = skip_ws(code, p);
    if (q >= code.size() || code[q] != '(') continue;  // variable, member, etc.
    if (qualified) continue;  // out-of-line definition; attribute lives on the declaration
    const std::string name = code.substr(name_start, p - name_start);
    if (name == "if" || name == "while" || name == "for" || name == "switch" ||
        name == "return") {
      continue;
    }
    // Scan back to the start of this declaration (previous ; { } or access
    // specifier colon) and look for [[nodiscard]].
    std::size_t begin = match_pos;
    while (begin > 0) {
      const char c = code[begin - 1];
      if (c == ';' || c == '{' || c == '}' || c == '(') break;
      if (c == ':') {
        if (begin >= 2 && code[begin - 2] == ':') {
          begin -= 2;
          continue;
        }
        break;
      }
      --begin;
    }
    if (code.substr(begin, match_pos - begin).find("[[nodiscard]]") != std::string::npos) {
      continue;
    }
    sink.report(line_of(code, match_pos), "R1",
                "function '" + name +
                    "' returns pio::Result but is not [[nodiscard]]; a dropped Result is a "
                    "swallowed I/O error");
  }
}

// P1: raw threading primitives. Every std::thread/std::jthread/std::async
// use outside the sanctioned pool internals (src/exec) and shared-memory
// collectives (src/par) is a determinism hazard: ad-hoc threads race on
// merge order and bypass the ordered-merge contract of exec::Pool. The rule
// is annotation-based, not path-based — sanctioned sites carry
// `piolint: allow(P1)` so every exemption is visible at the use site.
// The lookahead keeps `std::thread::hardware_concurrency()` (a query, not a
// spawn) out of scope.
void rule_p1(const std::string& code, const Sink& sink) {
  static const std::regex kRawThread(
      R"(\bstd\s*::\s*(?:thread|jthread)\b(?!\s*::)|\bstd\s*::\s*async\b)");
  for (std::sregex_iterator it(code.begin(), code.end(), kRawThread), end; it != end; ++it) {
    std::string tok = it->str();
    tok.erase(std::remove_if(tok.begin(), tok.end(),
                             [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }),
              tok.end());
    sink.report(line_of(code, static_cast<std::size_t>(it->position())), "P1",
                "raw threading primitive '" + tok +
                    "': fan work out through exec::Pool (ordered merge, deterministic "
                    "seeds); pool/collective internals justify with piolint: allow(P1)");
  }
}

// H1: header hygiene.
void rule_h1(const std::string& path, const std::string& code,
             const std::vector<std::string>& lines, const Sink& sink) {
  if (!header_path(path)) return;
  static const std::regex kPragmaOnce(R"(#\s*pragma\s+once\b)");
  if (!std::regex_search(code, kPragmaOnce)) {
    sink.report(1, "H1", "header is missing #pragma once");
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], kUsingNamespace)) {
      sink.report(static_cast<int>(i), "H1",
                  "using-namespace in a header leaks into every includer");
    }
  }
}

std::vector<std::string> split_lines(const std::string& code) {
  std::vector<std::string> lines;
  lines.emplace_back();  // index 0 unused; lines are 1-based
  std::string current;
  for (const char c : code) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "banned nondeterminism source (rand/random_device/wall clocks)"},
      {"D2", "iteration over std::unordered_{map,set} (order feeds output)"},
      {"T1", "raw float time-unit arithmetic outside common/types.hpp"},
      {"R1", "pio::Result-returning function missing [[nodiscard]]"},
      {"P1", "raw std::thread/std::jthread/std::async outside exec::Pool internals"},
      {"H1", "header hygiene (#pragma once, no using-namespace)"},
  };
  return kRules;
}

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const Stripped stripped = strip(content);
  const Allows allows = parse_allows(stripped);
  const std::vector<std::string> lines = split_lines(stripped.code);

  std::vector<Diagnostic> diags;
  const Sink sink{path, allows, diags};
  rule_d1(stripped.code, sink);
  rule_d2(stripped.code, sink);
  rule_t1(path, lines, sink);
  rule_r1(stripped.code, sink);
  rule_p1(stripped.code, sink);
  rule_h1(path, stripped.code, lines, sink);

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Diagnostic{path, 0, "IO", "cannot open file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str());
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".hpp", ".h", ".hxx", ".cpp", ".cc", ".cxx"};
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p, ec)) continue;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file(ec)) continue;
      if (kExts.count(it->path().extension().string()) != 0) {
        files.push_back(it->path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string to_text(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + d.rule + ": " + d.message;
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n  {\"file\": \"";
    json_escape(out, diags[i].file);
    out += "\", \"line\": " + std::to_string(diags[i].line) + ", \"rule\": \"";
    json_escape(out, diags[i].rule);
    out += "\", \"message\": \"";
    json_escape(out, diags[i].message);
    out += "\"}";
  }
  out += diags.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

}  // namespace pio::lint
