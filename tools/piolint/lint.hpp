// piolint: PIOEval's project-specific determinism/hygiene linter.
//
// A lightweight lexer-level static analyzer (no libclang, no third-party
// dependencies) that enforces the invariants the simulator's determinism
// contract rests on (src/sim/engine.hpp): all randomness through pio::Rng,
// all simulated-time math through SimTime, no iteration order leaking from
// unordered containers into ordered output, no silently dropped pio::Result,
// and basic header hygiene.
//
// Rules (stable IDs, referenced by the allow escape hatch and DESIGN.md):
//   D1  banned nondeterminism source (std::rand, std::random_device,
//       std::chrono::*_clock::now, time(nullptr), gettimeofday, ...)
//   D2  range-for / .begin() iteration over a std::unordered_{map,set}
//       variable declared in the same file (iteration order is
//       implementation-defined and must not feed ordered output)
//   T1  raw float/double time-unit arithmetic (a 1e3/1e6/1e9-style scale
//       literal combined with SimTime accessors) outside common/types.hpp
//   R1  function declaration returning pio::Result<T> without [[nodiscard]]
//   H1  header hygiene: missing #pragma once, or using-namespace at header
//       scope
//
// Cross-TU rules (S1, D3, R2, C2, L1) run over the merged project index —
// see piolint/index.hpp.
//
// Escape hatches, checked per line (same line or the line directly above):
//   // piolint: allow(D1)          suppress one or more rules: allow(D1,T1)
//   // piolint: allow-file(D2)     suppress a rule for the whole file
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace pio::lint {

/// One finding. `rule` is the stable ID ("D1", ...), `line` is 1-based.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Static description of a rule, for --list-rules and docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rules, in report order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Lint one translation unit given its (display) path and full contents.
/// `path` decides header-only rules (H1) and the types.hpp exemption (T1).
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content);

/// Lint a file on disk. Unreadable files produce a single "IO" diagnostic.
[[nodiscard]] std::vector<Diagnostic> lint_file(const std::string& path);

/// Recursively collect lintable files (.hpp/.h/.hxx/.cpp/.cc/.cxx/.inl/.ipp)
/// under each path; a path that is itself a regular file is taken as-is.
/// Descent skips directories named `build`, `.git`, and `lint_fixtures`
/// (deliberately-violating test data), so a scan rooted at the repo top does
/// not lint build output. Results are sorted so output is stable across
/// platforms.
[[nodiscard]] std::vector<std::string> collect_files(const std::vector<std::string>& paths);

/// Format one diagnostic as "file:line:rule: message".
[[nodiscard]] std::string to_text(const Diagnostic& d);

/// Format all diagnostics as a JSON array (stable field order).
[[nodiscard]] std::string to_json(const std::vector<Diagnostic>& diags);

/// Format all diagnostics as a SARIF 2.1.0 log (one run, static rule table,
/// stable field order — byte-identical for equal diagnostic lists).
[[nodiscard]] std::string to_sarif(const std::vector<Diagnostic>& diags);

/// Baseline support: a checked-in file of known findings keyed
/// "file:line:rule" (full `to_text` lines are accepted; '#' comments and
/// blank lines are ignored). New findings fail the gate while pre-existing
/// allows stay visible in the baseline file itself.
[[nodiscard]] std::string baseline_key(const Diagnostic& d);
[[nodiscard]] std::set<std::string> read_baseline(const std::string& path);
[[nodiscard]] std::vector<Diagnostic> apply_baseline(std::vector<Diagnostic> diags,
                                                     const std::set<std::string>& baseline,
                                                     std::size_t* suppressed = nullptr);

}  // namespace pio::lint
