// piolint CLI: scan sources for PIOEval determinism/hygiene violations.
//
//   piolint [--project] [--jobs N] [--format text|json|sarif] [--json]
//           [--baseline FILE] [--write-baseline FILE] [--list-rules]
//           <file-or-dir>...
//
// --project runs the two-pass cross-TU analyzer (rules S1/D3/R2/C2/L1) on
// top of the per-file rules; --jobs fans pass 1 out over a deterministic
// exec::Pool (output is byte-identical at any job count).
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "piolint/index.hpp"
#include "piolint/lint.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: piolint [options] <file-or-dir>...\n"
         "  --project           run cross-TU rules (S1, D3, R2, C2, L1) over the\n"
         "                      merged project index, in addition to per-file rules\n"
         "  --jobs N            lint N files in parallel (deterministic output)\n"
         "  --format FORMAT     text (default), json, or sarif\n"
         "  --json              shorthand for --format json\n"
         "  --baseline FILE     suppress findings listed in FILE (file:line:rule)\n"
         "  --write-baseline F  write the current findings to F and exit 0\n"
         "  --list-rules        print the rule table and exit\n"
         "Suppress with '// piolint: allow(RULE)' (same or previous line)\n"
         "or '// piolint: allow-file(RULE)' (whole file).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  bool project = false;
  int jobs = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "piolint: " << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      format = "json";
    } else if (arg == "--format") {
      format = value("--format");
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "piolint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--jobs") {
      try {
        jobs = std::stoi(value("--jobs"));
      } catch (...) {
        jobs = 0;
      }
      if (jobs < 1) {
        std::cerr << "piolint: --jobs requires a positive integer\n";
        return 2;
      }
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline_path = value("--write-baseline");
    } else if (arg == "--list-rules") {
      for (const auto& r : pio::lint::rules()) {
        std::printf("%-4s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "piolint: unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  const std::vector<std::string> files = pio::lint::collect_files(paths);
  if (files.empty()) {
    std::cerr << "piolint: no lintable files under the given paths\n";
    return 2;
  }

  // Pass 1 (parallel): per-file rules + the fact index. Pass 2 (serial):
  // cross-TU rules, only under --project.
  const pio::lint::ProjectIndex index = pio::lint::build_index(files, jobs);
  std::vector<pio::lint::Diagnostic> all;
  if (project) {
    all = pio::lint::all_diagnostics(index);
  } else {
    for (const auto& f : index.files) {
      all.insert(all.end(), f.diagnostics.begin(), f.diagnostics.end());
    }
  }
  bool io_error = false;
  for (const auto& d : all) {
    if (d.rule == "IO") io_error = true;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "piolint: cannot write baseline '" << write_baseline_path << "'\n";
      return 2;
    }
    out << "# piolint baseline: pre-existing findings, suppressed by --baseline.\n"
           "# One finding per line, keyed file:line:rule (text after the third\n"
           "# colon is informational). Remove entries as the findings are fixed.\n";
    for (const auto& d : all) out << pio::lint::to_text(d) << "\n";
    std::cerr << "piolint: wrote " << all.size() << " finding"
              << (all.size() == 1 ? "" : "s") << " to " << write_baseline_path << "\n";
    return 0;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    all = pio::lint::apply_baseline(std::move(all), pio::lint::read_baseline(baseline_path),
                                    &suppressed);
  }

  if (format == "json") {
    std::cout << pio::lint::to_json(all);
  } else if (format == "sarif") {
    std::cout << pio::lint::to_sarif(all);
  } else {
    for (const auto& d : all) std::cout << pio::lint::to_text(d) << "\n";
    std::cout << "piolint: " << files.size() << " files, " << all.size() << " finding"
              << (all.size() == 1 ? "" : "s");
    if (suppressed != 0) std::cout << " (" << suppressed << " baselined)";
    std::cout << "\n";
  }
  if (io_error) return 2;
  return all.empty() ? 0 : 1;
}
