// piolint CLI: scan sources for PIOEval determinism/hygiene violations.
//
//   piolint [--json] [--list-rules] <file-or-dir>...
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "piolint/lint.hpp"

namespace {

void usage() {
  std::cerr << "usage: piolint [--json] [--list-rules] <file-or-dir>...\n"
               "  --json        emit diagnostics as a JSON array\n"
               "  --list-rules  print the rule table and exit\n"
               "Suppress with '// piolint: allow(RULE)' (same or previous line)\n"
               "or '// piolint: allow-file(RULE)' (whole file).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : pio::lint::rules()) {
        std::printf("%-4s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "piolint: unknown option '" << arg << "'\n";
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage();
    return 2;
  }

  const std::vector<std::string> files = pio::lint::collect_files(paths);
  if (files.empty()) {
    std::cerr << "piolint: no lintable files under the given paths\n";
    return 2;
  }

  std::vector<pio::lint::Diagnostic> all;
  bool io_error = false;
  for (const auto& f : files) {
    for (auto& d : pio::lint::lint_file(f)) {
      if (d.rule == "IO") io_error = true;
      all.push_back(std::move(d));
    }
  }

  if (json) {
    std::cout << pio::lint::to_json(all);
  } else {
    for (const auto& d : all) std::cout << pio::lint::to_text(d) << "\n";
    std::cout << "piolint: " << files.size() << " files, " << all.size() << " finding"
              << (all.size() == 1 ? "" : "s") << "\n";
  }
  if (io_error) return 2;
  return all.empty() ? 0 : 1;
}
